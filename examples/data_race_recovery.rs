//! The paper's Figure 1 scenario, end to end: a logical processor pair
//! repeatedly loads a shared word while a third core races stores to it.
//! Relaxed input replication lets the vocal and mute observe different
//! values (input incoherence); fingerprint comparison detects it and the
//! re-execution protocol — rollback, single-step, synchronizing request —
//! recovers with guaranteed forward progress.
//!
//! ```bash
//! cargo run --release --example data_race_recovery
//! ```

use std::sync::Arc;

use reunion_core::{CheckBus, PairDriver, RecoveryPhase};
use reunion_cpu::{Core, CoreConfig};
use reunion_isa::{Addr, AluOp, Instruction as I, Program, RegId};
use reunion_kernel::Cycle;
use reunion_mem::{MemConfig, MemorySystem, Owner};

fn r(i: u8) -> RegId {
    RegId::new(i)
}

fn main() {
    // The pair's program: spin reading M[0x4000] and folding it into r3.
    let program = Arc::new(
        Program::new(
            "figure1",
            vec![
                I::load_imm(r(1), 0x4000),
                I::load(r(2), r(1), 0), // the racy load
                I::alu(AluOp::Add, r(3), r(3), r(2)),
                I::jump(1),
            ],
        )
        .expect("valid program"),
    );

    let mut mem = MemorySystem::new(MemConfig::small());
    mem.poke(Addr::new(0x4000), 0);
    let vocal_l1 = mem.register_l1(Owner::vocal(0));
    let mute_l1 = mem.register_l1(Owner::mute(0));
    let writer_l1 = mem.register_l1(Owner::vocal(1));

    let cfg = CoreConfig::default().checked();
    let vocal = Core::new(cfg.clone(), program.clone(), vocal_l1, 7);
    let mut mute = Core::new(cfg, program, mute_l1, 7);
    mute.set_mute(true);
    let mut pair = PairDriver::new(vocal, mute, 10, false);
    let mut bus = CheckBus::new(0); // private (unmodeled) check channels

    let mut writes = 0u64;
    for now in 0..100_000u64 {
        // An intervening store from another processor every ~700 cycles —
        // exactly the situation in the paper's Figure 1.
        if now % 700 == 350 {
            writes += 1;
            mem.drain_store(Cycle::new(now), writer_l1, Addr::new(0x4000), writes);
        }
        pair.tick(Cycle::new(now), &mut mem, &mut bus);
    }

    let stats = pair.stats();
    println!("racing stores injected:      {writes}");
    println!("incoherence events detected: {}", stats.mismatches.value());
    println!("recoveries completed:        {}", stats.recoveries.value());
    println!(
        "synchronizing requests:      {}",
        stats.sync_requests.value()
    );
    println!(
        "phase-2 escalations:         {}",
        stats.phase2_recoveries.value()
    );
    println!("failures:                    {}", stats.failures.value());
    println!("user instructions retired:   {}", pair.retired_user());
    assert_eq!(pair.phase(), RecoveryPhase::Normal);
    assert_eq!(stats.failures.value(), 0);
    assert!(stats.mismatches.value() > 0, "races must be detected");
    assert!(
        pair.retired_user() > 10_000,
        "and execution must make progress"
    );
    println!("\nevery race was detected, recovered, and execution progressed.");
}

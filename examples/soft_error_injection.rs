//! Soft-error tolerance demonstration: single-bit flips injected into the
//! vocal and mute pipelines are detected by fingerprint comparison before
//! retirement and repaired by rollback recovery — the architectural states
//! of the two cores agree afterwards.
//!
//! ```bash
//! cargo run --release --example soft_error_injection
//! ```

use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
use reunion_workloads::Workload;

fn main() {
    let workload = Workload::by_name("sparse").expect("in suite");
    let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
    let mut sys = CmpSystem::new(&cfg, &workload);

    // Warm up, then strike both halves of pair 0 at different points.
    sys.run(5_000);
    {
        let pair = sys.pair_mut(0).expect("redundant configuration");
        pair.vocal_mut().inject_soft_error_at(2_000, 17);
        pair.mute_mut().inject_soft_error_at(4_000, 5);
    }
    sys.run(60_000);

    let stats = sys.window_stats();
    println!("detected mismatches: {}", stats.mismatches);
    println!("recoveries:          {}", stats.recoveries);
    println!("failures:            {}", stats.failures);
    println!("user instructions:   {}", stats.user_instructions);

    let pair = sys.pair_mut(0).expect("redundant configuration");
    let vocal_state = pair.vocal().arch_state().clone();
    let mute_state = pair.mute().arch_state().clone();
    assert!(
        stats.mismatches >= 2,
        "both injected errors must be detected"
    );
    assert_eq!(
        stats.failures, 0,
        "single-bit errors are always recoverable"
    );
    assert_eq!(
        vocal_state.regs, mute_state.regs,
        "after recovery the pair's safe states agree"
    );
    println!("\nboth injected errors were detected and recovered;");
    println!("the vocal and mute architectural register files agree.");
}

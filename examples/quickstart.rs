//! Quickstart: build a Reunion CMP, run a workload, read the results.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use reunion_core::{measure, normalized_ipc, ExecutionMode, SampleConfig, SystemConfig};
use reunion_workloads::Workload;

fn main() {
    // Pick a workload from the Table 2 suite.
    let workload = Workload::by_name("apache").expect("apache is in the suite");

    // The paper's Table 1 machine: 4 logical processors, 64 KB L1s,
    // 16 MB shared L2, 10-cycle fingerprint comparison latency.
    let sample = SampleConfig {
        warmup: 50_000,
        window: 25_000,
        windows: 2,
    };

    // Measure the non-redundant baseline.
    let base = measure(
        &SystemConfig::table1(ExecutionMode::NonRedundant),
        &workload,
        &sample,
    );
    println!(
        "non-redundant baseline: {:.3} user IPC (±{:.3})",
        base.ipc, base.ipc_ci95
    );

    // Measure Reunion against a matched baseline.
    let reunion = normalized_ipc(
        &SystemConfig::table1(ExecutionMode::Reunion),
        &workload,
        &sample,
    );
    println!(
        "reunion: {:.3} normalized IPC, {:.1} input-incoherence events/1M, {} sync requests",
        reunion.normalized_ipc,
        reunion.model.incoherence_per_million(),
        reunion.model.totals.sync_requests,
    );
    println!(
        "         {} recoveries, {} phase-2, {} failures",
        reunion.model.totals.recoveries, reunion.model.totals.phase2, reunion.model.totals.failures,
    );

    // And the strict-input-replication oracle for comparison.
    let strict = normalized_ipc(
        &SystemConfig::table1(ExecutionMode::Strict),
        &workload,
        &sample,
    );
    println!("strict oracle: {:.3} normalized IPC", strict.normalized_ipc);
}

//! Phantom-request strength exploration (§4.2, Table 3, Figure 7a): how
//! diligently the shared cache controller searches for coherent data on a
//! mute fill determines the input-incoherence rate — and with it, Reunion's
//! performance.
//!
//! ```bash
//! cargo run --release --example phantom_strengths
//! ```

use reunion_core::{measure, ExecutionMode, SampleConfig, SystemConfig};
use reunion_mem::PhantomStrength;
use reunion_workloads::Workload;

fn main() {
    let workload = Workload::by_name("db2_oltp").expect("in suite");
    let sample = SampleConfig {
        warmup: 50_000,
        window: 25_000,
        windows: 2,
    };

    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12}",
        "strength", "IPC", "incoh/1M", "garbage fills", "recoveries"
    );
    let mut last_incoherence = -1.0f64;
    for strength in PhantomStrength::ALL.iter().rev() {
        let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
        cfg.phantom = *strength;
        let m = measure(&cfg, &workload, &sample);
        println!(
            "{:<8} {:>10.3} {:>14.1} {:>14} {:>12}",
            strength.to_string(),
            m.ipc,
            m.incoherence_per_million(),
            m.totals.phantom_garbage_fills,
            m.totals.recoveries,
        );
        assert!(
            m.incoherence_per_million() >= last_incoherence,
            "weaker phantom strengths must not reduce incoherence"
        );
        last_incoherence = m.incoherence_per_million();
    }
    println!("\nweaker phantom requests trade controller complexity for");
    println!("orders-of-magnitude more input incoherence (Table 3).");
}

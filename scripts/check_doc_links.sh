#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# points at a file or directory that actually exists. External (http/https)
# and intra-page (#anchor) links are skipped — the build environment has no
# network. Run from the repository root; CI's docs job runs this.
set -euo pipefail

fail=0
for doc in README.md ROADMAP.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Inline markdown links: [text](target). Reference-style links are not
    # used in this repo's docs.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN $doc -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "broken relative links found in docs"
    exit 1
fi
echo "all relative doc links resolve"

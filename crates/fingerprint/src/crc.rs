//! Table-driven CRC of configurable width.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed lookup tables for one `(width, polynomial)` pair.
///
/// `byte` is the classic byte-at-a-time table in width-aligned form;
/// `sliced` holds the eight slice-by-8 tables in *left-aligned* form (the
/// register justified against bit 31), which is what lets eight input bytes
/// fold in one step without per-byte shifts by a runtime width. For widths
/// below 8 the aligned identity does not apply and `sliced` stays unused.
#[derive(Debug, PartialEq, Eq)]
struct CrcTables {
    byte: [u32; 256],
    sliced: [[u32; 256]; 8],
}

impl CrcTables {
    fn build(width: u32, polynomial: u32) -> Self {
        let mask: u32 = if width == 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        let top: u32 = 1 << (width - 1);
        let mut byte = [0u32; 256];
        for (b, slot) in byte.iter_mut().enumerate() {
            // MSB-first update over one input byte.
            let mut reg = (b as u32) << (width.saturating_sub(8));
            for _ in 0..8 {
                reg = if reg & top != 0 {
                    (reg << 1) ^ polynomial
                } else {
                    reg << 1
                };
            }
            *slot = reg & mask;
        }
        let mut sliced = [[0u32; 256]; 8];
        if width >= 8 {
            let shift = 32 - width;
            // sliced[0] is the byte table left-aligned; sliced[k] advances
            // sliced[k-1] by one zero input byte, so sliced[k][b] is the
            // register contribution of byte b seen k steps earlier.
            for b in 0..256 {
                sliced[0][b] = byte[b] << shift;
            }
            for k in 1..8 {
                for b in 0..256 {
                    let prev = sliced[k - 1][b];
                    sliced[k][b] = (prev << 8) ^ sliced[0][(prev >> 24) as usize];
                }
            }
        }
        CrcTables { byte, sliced }
    }

    /// Tables are pure functions of `(width, polynomial)` and every
    /// fingerprint unit of every cell wants the same ones, so they are
    /// built once per process and shared (9 KB apiece).
    fn shared(width: u32, polynomial: u32) -> Arc<CrcTables> {
        type TableCache = Mutex<HashMap<(u32, u32), Arc<CrcTables>>>;
        static CACHE: OnceLock<TableCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut cache = cache.lock().expect("CRC table cache poisoned");
        cache
            .entry((width, polynomial))
            .or_insert_with(|| Arc::new(CrcTables::build(width, polynomial)))
            .clone()
    }
}

/// A table-driven CRC engine with a configurable width up to 32 bits.
///
/// Hardware fingerprint units use parallel CRC circuits (Albertengo & Sisto);
/// functionally a CRC is a linear feedback shift register, which this
/// software model reproduces exactly — [`BitwiseCrc`] is that reference
/// LFSR, and the property suite checks this engine against it bit for bit.
/// Internally, widths of 8 and above consume input in slice-by-8 steps
/// (eight bytes per table fold, the common case via
/// [`consume_u64`](Self::consume_u64)); the result is identical to the
/// byte-at-a-time update by GF(2) linearity of the CRC. The default
/// polynomial for 16-bit operation is CCITT (0x1021).
///
/// # Examples
///
/// ```
/// use reunion_fingerprint::Crc;
///
/// let mut crc = Crc::new_16();
/// crc.consume(b"123456789");
/// assert_eq!(crc.value(), 0x29B1); // CRC-16/CCITT-FALSE check value
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Crc {
    width: u32,
    tables: Arc<CrcTables>,
    state: u32,
    init: u32,
}

impl Crc {
    /// Creates a CRC engine.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn new(width: u32, polynomial: u32, init: u32) -> Self {
        assert!((1..=32).contains(&width), "CRC width must be in 1..=32");
        let mask: u32 = if width == 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        Crc {
            width,
            tables: CrcTables::shared(width, polynomial),
            state: init & mask,
            init: init & mask,
        }
    }

    /// The standard 16-bit CCITT CRC used throughout the paper's analysis.
    pub fn new_16() -> Self {
        Crc::new(16, 0x1021, 0xFFFF)
    }

    /// The CRC register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Feeds bytes into the register.
    pub fn consume(&mut self, bytes: &[u8]) {
        if self.width < 8 {
            // Narrow CRCs: fold each byte into the low bits (no aligned
            // slice-by-8 form exists below one input byte of width).
            let mask = self.mask();
            for &b in bytes {
                let idx = (self.state ^ b as u32) & 0xFF;
                self.state = self.tables.byte[idx as usize] & mask;
            }
            return;
        }
        // Left-align the register so every width shares one fold shape.
        let shift = 32 - self.width;
        let mut s = self.state << shift;
        let t = &self.tables.sliced;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            s = t[7][(((s >> 24) as u8) ^ c[0]) as usize]
                ^ t[6][(((s >> 16) as u8) ^ c[1]) as usize]
                ^ t[5][(((s >> 8) as u8) ^ c[2]) as usize]
                ^ t[4][((s as u8) ^ c[3]) as usize]
                ^ t[3][c[4] as usize]
                ^ t[2][c[5] as usize]
                ^ t[1][c[6] as usize]
                ^ t[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            s = (s << 8) ^ t[0][(((s >> 24) as u8) ^ b) as usize];
        }
        self.state = s >> shift;
    }

    /// Feeds a 64-bit word (big-endian byte order, matching the hardware's
    /// fixed lane assignment) — exactly one slice-by-8 fold.
    pub fn consume_u64(&mut self, word: u64) {
        self.consume(&word.to_be_bytes());
    }

    /// The current CRC register value.
    pub fn value(&self) -> u32 {
        self.state
    }

    /// Resets to the initial register value.
    pub fn reset(&mut self) {
        self.state = self.init;
    }

    /// Returns the register and resets — the per-interval emit operation.
    pub fn finish(&mut self) -> u32 {
        let v = self.state;
        self.reset();
        v
    }
}

/// The bit-serial reference LFSR: one register shift per input *bit*.
///
/// This is the textbook definition the table-driven [`Crc`] must agree
/// with; it exists as a public engine so property tests (and anyone
/// auditing the fingerprint model) can compare the optimized
/// implementation against first principles on arbitrary streams. Not for
/// hot paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitwiseCrc {
    width: u32,
    polynomial: u32,
    state: u32,
    init: u32,
}

impl BitwiseCrc {
    /// Creates a bit-serial CRC engine with the same semantics as
    /// [`Crc::new`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn new(width: u32, polynomial: u32, init: u32) -> Self {
        assert!((1..=32).contains(&width), "CRC width must be in 1..=32");
        let mask: u32 = if width == 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        BitwiseCrc {
            width,
            polynomial,
            state: init & mask,
            init: init & mask,
        }
    }

    /// Feeds bytes into the register, one LFSR step per bit.
    pub fn consume(&mut self, bytes: &[u8]) {
        let mask: u32 = if self.width == 32 {
            u32::MAX
        } else {
            (1 << self.width) - 1
        };
        let top: u32 = 1 << (self.width - 1);
        for &b in bytes {
            // MSB-first: the byte enters aligned against the register top
            // (folded into the low bits for widths under one byte).
            self.state ^= if self.width >= 8 {
                (b as u32) << (self.width - 8)
            } else {
                b as u32
            };
            self.state &= mask;
            for _ in 0..8 {
                self.state = if self.state & top != 0 {
                    ((self.state << 1) ^ self.polynomial) & mask
                } else {
                    (self.state << 1) & mask
                };
            }
        }
    }

    /// Feeds a 64-bit word (big-endian, same lane order as
    /// [`Crc::consume_u64`]).
    pub fn consume_u64(&mut self, word: u64) {
        self.consume(&word.to_be_bytes());
    }

    /// The current CRC register value.
    pub fn value(&self) -> u32 {
        self.state
    }

    /// Resets to the initial register value.
    pub fn reset(&mut self) {
        self.state = self.init;
    }

    /// Returns the register and resets.
    pub fn finish(&mut self) -> u32 {
        let v = self.state;
        self.reset();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccitt_check_value() {
        let mut crc = Crc::new_16();
        crc.consume(b"123456789");
        assert_eq!(crc.value(), 0x29B1);
    }

    #[test]
    fn bitwise_reference_matches_check_value() {
        let mut crc = BitwiseCrc::new(16, 0x1021, 0xFFFF);
        crc.consume(b"123456789");
        assert_eq!(crc.value(), 0x29B1);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Crc::new_16();
        let mut b = Crc::new_16();
        a.consume(b"ab");
        b.consume(b"ba");
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn finish_resets() {
        let mut crc = Crc::new_16();
        crc.consume(b"xyz");
        let v1 = crc.finish();
        crc.consume(b"xyz");
        let v2 = crc.finish();
        assert_eq!(v1, v2);
        assert_eq!(crc.value(), 0xFFFF);
    }

    #[test]
    fn value_fits_width() {
        for width in [8u32, 12, 16, 24, 32] {
            let mut crc = Crc::new(width, 0x1021, 0);
            crc.consume_u64(0xDEAD_BEEF_CAFE_F00D);
            if width < 32 {
                assert!(crc.value() < (1 << width), "width {width}");
            }
        }
    }

    #[test]
    fn sliced_matches_bitwise_across_widths_and_splits() {
        // Deterministic pseudo-random stream; every split point exercises a
        // different mix of 8-byte folds and tail bytes.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let stream: Vec<u8> = (0..64)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        for width in [5u32, 8, 12, 16, 24, 32] {
            let mut fast = Crc::new(width, 0x1021, !0);
            let mut reference = BitwiseCrc::new(width, 0x1021, !0);
            for split in 0..stream.len() {
                fast.reset();
                reference.reset();
                fast.consume(&stream[..split]);
                fast.consume(&stream[split..]);
                reference.consume(&stream);
                assert_eq!(
                    fast.value(),
                    reference.value(),
                    "width {width} split {split}"
                );
            }
        }
    }

    #[test]
    fn distinct_words_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..4096u64 {
            let mut crc = Crc::new_16();
            crc.consume_u64(i);
            if !seen.insert(crc.value()) {
                collisions += 1;
            }
        }
        // 4096 samples into 65536 buckets: expect ~128 collisions by
        // birthday statistics; far fewer than total.
        assert!(collisions < 400, "collisions={collisions}");
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_zero_width() {
        let _ = Crc::new(0, 1, 0);
    }
}

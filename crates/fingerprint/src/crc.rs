//! Table-driven CRC of configurable width.

/// A byte-at-a-time CRC engine with a configurable width up to 32 bits.
///
/// Hardware fingerprint units use parallel CRC circuits (Albertengo & Sisto);
/// functionally a CRC is a linear feedback shift register, which this
/// software model reproduces exactly. The default polynomial for 16-bit
/// operation is CCITT (0x1021).
///
/// # Examples
///
/// ```
/// use reunion_fingerprint::Crc;
///
/// let mut crc = Crc::new_16();
/// crc.consume(b"123456789");
/// assert_eq!(crc.value(), 0x29B1); // CRC-16/CCITT-FALSE check value
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Crc {
    width: u32,
    table: Vec<u32>,
    state: u32,
    init: u32,
}

impl Crc {
    /// Creates a CRC engine.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 32.
    pub fn new(width: u32, polynomial: u32, init: u32) -> Self {
        assert!((1..=32).contains(&width), "CRC width must be in 1..=32");
        let mask: u32 = if width == 32 {
            u32::MAX
        } else {
            (1 << width) - 1
        };
        let top: u32 = 1 << (width - 1);
        let mut table = vec![0u32; 256];
        for (byte, slot) in table.iter_mut().enumerate() {
            // MSB-first update over one input byte.
            let mut reg = (byte as u32) << (width.saturating_sub(8));
            for _ in 0..8 {
                reg = if reg & top != 0 {
                    (reg << 1) ^ polynomial
                } else {
                    reg << 1
                };
            }
            *slot = reg & mask;
        }
        Crc {
            width,
            table,
            state: init & mask,
            init: init & mask,
        }
    }

    /// The standard 16-bit CCITT CRC used throughout the paper's analysis.
    pub fn new_16() -> Self {
        Crc::new(16, 0x1021, 0xFFFF)
    }

    /// The CRC register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Feeds bytes into the register.
    pub fn consume(&mut self, bytes: &[u8]) {
        let mask = self.mask();
        for &b in bytes {
            let idx = if self.width >= 8 {
                ((self.state >> (self.width - 8)) ^ b as u32) & 0xFF
            } else {
                // Narrow CRCs: fold the byte into the low bits.
                (self.state ^ b as u32) & 0xFF
            };
            let shifted = if self.width >= 8 { self.state << 8 } else { 0 };
            self.state = (shifted ^ self.table[idx as usize]) & mask;
        }
    }

    /// Feeds a 64-bit word (big-endian byte order, matching the hardware's
    /// fixed lane assignment).
    pub fn consume_u64(&mut self, word: u64) {
        self.consume(&word.to_be_bytes());
    }

    /// The current CRC register value.
    pub fn value(&self) -> u32 {
        self.state
    }

    /// Resets to the initial register value.
    pub fn reset(&mut self) {
        self.state = self.init;
    }

    /// Returns the register and resets — the per-interval emit operation.
    pub fn finish(&mut self) -> u32 {
        let v = self.state;
        self.reset();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccitt_check_value() {
        let mut crc = Crc::new_16();
        crc.consume(b"123456789");
        assert_eq!(crc.value(), 0x29B1);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Crc::new_16();
        let mut b = Crc::new_16();
        a.consume(b"ab");
        b.consume(b"ba");
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn finish_resets() {
        let mut crc = Crc::new_16();
        crc.consume(b"xyz");
        let v1 = crc.finish();
        crc.consume(b"xyz");
        let v2 = crc.finish();
        assert_eq!(v1, v2);
        assert_eq!(crc.value(), 0xFFFF);
    }

    #[test]
    fn value_fits_width() {
        for width in [8u32, 12, 16, 24, 32] {
            let mut crc = Crc::new(width, 0x1021, 0);
            crc.consume_u64(0xDEAD_BEEF_CAFE_F00D);
            if width < 32 {
                assert!(crc.value() < (1 << width), "width {width}");
            }
        }
    }

    #[test]
    fn distinct_words_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..4096u64 {
            let mut crc = Crc::new_16();
            crc.consume_u64(i);
            if !seen.insert(crc.value()) {
                collisions += 1;
            }
        }
        // 4096 samples into 65536 buckets: expect ~128 collisions by
        // birthday statistics; far fewer than total.
        assert!(collisions < 400, "collisions={collisions}");
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn rejects_zero_width() {
        let _ = Crc::new(0, 1, 0);
    }
}

//! Aliasing-probability analysis.
//!
//! A fingerprint *aliases* when a corrupted update stream produces the same
//! hash as the correct stream, leaving the error undetected. The paper cites
//! two results (§4.3):
//!
//! * a direct `N`-bit CRC aliases with probability at most `2^-N` under the
//!   uniform-error model;
//! * the two-stage parity+CRC pipeline at most doubles this, to `2^-(N-1)`.
//!
//! This module provides those bounds plus a Monte Carlo estimator used by
//! the test-suite and the `aliasing` experiment binary to confirm the
//! implementation obeys them.

use reunion_kernel::SimRng;

use crate::TwoStageCompressor;

/// The analytic aliasing bound for a direct `n`-bit CRC: `2^-n`.
pub fn crc_bound(n: u32) -> f64 {
    0.5f64.powi(n as i32)
}

/// The analytic aliasing bound for the two-stage compressor: `2^-(n-1)`.
pub fn two_stage_bound(n: u32) -> f64 {
    0.5f64.powi(n as i32 - 1)
}

/// Result of a Monte Carlo aliasing measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AliasingEstimate {
    /// Number of corrupted streams tried.
    pub trials: u64,
    /// Number that aliased (hash matched the uncorrupted stream).
    pub aliased: u64,
}

impl AliasingEstimate {
    /// Observed aliasing probability.
    pub fn probability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.aliased as f64 / self.trials as f64
        }
    }
}

/// Estimates the aliasing probability of an `n`-bit two-stage compressor by
/// injecting random multi-bit corruptions into random update streams.
///
/// Each trial builds a reference stream of `cycles` retirement cycles,
/// corrupts a uniformly random subset of bits in one random cycle, and
/// checks whether the fingerprints still collide.
pub fn estimate_two_stage(n: u32, cycles: usize, trials: u64, seed: u64) -> AliasingEstimate {
    let mut rng = SimRng::seed_from(seed);
    let mut aliased = 0;
    for _ in 0..trials {
        let stream: Vec<[u64; 4]> = (0..cycles)
            .map(|_| {
                [
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                ]
            })
            .collect();

        let mut reference = TwoStageCompressor::new(n);
        for cycle in &stream {
            reference.absorb_cycle(cycle);
        }
        let expected = reference.finish();

        // Corrupt one random cycle with a random nonzero flip mask.
        let victim = rng.below(cycles as u64) as usize;
        let mut corrupted = stream;
        loop {
            let word = rng.below(4) as usize;
            let mask = rng.next_u64();
            if mask != 0 {
                corrupted[victim][word] ^= mask;
                break;
            }
        }

        let mut check = TwoStageCompressor::new(n);
        for cycle in &corrupted {
            check.absorb_cycle(cycle);
        }
        if check.finish() == expected {
            aliased += 1;
        }
    }
    AliasingEstimate { trials, aliased }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_ordered() {
        assert!(two_stage_bound(16) > crc_bound(16));
        assert!((crc_bound(16) - 1.0 / 65536.0).abs() < 1e-12);
        assert!((two_stage_bound(16) - 2.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn sixteen_bit_exceeds_coverage_goals() {
        // The paper: a 16-bit CRC exceeds industry error coverage goals by
        // an order of magnitude; spot-check the bound is tiny.
        assert!(two_stage_bound(16) < 1e-4);
    }

    #[test]
    fn monte_carlo_respects_bound_loosely() {
        // 20k trials at n=16: expected aliases <= 2 * 20000/65536 ≈ 0.6.
        // Allow generous slack while still catching gross breakage.
        let est = estimate_two_stage(16, 8, 20_000, 0xFEED);
        assert!(
            est.aliased <= 12,
            "aliasing far above bound: {} in {}",
            est.aliased,
            est.trials
        );
    }

    #[test]
    fn probability_degenerate() {
        let est = AliasingEstimate {
            trials: 0,
            aliased: 0,
        };
        assert_eq!(est.probability(), 0.0);
    }

    #[test]
    fn narrow_widths_alias_measurably() {
        // An 8-bit fingerprint should alias at a visible rate (~2/256).
        let est = estimate_two_stage(8, 4, 30_000, 0xBEEF);
        assert!(est.aliased > 0, "8-bit compressor should alias sometimes");
        assert!(est.probability() < 0.05);
    }
}

//! The architectural fingerprint unit.

use std::fmt;

use crate::Crc;

/// A compressed summary of architectural updates over one fingerprint
/// interval, as swapped between the vocal and mute cores.
///
/// Equality of fingerprints is the check-stage comparison; the `interval_id`
/// ensures fingerprints from different intervals are never confused even if
/// the hash values coincide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Monotonic interval number within the run.
    pub interval_id: u64,
    /// Number of instructions summarized.
    pub count: u32,
    /// The compressed hash register.
    pub hash: u32,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fp#{}[{} insts]={:#06x}",
            self.interval_id, self.count, self.hash
        )
    }
}

impl Fingerprint {
    /// Whether two fingerprints cover the same interval and match.
    ///
    /// Fingerprints for different intervals are incomparable; callers align
    /// intervals before checking.
    pub fn matches(&self, other: &Fingerprint) -> bool {
        self.interval_id == other.interval_id && self.hash == other.hash
    }
}

/// One instruction's contribution to the fingerprint: "all register updates,
/// branch targets, store addresses, and store values" (§4.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Destination register index and value, if any.
    pub reg: Option<(u8, u64)>,
    /// Store (or synchronizing/uncacheable) address, if any.
    pub addr: Option<u64>,
    /// Store value, if any.
    pub data: Option<u64>,
    /// Resolved branch target, if a control transfer.
    pub target: Option<u64>,
}

impl UpdateRecord {
    /// A register update.
    pub fn reg(index: u8, value: u64) -> Self {
        UpdateRecord {
            reg: Some((index, value)),
            ..Default::default()
        }
    }

    /// A store of `data` to `addr`.
    pub fn store(addr: u64, data: u64) -> Self {
        UpdateRecord {
            addr: Some(addr),
            data: Some(data),
            ..Default::default()
        }
    }

    /// A branch resolving to `target`.
    pub fn branch(target: u64) -> Self {
        UpdateRecord {
            target: Some(target),
            ..Default::default()
        }
    }

    /// A load: register update plus the accessed address.
    ///
    /// Including the address extends coverage to the address-generation
    /// path; relaxed input replication checks it implicitly because both
    /// cores compute it independently.
    pub fn load(index: u8, value: u64, addr: u64) -> Self {
        UpdateRecord {
            reg: Some((index, value)),
            addr: Some(addr),
            ..Default::default()
        }
    }

    /// Whether the record carries no architectural payload (e.g. a nop).
    pub fn is_empty(&self) -> bool {
        self.reg.is_none() && self.addr.is_none() && self.data.is_none() && self.target.is_none()
    }
}

/// Accumulates update records and emits fingerprints at interval boundaries.
///
/// The *fingerprint interval* — how many instructions each fingerprint
/// summarizes — trades comparison bandwidth against detection latency; the
/// paper finds intervals of 1 and 50 perform indistinguishably (§4.3). The
/// interval is enforced by the caller (the check stage), which decides when
/// to [`emit`](FingerprintUnit::emit); serializing instructions force an
/// early emit.
///
/// # Examples
///
/// ```
/// use reunion_fingerprint::{FingerprintUnit, UpdateRecord};
///
/// let mut unit = FingerprintUnit::new(16);
/// unit.absorb(&UpdateRecord::store(0x100, 7));
/// let fp = unit.emit();
/// assert_eq!(fp.count, 1);
/// assert_eq!(fp.interval_id, 0);
/// assert_eq!(unit.emit().interval_id, 1); // empty intervals still advance
/// ```
#[derive(Clone, Debug)]
pub struct FingerprintUnit {
    crc: Crc,
    next_interval: u64,
    count: u32,
}

impl FingerprintUnit {
    /// Creates a unit with an `width`-bit CRC register.
    pub fn new(width: u32) -> Self {
        FingerprintUnit {
            crc: Crc::new(width, 0x1021, !0u32),
            next_interval: 0,
            count: 0,
        }
    }

    /// Absorbs one instruction's update record.
    pub fn absorb(&mut self, record: &UpdateRecord) {
        // Fixed lane tags keep distinct update kinds from aliasing (a store
        // of value V and a register write of V must differ). The record is
        // serialized into one stack buffer and consumed in a single call:
        // the CRC is chunking-invariant, so the hash is identical to
        // feeding each field separately, but the slice-by-8 engine sees
        // whole 8-byte folds instead of a run of 1–2 byte tails.
        let mut buf = [0u8; 38];
        let mut len = 0;
        let mut put = |bytes: &[u8]| {
            buf[len..len + bytes.len()].copy_from_slice(bytes);
            len += bytes.len();
        };
        if let Some((idx, value)) = record.reg {
            put(&[0xA1, idx]);
            put(&value.to_be_bytes());
        }
        if let Some(addr) = record.addr {
            put(&[0xB2]);
            put(&addr.to_be_bytes());
        }
        if let Some(data) = record.data {
            put(&[0xC3]);
            put(&data.to_be_bytes());
        }
        if let Some(target) = record.target {
            put(&[0xD4]);
            put(&target.to_be_bytes());
        }
        self.crc.consume(&buf[..len]);
        self.count += 1;
    }

    /// Number of instructions absorbed in the current interval.
    pub fn pending(&self) -> u32 {
        self.count
    }

    /// The id the next emitted fingerprint will carry.
    pub fn next_interval_id(&self) -> u64 {
        self.next_interval
    }

    /// Ends the interval: returns its fingerprint and starts the next.
    pub fn emit(&mut self) -> Fingerprint {
        let fp = Fingerprint {
            interval_id: self.next_interval,
            count: self.count,
            hash: self.crc.finish(),
        };
        self.next_interval += 1;
        self.count = 0;
        fp
    }

    /// Discards the current interval *without* advancing the interval id —
    /// used on pipeline flush, when uncompared instructions are squashed.
    pub fn squash(&mut self) {
        self.crc.reset();
        self.count = 0;
    }

    /// Restarts interval numbering (between measurement windows).
    pub fn reset(&mut self) {
        self.squash();
        self.next_interval = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_produce_matching_fingerprints() {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        for i in 0..50u64 {
            let rec = UpdateRecord::reg((i % 32) as u8, i * 13);
            a.absorb(&rec);
            b.absorb(&rec);
        }
        assert!(a.emit().matches(&b.emit()));
    }

    #[test]
    fn differing_value_is_detected() {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        a.absorb(&UpdateRecord::reg(1, 100));
        b.absorb(&UpdateRecord::reg(1, 101));
        assert!(!a.emit().matches(&b.emit()));
    }

    #[test]
    fn update_kinds_do_not_alias() {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        a.absorb(&UpdateRecord::store(5, 0));
        b.absorb(&UpdateRecord::branch(5));
        assert_ne!(a.emit().hash, b.emit().hash);
    }

    #[test]
    fn interval_ids_never_match_across_intervals() {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        a.absorb(&UpdateRecord::reg(1, 1));
        let fa = a.emit();
        b.emit(); // b skips an interval
        b.absorb(&UpdateRecord::reg(1, 1));
        let fb = b.emit();
        assert_eq!(fa.hash, fb.hash);
        assert!(!fa.matches(&fb), "different intervals must not match");
    }

    #[test]
    fn squash_discards_without_advancing() {
        let mut u = FingerprintUnit::new(16);
        u.absorb(&UpdateRecord::reg(2, 9));
        u.squash();
        let fp = u.emit();
        assert_eq!(fp.interval_id, 0);
        assert_eq!(fp.count, 0);
    }

    #[test]
    fn load_record_covers_address() {
        let mut a = FingerprintUnit::new(16);
        let mut b = FingerprintUnit::new(16);
        a.absorb(&UpdateRecord::load(1, 7, 0x100));
        b.absorb(&UpdateRecord::load(1, 7, 0x108));
        assert_ne!(
            a.emit().hash,
            b.emit().hash,
            "address divergence must be visible"
        );
    }

    #[test]
    fn empty_record_detection() {
        assert!(UpdateRecord::default().is_empty());
        assert!(!UpdateRecord::reg(0, 0).is_empty());
    }

    #[test]
    fn display_format() {
        let fp = Fingerprint {
            interval_id: 3,
            count: 2,
            hash: 0xAB,
        };
        assert!(fp.to_string().contains("fp#3"));
    }

    #[test]
    fn reset_restarts_interval_numbering() {
        let mut u = FingerprintUnit::new(16);
        u.emit();
        u.emit();
        u.reset();
        assert_eq!(u.emit().interval_id, 0);
    }
}

//! Parity-tree space compression.

/// A single-cycle space compressor: XOR-folds an `M`-bit update vector down
/// to `N` output bits using interleaved parity trees.
///
/// Wide superscalar retirement can produce more than 256 bits of state per
/// cycle — more than feasible hash circuits consume in one clock (§4.3).
/// Parity trees reduce the raw vector to the CRC's input width in a single
/// cycle, at the cost of a bounded loss in error coverage (any *even* number
/// of flips within one tree aliases).
///
/// Bit `i` of the input feeds output lane `i % n_out`, matching the
/// multiplexed parity-tree construction of Chakrabarty & Hayes.
///
/// # Examples
///
/// ```
/// use reunion_fingerprint::ParityTree;
///
/// let tree = ParityTree::new(16);
/// let a = tree.compress(&[0xFF00]);
/// let b = tree.compress(&[0x00FF]);
/// assert_eq!(a.len(), 2); // 16 bits = 2 bytes
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParityTree {
    n_out: u32,
}

impl ParityTree {
    /// Creates a compressor with `n_out` output bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_out` is zero or not a multiple of 8 (byte-oriented
    /// downstream CRC) or greater than 64.
    pub fn new(n_out: u32) -> Self {
        assert!(
            n_out > 0 && n_out <= 64 && n_out % 8 == 0,
            "parity output width must be a byte multiple in 8..=64"
        );
        ParityTree { n_out }
    }

    /// Output width in bits.
    pub fn output_bits(&self) -> u32 {
        self.n_out
    }

    /// Folds `words` (an arbitrary-width bit vector, 64 bits per element)
    /// into `n_out` bits, returned as big-endian bytes for the CRC stage.
    pub fn compress(&self, words: &[u64]) -> Vec<u8> {
        let mut lanes = 0u64;
        for (wi, &word) in words.iter().enumerate() {
            let base = (wi as u32 * 64) % self.n_out;
            // Each input bit i lands in lane (base + i) mod n_out.
            let mut w = word;
            let mut bit = 0u32;
            while w != 0 {
                let tz = w.trailing_zeros();
                bit += tz;
                let lane = (base + bit) % self.n_out;
                lanes ^= 1 << lane;
                w >>= tz;
                w >>= 1; // clear the bit just processed
                bit += 1;
            }
        }
        let n_bytes = (self.n_out / 8) as usize;
        lanes.to_be_bytes()[8 - n_bytes..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_flip_changes_output() {
        let tree = ParityTree::new(16);
        let base = tree.compress(&[0x0123_4567_89AB_CDEF]);
        for bit in 0..64 {
            let flipped = tree.compress(&[0x0123_4567_89AB_CDEF ^ (1 << bit)]);
            assert_ne!(base, flipped, "flip of bit {bit} must be detected");
        }
    }

    #[test]
    fn even_flips_in_same_lane_alias() {
        // Bits 0 and 16 of word 0 both map to lane 0 of a 16-bit tree:
        // flipping both must alias — the documented coverage loss.
        let tree = ParityTree::new(16);
        let a = tree.compress(&[0]);
        let b = tree.compress(&[(1 << 0) | (1 << 16)]);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_word_offsets_decorrelate() {
        // 64-bit words at different positions shift lanes by 64 % n_out, so
        // the same word in different slots compresses differently when
        // n_out does not divide 64 evenly... for 16 it does (64%16==0), use 24.
        let tree = ParityTree::new(24);
        let a = tree.compress(&[5, 0]);
        let b = tree.compress(&[0, 5]);
        assert_ne!(a, b);
    }

    #[test]
    fn output_length_matches_width() {
        assert_eq!(ParityTree::new(8).compress(&[1]).len(), 1);
        assert_eq!(ParityTree::new(32).compress(&[1]).len(), 4);
        assert_eq!(ParityTree::new(64).compress(&[1]).len(), 8);
    }

    #[test]
    fn empty_input_is_zero() {
        let tree = ParityTree::new(16);
        assert_eq!(tree.compress(&[]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "byte multiple")]
    fn rejects_non_byte_width() {
        let _ = ParityTree::new(12);
    }
}

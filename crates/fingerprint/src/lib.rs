//! Fingerprinting for lightweight soft-error detection.
//!
//! A *fingerprint* (Smolens et al., ASPLOS 2004, extended by Reunion §4.3)
//! compresses the architectural state updates of an instruction sequence —
//! register writes, branch targets, store addresses and store values — into
//! a small hash. Two redundant cores exchange and compare fingerprints at
//! retirement; a mismatch signals a soft error or input incoherence.
//!
//! This crate implements:
//!
//! * [`Crc`] — a table-driven CRC of configurable width (the paper's 16-bit
//!   CRC "already exceeds industry system error coverage goals by an order
//!   of magnitude").
//! * [`ParityTree`] — single-cycle space compression of a wide update vector
//!   down to the width a CRC circuit can consume.
//! * [`TwoStageCompressor`] — the paper's parity-trees-then-CRC pipeline for
//!   wide superscalar retirement (>256 bits of state per cycle), which at
//!   most doubles the aliasing probability to `2^-(N-1)`.
//! * [`FingerprintUnit`] — accumulates [`UpdateRecord`]s over a configurable
//!   *fingerprint interval* and emits [`Fingerprint`]s for comparison.
//! * [`aliasing`] — analytic bounds and a Monte Carlo estimator for the
//!   probability that a corrupted execution aliases to the same fingerprint.
//!
//! # Examples
//!
//! ```
//! use reunion_fingerprint::{FingerprintUnit, UpdateRecord};
//!
//! let mut vocal = FingerprintUnit::new(16);
//! let mut mute = FingerprintUnit::new(16);
//! let upd = UpdateRecord::reg(3, 42);
//! vocal.absorb(&upd);
//! mute.absorb(&upd);
//! assert_eq!(vocal.emit(), mute.emit());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aliasing;
mod crc;
mod parity;
mod two_stage;
mod unit;

pub use crc::{BitwiseCrc, Crc};
pub use parity::ParityTree;
pub use two_stage::TwoStageCompressor;
pub use unit::{Fingerprint, FingerprintUnit, UpdateRecord};

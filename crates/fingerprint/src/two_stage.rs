//! The two-stage compression pipeline for wide retirement.

use crate::{Crc, ParityTree};

/// Parity trees feeding a CRC: the paper's solution for fingerprinting a
/// retirement bandwidth wider than a hash circuit can consume per clock.
///
/// Each call to [`absorb_cycle`](TwoStageCompressor::absorb_cycle) models one
/// retirement cycle: the raw `M`-bit update vector is space-compressed to
/// `N` bits by parity trees in that clock, and the compressed bits feed the
/// time-compressing CRC in the next. Assuming all bit-flip combinations are
/// equally likely, the parity stage at most doubles the aliasing
/// probability, giving `P(alias) <= 2^-(N-1)` (§4.3).
///
/// # Examples
///
/// ```
/// use reunion_fingerprint::TwoStageCompressor;
///
/// let mut a = TwoStageCompressor::new(16);
/// let mut b = TwoStageCompressor::new(16);
/// a.absorb_cycle(&[1, 2, 3, 4]); // 256 bits in one cycle
/// b.absorb_cycle(&[1, 2, 3, 4]);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct TwoStageCompressor {
    tree: ParityTree,
    crc: Crc,
}

impl TwoStageCompressor {
    /// Creates a compressor with `n`-bit parity output and an `n`-bit CRC.
    ///
    /// # Panics
    ///
    /// Panics under the same width constraints as [`ParityTree::new`] and
    /// [`Crc::new`] (byte-multiple widths in `8..=32`).
    pub fn new(n: u32) -> Self {
        TwoStageCompressor {
            tree: ParityTree::new(n),
            crc: Crc::new(n.min(32), 0x1021, !0u32),
        }
    }

    /// Compressed width in bits.
    pub fn width(&self) -> u32 {
        self.tree.output_bits()
    }

    /// Absorbs one retirement cycle's raw update vector (64 bits per word;
    /// a 4-wide machine retiring full results produces four or more words).
    pub fn absorb_cycle(&mut self, update_words: &[u64]) {
        let compressed = self.tree.compress(update_words);
        self.crc.consume(&compressed);
    }

    /// Emits the fingerprint register and resets for the next interval.
    pub fn finish(&mut self) -> u32 {
        self.crc.finish()
    }

    /// Current register value without resetting.
    pub fn value(&self) -> u32 {
        self.crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_streams_match() {
        let mut a = TwoStageCompressor::new(16);
        let mut b = TwoStageCompressor::new(16);
        for i in 0..100u64 {
            a.absorb_cycle(&[i, i * 3, i * 7, i * 11]);
            b.absorb_cycle(&[i, i * 3, i * 7, i * 11]);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_difference_detected() {
        let mut a = TwoStageCompressor::new(16);
        let mut b = TwoStageCompressor::new(16);
        a.absorb_cycle(&[0, 0, 0, 0]);
        b.absorb_cycle(&[0, 0, 0, 1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn parity_stage_can_alias_within_a_cycle() {
        // Two flips landing in the same parity lane inside one cycle alias
        // at the space-compression stage — the documented coverage cost.
        let mut a = TwoStageCompressor::new(16);
        let mut b = TwoStageCompressor::new(16);
        a.absorb_cycle(&[0]);
        b.absorb_cycle(&[(1 << 0) | (1 << 16)]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn same_flips_in_different_cycles_do_not_alias() {
        // Across cycles the CRC separates them.
        let mut a = TwoStageCompressor::new(16);
        let mut b = TwoStageCompressor::new(16);
        a.absorb_cycle(&[1]);
        a.absorb_cycle(&[0]);
        b.absorb_cycle(&[0]);
        b.absorb_cycle(&[1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn finish_resets_for_next_interval() {
        let mut c = TwoStageCompressor::new(16);
        c.absorb_cycle(&[9, 9]);
        let first = c.finish();
        c.absorb_cycle(&[9, 9]);
        assert_eq!(c.finish(), first);
    }

    #[test]
    fn width_reported() {
        assert_eq!(TwoStageCompressor::new(24).width(), 24);
    }
}

//! Per-core statistics.

use reunion_kernel::stats::Counter;
use reunion_obs::EpisodeSummary;

/// Event counters maintained by one core.
#[derive(Clone, Debug)]
pub struct CoreStats {
    /// Retired user (workload) instructions — the IPC numerator.
    pub retired_user: Counter,
    /// All retired instructions including injected handler instructions.
    pub retired_total: Counter,
    /// Serializing instructions retired.
    pub serializing: Counter,
    /// Branch mispredictions.
    pub mispredicts: Counter,
    /// Conditional/unconditional branches retired.
    pub branches: Counter,
    /// DTLB misses.
    pub dtlb_misses: Counter,
    /// Synthetic ITLB misses.
    pub itlb_misses: Counter,
    /// Pipeline rollbacks (recoveries) executed.
    pub rollbacks: Counter,
    /// Loads satisfied by store-buffer forwarding.
    pub forwarded_loads: Counter,
    /// Loads whose value was supplied by a synchronizing request.
    pub sync_loads: Counter,
    /// Fingerprint intervals emitted.
    pub intervals: Counter,
    /// Cycles retirement stalled at a serializing interval waiting for the
    /// check round trip (beyond the release grant itself).
    pub serializing_stall_cycles: Counter,
    /// Cycles charged as check-stage round-trip penalties during
    /// input-incoherence re-executions.
    pub reexec_penalty_cycles: Counter,
    /// Peak occupancy of the check-event buffer between drains — an
    /// allocation-sensitivity probe: the buffer's capacity is recycled, so
    /// a jump here means the hot path's steady-state footprint changed.
    pub peak_check_events: u64,
    /// Peak length of any one store-buffer chain (pending stores behind a
    /// single word). Stays within the inline capacity on every suite
    /// workload; see `store_chain_spills`.
    pub peak_store_chain: u64,
    /// Store-buffer pushes that landed past the inline small-buffer
    /// capacity and hit the heap.
    pub store_chain_spills: Counter,
    /// Lengths of completed serializing-stall episodes (runs of consecutive
    /// retire-stage stall cycles at one serializing interval). The cycle
    /// total matches `serializing_stall_cycles` for episodes that complete
    /// inside the window; an episode spanning a window boundary is credited
    /// to the window in which it ends.
    pub stall_episodes: EpisodeSummary,
}

impl CoreStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CoreStats {
            retired_user: Counter::new("retired_user"),
            retired_total: Counter::new("retired_total"),
            serializing: Counter::new("serializing"),
            mispredicts: Counter::new("mispredicts"),
            branches: Counter::new("branches"),
            dtlb_misses: Counter::new("dtlb_misses"),
            itlb_misses: Counter::new("itlb_misses"),
            rollbacks: Counter::new("rollbacks"),
            forwarded_loads: Counter::new("forwarded_loads"),
            sync_loads: Counter::new("sync_loads"),
            intervals: Counter::new("intervals"),
            serializing_stall_cycles: Counter::new("serializing_stall_cycles"),
            reexec_penalty_cycles: Counter::new("reexec_penalty_cycles"),
            peak_check_events: 0,
            peak_store_chain: 0,
            store_chain_spills: Counter::new("store_chain_spills"),
            stall_episodes: EpisodeSummary::new(),
        }
    }

    /// Resets every counter (between measurement windows).
    pub fn reset(&mut self) {
        self.retired_user.reset();
        self.retired_total.reset();
        self.serializing.reset();
        self.mispredicts.reset();
        self.branches.reset();
        self.dtlb_misses.reset();
        self.itlb_misses.reset();
        self.rollbacks.reset();
        self.forwarded_loads.reset();
        self.sync_loads.reset();
        self.intervals.reset();
        self.serializing_stall_cycles.reset();
        self.reexec_penalty_cycles.reset();
        self.peak_check_events = 0;
        self.peak_store_chain = 0;
        self.store_chain_spills.reset();
        self.stall_episodes = EpisodeSummary::new();
    }

    /// Combined TLB misses (Table 3's "TLB Misses" column).
    pub fn tlb_misses(&self) -> u64 {
        self.dtlb_misses.value() + self.itlb_misses.value()
    }
}

impl Default for CoreStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_misses_combines_both() {
        let mut s = CoreStats::new();
        s.dtlb_misses.add(3);
        s.itlb_misses.add(2);
        assert_eq!(s.tlb_misses(), 5);
    }

    #[test]
    fn reset_clears() {
        let mut s = CoreStats::new();
        s.retired_user.add(100);
        s.reset();
        assert_eq!(s.retired_user.value(), 0);
    }
}

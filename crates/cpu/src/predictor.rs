//! Branch direction prediction.

/// A gshare branch predictor: global history XOR PC indexing a table of
/// two-bit saturating counters.
///
/// Both cores of a logical processor pair run identical instruction streams,
/// so their predictors stay in lockstep — which is why the paper notes that
/// predictor state need not be initialized identically for *correctness*
/// (divergent predictions only perturb timing). Our cores are seeded
/// identically so predictions match, keeping slip attributable to the memory
/// system.
///
/// # Examples
///
/// ```
/// use reunion_cpu::Gshare;
///
/// let mut bp = Gshare::new(12);
/// // Train on an always-taken branch at PC 100.
/// for _ in 0..8 {
///     let _ = bp.predict(100);
///     bp.update(100, true);
/// }
/// assert!(bp.predict(100));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a predictor with `2^log2_entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is zero or greater than 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!(
            (1..=24).contains(&log2_entries),
            "unreasonable predictor size"
        );
        let entries = 1usize << log2_entries;
        Gshare {
            // Weakly taken: loop-heavy synthetic code warms up quickly.
            table: vec![2; entries],
            history: 0,
            mask: (entries - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the predictor with the resolved direction and shifts history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let counter = &mut self.table[idx];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut bp = Gshare::new(10);
        for _ in 0..16 {
            bp.update(0x40, true);
        }
        assert!(bp.predict(0x40));
        for _ in 0..16 {
            bp.update(0x40, false);
        }
        assert!(!bp.predict(0x40));
    }

    #[test]
    fn identical_seeds_stay_in_lockstep() {
        let mut a = Gshare::new(10);
        let mut b = Gshare::new(10);
        // An arbitrary deterministic outcome pattern.
        for i in 0..200u64 {
            let pc = (i * 7) % 64;
            let taken = (i * i) % 3 == 0;
            assert_eq!(a.predict(pc), b.predict(pc));
            a.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn counters_saturate() {
        let mut bp = Gshare::new(4);
        for _ in 0..100 {
            bp.update(1, true);
        }
        for _ in 0..2 {
            bp.update(1, false);
        }
        // Two not-taken updates from saturation shouldn't flip all the way.
        // (History shifts, so just check it doesn't panic and still returns.)
        let _ = bp.predict(1);
    }

    #[test]
    #[should_panic(expected = "unreasonable")]
    fn rejects_zero_size() {
        let _ = Gshare::new(0);
    }
}

//! The core pipeline: dispatch, execution timing, check and retirement.

use std::collections::VecDeque;
use std::sync::Arc;

use reunion_fingerprint::{FingerprintUnit, UpdateRecord};
use reunion_isa::{
    alu_compute, branch_decides, effective_address, Addr, ArchState, Instruction, Opcode, Program,
    RegId,
};
use reunion_kernel::{Cycle, EventHorizon, FastHashMap, InlineVec, SimRng};
use reunion_mem::{L1Id, MemorySystem};

use crate::{
    software_tlb_handler, CheckEvent, CoreConfig, CoreStats, Gshare, ReleaseGrant, SyncRequest,
    Tlb, TlbMode,
};

/// Architectural effects carried by a ROB entry until retirement.
#[derive(Clone, Copy, Debug)]
struct RobEntry {
    interval_id: u64,
    user: bool,
    serializing: bool,
    /// Completion time (raw cycles); `u64::MAX` while awaiting a
    /// synchronizing-request fulfillment.
    completion: u64,
    /// In-order check-stage time: running max of completions.
    check_time: u64,
    /// Register writeback applied to the retired ARF.
    reg_write: Option<(RegId, u64)>,
    /// Store drained to the memory system at retirement.
    store: Option<(Addr, u64)>,
    /// Vocal atomics take exclusive ownership at dispatch but apply their
    /// memory write only at retirement, after output comparison (the update
    /// must not be visible before it is checked): `(addr, op, operand,
    /// value_read)`.
    atomic_commit: Option<(Addr, reunion_isa::AtomicOp, u64, u64)>,
    /// PC after this instruction (unchanged for injected handler code).
    next_pc: usize,
    /// Sequence number of the store for store-buffer bookkeeping.
    seq: u64,
}

/// One out-of-order core attached to a private L1.
///
/// See the [crate docs](crate) for the modeling approach and an example.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    program: Arc<Program>,
    l1: L1Id,

    /// Speculative (dispatch-time) architectural state.
    spec: ArchState,
    /// Retired (safe) architectural state.
    retired: ArchState,

    rob: VecDeque<RobEntry>,
    seq_next: u64,
    epoch: u64,
    reg_ready: [u64; 32],
    last_check_time: u64,
    fetch_free: u64,
    halted: bool,

    // Store chains behind one word are almost always a single entry;
    // InlineVec keeps pushes off the allocator, and FastHashMap keeps the
    // per-access lookups off SipHash. Neither map is ever iterated.
    pending_stores: FastHashMap<u64, InlineVec<(u64, u64), 4>>,
    sb_count: usize,
    last_drain_done: u64,

    fp: FingerprintUnit,
    events: Vec<CheckEvent>,
    /// Release grants for the current epoch, ordered by interval id.
    ///
    /// The pair driver compares fingerprints in interval order and the ROB
    /// consumes intervals in program order, so grants behave as a FIFO:
    /// `(interval_id, granted_at)` pairs are pushed at the back, looked up
    /// at the front, and popped when their interval fully retires. Stale
    /// epochs never enter ([`grant`](Self::grant) filters them) and
    /// [`rollback`](Self::rollback) clears the queue wholesale.
    grants: VecDeque<(u64, u64)>,

    lvq: VecDeque<u64>,
    load_values_out: Vec<u64>,
    lvq_producer: bool,
    is_mute_l1: bool,

    inject: VecDeque<Instruction>,
    interrupt_at_interval: Option<u64>,

    single_step: bool,
    pending_sync: Option<SyncRequest>,
    sync_pending_seq: Option<u64>,
    /// A dispatched serializing instruction blocks all younger instructions
    /// from entering the pipeline until it retires (§4.4).
    serializing_block: bool,

    dtlb: Tlb,
    itlb_seed: u64,
    user_fetch_index: u64,
    user_retire_index: u64,
    itlb_served: Option<u64>,

    predictor: Gshare,

    error_at: Option<(u64, u32)>,

    /// Length of the serializing-stall episode currently in progress
    /// (consecutive retire-stall cycles at one serializing interval). Lives
    /// outside `CoreStats` so a window reset never truncates an open
    /// episode; the run is credited to `stats.stall_episodes` in the window
    /// where it ends.
    stall_run: u64,

    /// Whether [`tick_compute`](Self::tick_compute) already performed this
    /// cycle's tick memory-free (making the commit phase a no-op).
    computed: bool,

    stats: CoreStats,
}

impl Core {
    /// Creates a core running `program` through the L1 `l1`.
    ///
    /// `pair_seed` seeds deterministic per-pair decisions (synthetic ITLB
    /// misses); both halves of a logical processor pair must receive the
    /// same seed.
    pub fn new(cfg: CoreConfig, program: Arc<Program>, l1: L1Id, pair_seed: u64) -> Self {
        let fp_width = cfg.fingerprint_width;
        let entry = program.entry();
        Core {
            cfg,
            program,
            l1,
            spec: ArchState::new(entry),
            retired: ArchState::new(entry),
            rob: VecDeque::new(),
            seq_next: 0,
            epoch: 0,
            reg_ready: [0; 32],
            last_check_time: 0,
            fetch_free: 0,
            halted: false,
            pending_stores: FastHashMap::default(),
            sb_count: 0,
            last_drain_done: 0,
            fp: FingerprintUnit::new(fp_width),
            events: Vec::new(),
            grants: VecDeque::new(),
            lvq: VecDeque::new(),
            load_values_out: Vec::new(),
            lvq_producer: false,
            is_mute_l1: false,
            inject: VecDeque::new(),
            interrupt_at_interval: None,
            single_step: false,
            pending_sync: None,
            sync_pending_seq: None,
            serializing_block: false,
            dtlb: Tlb::new(512, 2),
            itlb_seed: pair_seed,
            user_fetch_index: 0,
            user_retire_index: 0,
            itlb_served: None,
            predictor: Gshare::new(12),
            error_at: None,
            stall_run: 0,
            computed: false,
            stats: CoreStats::new(),
        }
    }

    /// Marks this core as the leading (vocal) side of a strict-input-
    /// replication pair: every load/atomic value it binds is exported for
    /// the trailing core's load-value queue.
    pub fn set_lvq_producer(&mut self, on: bool) {
        self.lvq_producer = on;
    }

    /// Declares that this core's L1 is a mute cache. Mute atomics update
    /// the private view at read time and must not commit to coherent
    /// memory at retirement.
    pub fn set_mute(&mut self, on: bool) {
        self.is_mute_l1 = on;
    }

    /// The L1 this core issues requests through.
    pub fn l1(&self) -> L1Id {
        self.l1
    }

    /// The current recovery epoch (incremented by every rollback).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the core has halted (program ran off its image or hit
    /// `halt`).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Retired user (workload) instructions — the IPC numerator.
    pub fn retired_user(&self) -> u64 {
        self.stats.retired_user.value()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Mutable statistics (reset between measurement windows).
    pub fn stats_mut(&mut self) -> &mut CoreStats {
        &mut self.stats
    }

    /// DTLB miss count (for Table 3).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// The retired (safe) architectural state.
    pub fn arch_state(&self) -> &ArchState {
        &self.retired
    }

    /// Overwrites the retired ARF and PC — the phase-two "copy vocal ARF to
    /// mute" operation of the re-execution protocol (Definition 9).
    pub fn copy_arch_state_from(&mut self, other: &ArchState) {
        self.retired.restore(other);
        self.spec.restore(other);
    }

    /// Drains fingerprints emitted since the last call (program order).
    pub fn take_check_events(&mut self) -> Vec<CheckEvent> {
        std::mem::take(&mut self.events)
    }

    /// Appends the fingerprints emitted since the last drain that belong to
    /// `epoch` onto `out`, discarding stale-epoch leftovers — the per-tick
    /// variant of [`take_check_events`](Self::take_check_events) that keeps
    /// the internal buffer's capacity instead of surrendering it.
    pub fn drain_check_events_into(&mut self, epoch: u64, out: &mut VecDeque<CheckEvent>) {
        for ev in self.events.drain(..) {
            if ev.epoch == epoch {
                out.push_back(ev);
            }
        }
    }

    /// Drains load values bound since the last call (for the strict-model
    /// load-value queue).
    pub fn take_load_values(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.load_values_out)
    }

    /// Appends the load values bound since the last drain onto `out`,
    /// keeping the internal buffer's capacity — the per-tick variant of
    /// [`take_load_values`](Self::take_load_values).
    pub fn drain_load_values_into(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.load_values_out);
    }

    /// Appends values to this core's load-value queue (trailing core of the
    /// strict model).
    pub fn push_lvq(&mut self, values: impl IntoIterator<Item = u64>) {
        self.lvq.extend(values);
    }

    /// Grants retirement permission for an interval (driver use).
    ///
    /// Grants arrive in increasing interval order within an epoch (the
    /// comparator works through its queues in FIFO order), which is what
    /// keeps the internal grant queue sorted without searching.
    pub fn grant(&mut self, grant: ReleaseGrant) {
        if grant.epoch == self.epoch {
            self.grants
                .push_back((grant.interval_id, grant.at.as_u64()));
        }
    }

    /// The release time granted to `interval_id`, if its grant has arrived.
    ///
    /// Spent grants are popped promptly at retirement, so the front of the
    /// queue is almost always the answer; the scan exists for the
    /// interval>1 case where several ROB entries share one grant.
    fn granted_at(&self, interval_id: u64) -> Option<u64> {
        for &(id, at) in &self.grants {
            if id == interval_id {
                return Some(at);
            }
            if id > interval_id {
                return None;
            }
        }
        None
    }

    /// The synchronizing request this core is blocked on, if any.
    pub fn pending_sync(&self) -> Option<SyncRequest> {
        self.pending_sync
    }

    /// Delivers the synchronizing-request value (driver use after
    /// [`MemorySystem::sync_access`]).
    ///
    /// # Panics
    ///
    /// Panics if no synchronizing request is pending.
    pub fn fulfill_sync(&mut self, value: u64, done_at: Cycle) {
        let req = self.pending_sync.take().expect("no pending sync request");
        let seq = self.sync_pending_seq.take().expect("sync seq recorded");
        let entry = self
            .rob
            .iter_mut()
            .find(|e| e.seq == seq)
            .expect("sync entry in ROB");
        // A re-executed instruction pays the full check round trip on top of
        // the coherent access: its fingerprint crosses to the partner and
        // the release grant crosses back before anything younger may run.
        let penalty = 2 * self.cfg.check_latency;
        entry.completion = done_at.as_u64() + penalty;
        self.stats.reexec_penalty_cycles.add(penalty);
        let ct = self.last_check_time.max(entry.completion);
        entry.check_time = ct;
        self.last_check_time = ct;
        self.stats.sync_loads.incr();

        // Functional effect: the destination register receives the single
        // coherent value (the old memory value for atomics).
        let mut record = UpdateRecord::load(0, value, req.addr.as_u64());
        if let Some((dst, _)) = entry.reg_write {
            self.spec.regs.write(dst, value);
            entry.reg_write = Some((dst, value));
            record.reg = Some((dst.index() as u8, value));
            self.reg_ready[dst.index()] = entry.completion;
        }
        if let Some((op, operand)) = req.rmw {
            record.data = Some(reunion_isa::atomic_update(op, value, operand));
        }
        if self.cfg.checking {
            self.fp.absorb(&record);
            self.emit_interval(true);
        }
    }

    /// Enters the single-step phase of the re-execution protocol.
    pub fn begin_single_step(&mut self) {
        self.single_step = true;
    }

    /// Returns to normal speculative out-of-order execution.
    pub fn end_single_step(&mut self) {
        self.single_step = false;
    }

    /// Whether the core is single-stepping.
    pub fn is_single_stepping(&self) -> bool {
        self.single_step
    }

    /// Schedules the external-interrupt handler to run at the start of
    /// fingerprint interval `interval_id` (the vocal core chooses the
    /// interval; the driver replicates it to both cores, §4.3).
    pub fn schedule_interrupt_at(&mut self, interval_id: u64) {
        self.interrupt_at_interval = Some(interval_id);
    }

    /// The id of the next fingerprint interval (for interrupt scheduling).
    pub fn next_interval_id(&self) -> u64 {
        self.fp.next_interval_id()
    }

    /// Injects a single-bit soft error into the first user instruction with
    /// a register destination at or after user-instruction index `index`
    /// (flips `bit` of the result).
    pub fn inject_soft_error_at(&mut self, index: u64, bit: u32) {
        self.error_at = Some((index, bit % 64));
    }

    /// Retires every head-of-ROB instruction whose interval has already
    /// compared successfully, ignoring release timing.
    ///
    /// Used at the start of rollback recovery: both cores of a pair have
    /// compared the same set of intervals, but one may not have *applied*
    /// them to its ARF yet (release times differ by the comparison
    /// latency). Draining granted intervals first lands both cores on the
    /// same safe-state boundary — the "identical safe states" the
    /// re-execution protocol starts from.
    pub fn drain_granted(&mut self, now: Cycle, mem: &mut MemorySystem) {
        while let Some(head) = self.rob.front() {
            if head.completion == u64::MAX {
                break;
            }
            if self.cfg.checking && self.granted_at(head.interval_id).is_none() {
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.release_spent_grant(&entry);
            if let Some((dst, value)) = entry.reg_write {
                self.retired.regs.write(dst, value);
            }
            self.retired.pc = entry.next_pc;
            if let Some((addr, op, operand, old)) = entry.atomic_commit {
                if !self.cfg.strict_lvq && !self.is_mute_l1 {
                    mem.atomic_commit(self.l1, addr, op, operand, old);
                }
            }
            if let Some((addr, value)) = entry.store {
                if !self.cfg.strict_lvq {
                    let acc = mem.drain_store(now, self.l1, addr, value);
                    self.last_drain_done = self.last_drain_done.max(acc.done_at.as_u64());
                }
                self.sb_count = self.sb_count.saturating_sub(1);
                if let Some(stack) = self.pending_stores.get_mut(&addr.word().as_u64()) {
                    stack.retain(|&(seq, _)| seq != entry.seq);
                    if stack.is_empty() {
                        self.pending_stores.remove(&addr.word().as_u64());
                    }
                }
            }
            self.stats.retired_total.incr();
            if entry.user {
                self.stats.retired_user.incr();
                self.user_retire_index += 1;
            }
            if entry.serializing {
                self.stats.serializing.incr();
                self.serializing_block = false;
                if self.stall_run > 0 {
                    self.stats.stall_episodes.record(self.stall_run);
                    self.stall_run = 0;
                }
            }
        }
    }

    /// Rolls the pipeline back to the retired (safe) state: flushes the ROB
    /// and speculative store buffer, squashes uncompared fingerprints, and
    /// restarts interval numbering for the new recovery epoch. Memory needs
    /// no repair: atomics commit their write only at retirement, so nothing
    /// speculative ever reached the coherent image.
    pub fn rollback(&mut self, now: Cycle) {
        // Unretired atomics never committed their memory write (the commit
        // happens at retirement), so flushing the ROB discards them fully.
        self.rob.clear();
        self.pending_stores.clear();
        self.sb_count = 0;
        self.spec.restore(&self.retired);
        self.fp.reset();
        self.epoch += 1;
        self.grants.clear();
        self.events.clear();
        self.inject.clear();
        self.pending_sync = None;
        self.sync_pending_seq = None;
        self.serializing_block = false;
        // A rollback abandons the stalled interval; the partial episode is
        // dropped rather than recorded as if it completed.
        self.stall_run = 0;
        self.itlb_served = None;
        self.user_fetch_index = self.user_retire_index;
        self.reg_ready = [0; 32];
        self.fetch_free = now.as_u64() + self.cfg.mispredict_penalty;
        self.lvq.clear();
        self.load_values_out.clear();
        self.stats.rollbacks.incr();
    }

    /// Advances the core by one cycle: retire, then dispatch.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemorySystem) {
        self.tick_compute(now);
        self.tick_commit(now, mem);
    }

    /// The pure compute half of [`tick`](Self::tick): if this cycle's tick
    /// provably never touches the shared memory system (the private
    /// `tick_touches_mem` classifier), runs it entirely on
    /// core-private state and records that it did. Safe to run for many
    /// cores concurrently — nothing outside `self` is read or written.
    ///
    /// Must be paired with a [`tick_commit`](Self::tick_commit) at the same
    /// cycle, which becomes a no-op when the compute phase already did the
    /// work.
    pub fn tick_compute(&mut self, now: Cycle) {
        if self.tick_touches_mem(now) {
            self.computed = false;
        } else {
            self.computed = true;
            self.retire(now, None);
            self.dispatch(now, None);
        }
    }

    /// The serial half of [`tick`](Self::tick): performs the full tick —
    /// including every memory-system access, in program order — unless the
    /// preceding [`tick_compute`](Self::tick_compute) already ran this
    /// cycle's work memory-free. Calling `tick_compute` for every core (in
    /// any order, or in parallel) and then `tick_commit` in logical-
    /// processor order is byte-identical to calling [`tick`](Self::tick)
    /// serially: a memory-free tick reads and writes only its own core, so
    /// it commutes with every other core's tick and with all shared-
    /// resource arbitration.
    pub fn tick_commit(&mut self, now: Cycle, mem: &mut MemorySystem) {
        if !self.computed {
            self.retire(now, Some(mem));
            self.dispatch(now, Some(mem));
        }
        self.computed = false;
    }

    /// Conservatively decides whether `tick(now)` could access the shared
    /// memory system this cycle. `false` is a proof of isolation; `true`
    /// merely routes the tick to the serial commit phase.
    ///
    /// * A strict-LVQ (trailing oracle) core never touches memory: loads
    ///   and atomics consume the load-value queue at the cached L1 hit
    ///   latency, stores skip the drain, and the synthetic ITLB walks in
    ///   hardware without memory traffic.
    /// * Otherwise, retirement is replayed read-only over the ≤`width`
    ///   eligible ROB heads: a retiring store drains to memory, and a
    ///   retiring atomic commits to it (unless this is a mute L1).
    /// * Finally, if the front end could dispatch at all this cycle it may
    ///   bind a load or atomic from memory. Only gates that retirement
    ///   cannot change mid-tick are consulted here (`halted`,
    ///   `pending_sync`, `fetch_free`) — a serializing block or a full ROB
    ///   can clear during this very cycle's retire, so they prove nothing.
    fn tick_touches_mem(&self, now: Cycle) -> bool {
        if self.cfg.strict_lvq {
            return false;
        }
        let now_raw = now.as_u64();
        let mut idx = 0;
        while idx < self.cfg.width {
            let Some(head) = self.rob.get(idx) else { break };
            if head.completion == u64::MAX || head.check_time > now_raw {
                break;
            }
            if self.cfg.checking {
                let Some(granted_at) = self.granted_at(head.interval_id) else {
                    break;
                };
                let release_at = if head.serializing && self.cfg.serializing_round_trip {
                    granted_at + self.cfg.check_latency
                } else {
                    granted_at
                };
                if release_at > now_raw {
                    break;
                }
            }
            if head.store.is_some() || (head.atomic_commit.is_some() && !self.is_mute_l1) {
                return true;
            }
            idx += 1;
        }
        !(self.halted || self.pending_sync.is_some() || self.fetch_free > now_raw)
    }

    /// The earliest cycle `>= from` at which this core could make forward
    /// progress on its own — the core's contribution to a time-skipping
    /// engine's [`EventHorizon`].
    ///
    /// The bound is conservative (ticking the core earlier is a no-op, never
    /// wrong), derived from the same completion stamps the pipeline runs on:
    ///
    /// * **Retirement** — the head ROB entry's in-order check time, plus its
    ///   release-grant time under checking. Serializing intervals
    ///   deliberately resolve to `from` once their grant has arrived, so the
    ///   engine steps cycle-by-cycle through the round-trip stall window and
    ///   the `serializing_stall_cycles` counter matches dense execution
    ///   exactly.
    /// * **Dispatch** — `fetch_free` (mispredict/TLB refill) when no
    ///   structural condition (halt, full ROB, serializing drain, pending
    ///   synchronizing request, single-step occupancy) blocks the front end.
    /// * **Pending check events** — fingerprints emitted after the pair
    ///   driver's collection point (synchronizing-request fulfillment) must
    ///   be compared on the next cycle.
    ///
    /// `None` means the core cannot act again without external input: a
    /// grant or synchronizing fulfillment from its pair driver, or nothing
    /// at all (halted with an empty pipeline).
    pub fn next_activity_at(&self, from: Cycle) -> Option<Cycle> {
        let floor = from.as_u64();
        let front_end_blocked = self.halted
            || self.pending_sync.is_some()
            || self.serializing_block
            || self.rob.len() >= self.cfg.rob_entries
            || (self.single_step && !self.rob.is_empty());
        // Fast path: an unblocked front end dispatches on the very next
        // cycle — no candidate can be earlier, so skip the retire-side
        // bookkeeping entirely. This keeps the skip engine's per-tick
        // overhead negligible through dense (always-active) phases.
        if !front_end_blocked && self.fetch_free <= floor {
            return Some(from);
        }
        if !self.events.is_empty() {
            return Some(from);
        }

        let mut horizon = EventHorizon::new();
        if !front_end_blocked {
            horizon.note(Cycle::new(self.fetch_free));
        }
        if let Some(head) = self.rob.front() {
            if head.completion != u64::MAX {
                if self.cfg.checking {
                    // Ungranted heads wait on the partner's fingerprint —
                    // the partner core's activity, not this core's.
                    if let Some(granted_at) = self.granted_at(head.interval_id) {
                        horizon.note(Cycle::new(head.check_time.max(granted_at).max(floor)));
                    }
                } else {
                    horizon.note(Cycle::new(head.check_time.max(floor)));
                }
            }
        }
        horizon.next_ready()
    }

    /// Whether the core can never act again without external input: halted
    /// with an empty pipeline and no check events awaiting collection.
    ///
    /// A quiescent core's `tick` is a no-op at every future cycle, which is
    /// what lets [`next_activity_at`](Self::next_activity_at) return `None`
    /// and the system engine fast-forward past it.
    pub fn is_quiescent(&self) -> bool {
        self.halted && self.rob.is_empty() && self.events.is_empty() && self.pending_sync.is_none()
    }

    // ------------------------------------------------------------------
    // Retirement.
    // ------------------------------------------------------------------

    /// Reclaims the retired entry's release grant once the last ROB entry
    /// of its interval leaves the pipeline. A grant only exists after its
    /// whole interval has dispatched (its fingerprint must have been
    /// emitted and compared first), and an interval's entries are
    /// contiguous in program order — so when the new ROB head belongs to a
    /// different interval, nothing can look this grant up again. Keeps the
    /// queue at O(in-flight intervals) instead of growing for a whole epoch.
    fn release_spent_grant(&mut self, entry: &RobEntry) {
        if self.cfg.checking
            && self.rob.front().map(|h| h.interval_id) != Some(entry.interval_id)
            && self.grants.front().map(|&(id, _)| id) == Some(entry.interval_id)
        {
            self.grants.pop_front();
        }
    }

    /// `mem` is `None` only when called from the compute phase, after
    /// [`tick_touches_mem`](Self::tick_touches_mem) proved no retiring
    /// entry drains a store or commits an atomic; reaching a memory access
    /// without it is a classifier bug and panics.
    fn retire(&mut self, now: Cycle, mut mem: Option<&mut MemorySystem>) {
        let now_raw = now.as_u64();
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            if head.completion == u64::MAX || head.check_time > now_raw {
                break;
            }
            if self.cfg.checking {
                let Some(granted_at) = self.granted_at(head.interval_id) else {
                    break;
                };
                // An interval ending in a serializing instruction drains the
                // pipeline and stalls retirement for the full check round
                // trip: the release grant must cross back to the core before
                // the serializing instruction may commit (§4.4).
                let release_at = if head.serializing && self.cfg.serializing_round_trip {
                    granted_at + self.cfg.check_latency
                } else {
                    granted_at
                };
                if release_at > now_raw {
                    if head.serializing && granted_at <= now_raw {
                        self.stats.serializing_stall_cycles.incr();
                        self.stall_run += 1;
                    }
                    break;
                }
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.release_spent_grant(&entry);

            if let Some((dst, value)) = entry.reg_write {
                self.retired.regs.write(dst, value);
            }
            self.retired.pc = entry.next_pc;
            if let Some((addr, op, operand, old)) = entry.atomic_commit {
                if !self.cfg.strict_lvq && !self.is_mute_l1 {
                    mem.as_deref_mut()
                        .expect("atomic commit in compute phase")
                        .atomic_commit(self.l1, addr, op, operand, old);
                }
            }
            if let Some((addr, value)) = entry.store {
                if !self.cfg.strict_lvq {
                    let acc = mem
                        .as_deref_mut()
                        .expect("store drain in compute phase")
                        .drain_store(now, self.l1, addr, value);
                    self.last_drain_done = self.last_drain_done.max(acc.done_at.as_u64());
                } else {
                    self.last_drain_done = self.last_drain_done.max(now_raw);
                }
                self.sb_count = self.sb_count.saturating_sub(1);
                if let Some(stack) = self.pending_stores.get_mut(&addr.word().as_u64()) {
                    stack.retain(|&(seq, _)| seq != entry.seq);
                    if stack.is_empty() {
                        self.pending_stores.remove(&addr.word().as_u64());
                    }
                }
            }

            self.stats.retired_total.incr();
            if entry.user {
                self.stats.retired_user.incr();
                self.user_retire_index += 1;
            }
            if entry.serializing {
                self.stats.serializing.incr();
                self.serializing_block = false;
                if self.stall_run > 0 {
                    self.stats.stall_episodes.record(self.stall_run);
                    self.stall_run = 0;
                }
            }
            retired += 1;
        }
    }

    // ------------------------------------------------------------------
    // Dispatch: functional execution plus forward timing.
    // ------------------------------------------------------------------

    /// `mem` is `None` only from the compute phase (strict-LVQ cores,
    /// whose loads and atomics never leave the core); a memory access with
    /// `None` is a classifier bug and panics.
    fn dispatch(&mut self, now: Cycle, mut mem: Option<&mut MemorySystem>) {
        if self.halted {
            return;
        }
        let now_raw = now.as_u64();
        let mut dispatched = 0;
        while dispatched < self.cfg.width {
            if self.fetch_free > now_raw
                || self.pending_sync.is_some()
                || self.serializing_block
                || self.rob.len() >= self.cfg.rob_entries
                || (self.single_step && !self.rob.is_empty())
            {
                break;
            }

            // Interrupt delivery at the chosen interval boundary.
            if self.inject.is_empty() {
                if let Some(k) = self.interrupt_at_interval {
                    if self.fp.next_interval_id() >= k && self.fp.pending() == 0 {
                        self.interrupt_at_interval = None;
                        self.inject.extend([
                            Instruction::trap(),
                            Instruction::nop(),
                            Instruction::nop(),
                            Instruction::trap(),
                        ]);
                    }
                }
            }

            let from_inject = !self.inject.is_empty();
            let inst = if from_inject {
                *self.inject.front().expect("nonempty queue")
            } else {
                match self.program.fetch(self.spec.pc) {
                    None => {
                        self.halted = true;
                        break;
                    }
                    Some(i) if i.op == Opcode::Halt => {
                        self.halted = true;
                        break;
                    }
                    Some(i) => *i,
                }
            };

            let serializing = inst.op.is_serializing()
                || (self.cfg.store_serializes() && inst.op == Opcode::Store);

            if serializing {
                // End the open fingerprint interval so older instructions
                // can retire before the serializing instruction executes.
                if self.cfg.checking && self.fp.pending() > 0 {
                    self.emit_interval(false);
                }
                if !self.rob.is_empty() {
                    break;
                }
            }
            if inst.op.is_store() && self.sb_count >= self.cfg.sb_entries {
                break;
            }
            // The trailing strict core consumes load values from the LVQ;
            // it cannot dispatch a load the leader has not yet produced.
            if self.cfg.strict_lvq
                && inst.op.is_load()
                && !(self.single_step && inst.op.is_load())
                && self.lvq.is_empty()
            {
                break;
            }

            // ITLB (instruction-footprint model) for user instructions.
            if !from_inject && self.itlb_miss_now() {
                self.stats.itlb_misses.incr();
                match self.cfg.tlb {
                    TlbMode::Software => {
                        self.inject.extend(software_tlb_handler());
                        continue;
                    }
                    TlbMode::Hardware { walk_latency } => {
                        self.fetch_free = now_raw + walk_latency;
                        break;
                    }
                }
            }

            // DTLB for memory operations.
            let mut tlb_walk = 0;
            if inst.op.is_memory() {
                let addr = effective_address(&inst, &self.spec);
                if !self.dtlb.access(addr.page()) {
                    self.stats.dtlb_misses.incr();
                    match self.cfg.tlb {
                        TlbMode::Software => {
                            self.inject.extend(software_tlb_handler());
                            continue;
                        }
                        TlbMode::Hardware { walk_latency } => tlb_walk = walk_latency,
                    }
                }
            }

            // Commit to dispatching this instruction.
            if from_inject {
                self.inject.pop_front();
            }
            let user = !from_inject;
            let seq = self.seq_next;
            self.seq_next += 1;

            let operands_ready = inst
                .sources()
                .map(|r| self.reg_ready[r.index()])
                .max()
                .unwrap_or(0);
            let exec_start = (now_raw + 1).max(operands_ready) + tlb_walk;

            let pc_before = self.spec.pc;
            let mut next_pc = if user { pc_before + 1 } else { pc_before };
            let mut reg_write: Option<(RegId, u64)> = None;
            let mut store: Option<(Addr, u64)> = None;
            let mut atomic_commit: Option<(Addr, reunion_isa::AtomicOp, u64, u64)> = None;
            let mut record = UpdateRecord::default();
            let mut completion = exec_start + inst.op.exec_latency();
            let mut awaiting_sync = false;

            match inst.op {
                Opcode::Nop | Opcode::Halt => {}
                Opcode::LoadImm => {
                    let dst = inst.dst.expect("li dst");
                    let value = self.maybe_corrupt(user, inst.imm as u64);
                    reg_write = Some((dst, value));
                    record = UpdateRecord::reg(dst.index() as u8, value);
                }
                Opcode::Alu(op) => {
                    let dst = inst.dst.expect("alu dst");
                    let a = self.spec.regs.read(inst.src1.expect("alu src1"));
                    let b = match inst.src2 {
                        Some(r) => self.spec.regs.read(r),
                        None => inst.imm as u64,
                    };
                    let value = self.maybe_corrupt(user, alu_compute(op, a, b));
                    reg_write = Some((dst, value));
                    record = UpdateRecord::reg(dst.index() as u8, value);
                }
                Opcode::Branch(cond) => {
                    let v = inst.src1.map_or(0, |r| self.spec.regs.read(r));
                    let taken = branch_decides(cond, v);
                    if taken {
                        next_pc = inst.imm as usize;
                    }
                    self.stats.branches.incr();
                    let predicted = self.predictor.predict(pc_before as u64);
                    self.predictor.update(pc_before as u64, taken);
                    if predicted != taken {
                        self.stats.mispredicts.incr();
                        self.fetch_free = completion + self.cfg.mispredict_penalty;
                    }
                    record = UpdateRecord::branch(next_pc as u64);
                }
                Opcode::Load => {
                    let dst = inst.dst.expect("load dst");
                    let addr = effective_address(&inst, &self.spec);
                    if self.single_step {
                        // Re-execution protocol: the first memory read is
                        // issued as a synchronizing request by both cores.
                        self.pending_sync = Some(SyncRequest {
                            addr,
                            rmw: None,
                            raised_at: now,
                        });
                        self.sync_pending_seq = Some(seq);
                        reg_write = Some((dst, 0));
                        completion = u64::MAX;
                        awaiting_sync = true;
                    } else {
                        let (value, done) =
                            self.load_value(now, mem.as_deref_mut(), addr, exec_start);
                        let value = self.maybe_corrupt(user, value);
                        completion = done;
                        self.spec.regs.write(dst, value);
                        reg_write = Some((dst, value));
                        record = UpdateRecord::load(dst.index() as u8, value, addr.as_u64());
                        if self.lvq_producer {
                            self.load_values_out.push(value);
                        }
                    }
                }
                Opcode::Store => {
                    let addr = effective_address(&inst, &self.spec);
                    let value = self.spec.regs.read(inst.src2.expect("store src2"));
                    store = Some((addr, value));
                    self.sb_count += 1;
                    let chain = self.pending_stores.entry(addr.word().as_u64()).or_default();
                    chain.push((seq, value));
                    self.stats.peak_store_chain =
                        self.stats.peak_store_chain.max(chain.len() as u64);
                    if chain.spilled() {
                        self.stats.store_chain_spills.incr();
                    }
                    completion = exec_start + 1;
                    record = UpdateRecord::store(addr.as_u64(), value);
                }
                Opcode::Atomic(op) => {
                    let dst = inst.dst.expect("atomic dst");
                    let addr = effective_address(&inst, &self.spec);
                    let operand = self.spec.regs.read(inst.src2.expect("atomic src2"));
                    if self.single_step {
                        self.pending_sync = Some(SyncRequest {
                            addr,
                            rmw: Some((op, operand)),
                            raised_at: now,
                        });
                        self.sync_pending_seq = Some(seq);
                        reg_write = Some((dst, 0));
                        completion = u64::MAX;
                        awaiting_sync = true;
                    } else if self.cfg.strict_lvq {
                        let old = self.lvq.pop_front().unwrap_or(0);
                        completion = exec_start + 4;
                        self.spec.regs.write(dst, old);
                        reg_write = Some((dst, old));
                        record = UpdateRecord::load(dst.index() as u8, old, addr.as_u64());
                        record.data = Some(reunion_isa::atomic_update(op, old, operand));
                    } else {
                        let acc = mem
                            .as_deref_mut()
                            .expect("atomic read in compute phase")
                            .atomic_read(
                                Cycle::new(exec_start),
                                self.l1,
                                addr,
                                op,
                                operand,
                                self.cfg.phantom,
                            );
                        let old = acc.value;
                        completion = acc.done_at.as_u64();
                        // Mute atomics update the private view at read time;
                        // vocal atomics commit to memory at retirement.
                        atomic_commit = Some((addr, op, operand, old));
                        self.spec.regs.write(dst, old);
                        reg_write = Some((dst, old));
                        record = UpdateRecord::load(dst.index() as u8, old, addr.as_u64());
                        record.data = Some(reunion_isa::atomic_update(op, old, operand));
                        if self.lvq_producer {
                            self.load_values_out.push(old);
                        }
                    }
                }
                Opcode::Membar => {
                    completion = exec_start.max(self.last_drain_done);
                    record = UpdateRecord::default();
                }
                Opcode::Trap => {
                    record = UpdateRecord::default();
                }
                Opcode::MmuOp => {
                    // Non-idempotent access: the address is checked before
                    // execution (§4.4), so it enters the fingerprint.
                    record = UpdateRecord {
                        addr: Some(inst.imm as u64),
                        ..Default::default()
                    };
                }
            }

            if let Some((dst, value)) = reg_write {
                if !awaiting_sync {
                    self.spec.regs.write(dst, value);
                    self.reg_ready[dst.index()] = completion;
                } else {
                    self.reg_ready[dst.index()] = u64::MAX;
                }
            }
            if user {
                self.spec.pc = next_pc;
                self.user_fetch_index += 1;
            }

            let check_time = if completion == u64::MAX {
                u64::MAX
            } else {
                let ct = self.last_check_time.max(completion);
                self.last_check_time = ct;
                ct
            };

            let interval_id = self.fp.next_interval_id();
            self.rob.push_back(RobEntry {
                interval_id,
                user,
                serializing,
                completion,
                check_time,
                reg_write,
                store,
                atomic_commit,
                next_pc,
                seq,
            });

            if self.cfg.checking && !awaiting_sync {
                self.fp.absorb(&record);
                let interval_full = self.fp.pending() >= self.cfg.fingerprint_interval;
                if serializing || interval_full || self.single_step {
                    self.emit_interval(serializing);
                }
            }

            dispatched += 1;
            if serializing {
                self.serializing_block = true;
                break;
            }
            if awaiting_sync {
                break;
            }
        }
    }

    /// Binds a load value: store-buffer forwarding first, then the memory
    /// system (coherent for vocal L1s, phantom for mute L1s, LVQ for the
    /// strict trailing core). Returns `(value, completion_time)`.
    fn load_value(
        &mut self,
        _now: Cycle,
        mem: Option<&mut MemorySystem>,
        addr: Addr,
        exec_start: u64,
    ) -> (u64, u64) {
        // The strict trailing core bypasses the cache AND store-buffer
        // interface in favour of the LVQ (§2.3) — and must always consume
        // one queue entry to stay aligned with the leader.
        if self.cfg.strict_lvq {
            let value = self.lvq.pop_front().expect("LVQ checked before dispatch");
            return (value, exec_start + self.cfg.l1_hit_latency);
        }
        if let Some(stack) = self.pending_stores.get(&addr.word().as_u64()) {
            if let Some(&(_, value)) = stack.last() {
                self.stats.forwarded_loads.incr();
                return (value, exec_start + self.cfg.l1_hit_latency);
            }
        }
        let acc = mem.expect("coherent load in compute phase").load(
            Cycle::new(exec_start),
            self.l1,
            addr,
            self.cfg.phantom,
        );
        (acc.value, acc.done_at.as_u64())
    }

    fn emit_interval(&mut self, serializing: bool) {
        let ready = Cycle::new(self.last_check_time);
        let fingerprint = self.fp.emit();
        self.stats.intervals.incr();
        self.events.push(CheckEvent {
            epoch: self.epoch,
            fingerprint,
            ready_at: ready,
            serializing,
        });
        self.stats.peak_check_events = self.stats.peak_check_events.max(self.events.len() as u64);
    }

    fn itlb_miss_now(&mut self) -> bool {
        if self.cfg.itlb_miss_per_million == 0 {
            return false;
        }
        let idx = self.user_fetch_index;
        if self.itlb_served == Some(idx) {
            return false;
        }
        let h = SimRng::hash_value(self.itlb_seed ^ idx.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let miss = h % 1_000_000 < self.cfg.itlb_miss_per_million;
        if miss {
            self.itlb_served = Some(idx);
        }
        miss
    }

    /// Applies a scheduled soft-error injection to a user-instruction
    /// result.
    fn maybe_corrupt(&mut self, user: bool, value: u64) -> u64 {
        if !user {
            return value;
        }
        if let Some((index, bit)) = self.error_at {
            if self.user_fetch_index >= index {
                self.error_at = None;
                return value ^ (1u64 << bit);
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reunion_isa::{AtomicOp, BranchCond, Instruction as I};
    use reunion_mem::{MemConfig, Owner};

    fn r(i: u8) -> RegId {
        RegId::new(i)
    }

    fn run_core(prog: Vec<I>, cycles: u64) -> (Core, MemorySystem) {
        let program = Arc::new(Program::new("t", prog).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program, l1, 7);
        for c in 0..cycles {
            core.tick(Cycle::new(c), &mut mem);
        }
        (core, mem)
    }

    #[test]
    fn straight_line_code_retires_and_matches_golden_model() {
        let code = vec![
            I::load_imm(r(1), 0x400),
            I::load_imm(r(2), 21),
            I::alu_imm(reunion_isa::AluOp::Mul, r(3), r(2), 2),
            I::store(r(1), r(3), 0),
            I::load(r(4), r(1), 0),
            I::halt(),
        ];
        let (core, mem) = run_core(code, 2000);
        assert!(core.is_halted());
        assert_eq!(core.retired_user(), 5);
        assert_eq!(core.arch_state().regs.read(r(4)), 42);
        assert_eq!(mem.peek_coherent(Addr::new(0x400)), 42);
    }

    #[test]
    fn loop_retires_many_instructions() {
        // r1 starts at 0, counts up forever.
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let (core, _) = run_core(code, 3000);
        assert!(
            core.retired_user() > 1000,
            "retired {}",
            core.retired_user()
        );
        // IPC sanity: 4-wide core on a dependent chain + jump: > 0.5 IPC.
        assert!(core.retired_user() > 1500);
    }

    #[test]
    fn store_load_forwarding_is_used() {
        let code = vec![
            I::load_imm(r(1), 0x800),
            I::load_imm(r(2), 5),
            I::store(r(1), r(2), 0),
            I::load(r(3), r(1), 0), // should forward
            I::halt(),
        ];
        let (core, _) = run_core(code, 2000);
        assert_eq!(core.arch_state().regs.read(r(3)), 5);
        assert!(core.stats().forwarded_loads.value() >= 1);
    }

    #[test]
    fn membar_waits_for_drain_and_serializes() {
        let code = vec![
            I::load_imm(r(1), 0x900),
            I::load_imm(r(2), 1),
            I::store(r(1), r(2), 0),
            I::membar(),
            I::add_imm(r(3), r(3), 1),
            I::halt(),
        ];
        let (core, mem) = run_core(code, 4000);
        assert!(core.is_halted());
        assert_eq!(core.stats().serializing.value(), 1);
        assert_eq!(mem.peek_coherent(Addr::new(0x900)), 1);
    }

    #[test]
    fn atomic_swap_applies_and_serializes() {
        let code = vec![
            I::load_imm(r(1), 0xA00),
            I::load_imm(r(2), 1),
            I::atomic(AtomicOp::Swap, r(3), r(1), r(2), 0),
            I::halt(),
        ];
        let (core, mem) = run_core(code, 4000);
        assert_eq!(mem.peek_coherent(Addr::new(0xA00)), 1);
        assert_eq!(core.stats().serializing.value(), 1);
        // dst got the old value (uninitialized hash, but deterministic).
        let old = core.arch_state().regs.read(r(3));
        assert_eq!(old, reunion_isa::SparseMemory::uninit_value(0xA00));
    }

    #[test]
    fn branch_loop_counts_mispredicts_eventually_learns() {
        // Alternating branch pattern to exercise the predictor.
        let code = vec![
            I::add_imm(r(1), r(1), 1),
            I::alu_imm(reunion_isa::AluOp::And, r(2), r(1), 1),
            I::branch(BranchCond::Nez, r(2), 0),
            I::jump(0),
        ];
        let (core, _) = run_core(code, 3000);
        assert!(core.stats().branches.value() > 100);
        // Some mispredicts must occur on a data-dependent pattern.
        assert!(core.stats().mispredicts.value() > 0);
    }

    #[test]
    fn rollback_restores_retired_state() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("rb", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program, l1, 7);
        for c in 0..100 {
            core.tick(Cycle::new(c), &mut mem);
        }
        let retired_r1 = core.arch_state().regs.read(r(1));
        let epoch_before = core.epoch();
        core.rollback(Cycle::new(100));
        assert_eq!(core.epoch(), epoch_before + 1);
        assert_eq!(core.arch_state().regs.read(r(1)), retired_r1);
        // Continue executing after rollback.
        for c in 101..300 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert!(core.arch_state().regs.read(r(1)) > retired_r1);
    }

    #[test]
    fn unretired_atomic_never_reaches_memory() {
        let code = vec![
            I::load_imm(r(1), 0xB00),
            I::load_imm(r(2), 1),
            I::atomic(AtomicOp::Swap, r(3), r(1), r(2), 0),
            I::jump(2),
        ];
        let program = Arc::new(Program::new("rv", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        mem.poke(Addr::new(0xB00), 0);
        let l1 = mem.register_l1(Owner::vocal(0));
        // Use checking mode so the atomic stays unretired: grant the two
        // leading load_imms (so the serializing atomic can dispatch) but
        // never grant the atomic's own interval.
        let cfg = CoreConfig::default().checked();
        let mut core = Core::new(cfg, program, l1, 7);
        for c in 0..500 {
            core.tick(Cycle::new(c), &mut mem);
            for ev in core.take_check_events() {
                if ev.fingerprint.interval_id < 2 {
                    core.grant(ReleaseGrant {
                        epoch: ev.epoch,
                        interval_id: ev.fingerprint.interval_id,
                        at: ev.ready_at,
                    });
                }
            }
        }
        // The atomic dispatched but cannot retire ungranted: its memory
        // write must not be visible (Definition 7).
        assert_eq!(mem.peek_coherent(Addr::new(0xB00)), 0);
        core.rollback(Cycle::new(500));
        assert_eq!(mem.peek_coherent(Addr::new(0xB00)), 0);
        // Once granted and retired, the commit lands.
        for c in 501..1200 {
            core.tick(Cycle::new(c), &mut mem);
            for ev in core.take_check_events() {
                core.grant(ReleaseGrant {
                    epoch: ev.epoch,
                    interval_id: ev.fingerprint.interval_id,
                    at: ev.ready_at,
                });
            }
        }
        assert_eq!(mem.peek_coherent(Addr::new(0xB00)), 1);
    }

    #[test]
    fn checking_mode_blocks_retirement_until_granted() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("chk", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default().checked(), program, l1, 7);
        for c in 0..200 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert_eq!(core.retired_user(), 0, "nothing may retire without grants");
        let events = core.take_check_events();
        assert!(!events.is_empty());
        // Grant everything generously and watch retirement proceed.
        for ev in &events {
            core.grant(ReleaseGrant {
                epoch: ev.epoch,
                interval_id: ev.fingerprint.interval_id,
                at: ev.ready_at,
            });
        }
        for c in 200..400 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert!(core.retired_user() > 0);
    }

    #[test]
    fn software_tlb_miss_injects_serializing_handler() {
        let code = vec![
            I::load_imm(r(1), 0x10_0000),
            I::load(r(2), r(1), 0),
            I::halt(),
        ];
        let program = Arc::new(Program::new("tlb", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let cfg = CoreConfig {
            tlb: TlbMode::Software,
            ..CoreConfig::default()
        };
        let mut core = Core::new(cfg, program, l1, 7);
        for c in 0..5000 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert!(core.is_halted());
        assert_eq!(core.stats().dtlb_misses.value(), 1);
        // 5 handler instructions retired beyond the 2 user instructions
        // (halt stops fetch without retiring).
        assert_eq!(core.retired_user(), 2);
        assert_eq!(core.stats().retired_total.value(), 2 + 5);
        assert_eq!(core.stats().serializing.value(), 5);
    }

    #[test]
    fn hardware_tlb_miss_charges_latency_only() {
        let code = vec![
            I::load_imm(r(1), 0x10_0000),
            I::load(r(2), r(1), 0),
            I::halt(),
        ];
        let program = Arc::new(Program::new("tlbh", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program, l1, 7);
        for c in 0..5000 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert_eq!(core.stats().dtlb_misses.value(), 1);
        assert_eq!(core.stats().retired_total.value(), 2, "no injected handler");
    }

    #[test]
    fn sc_consistency_serializes_stores() {
        let code = vec![
            I::load_imm(r(1), 0xC00),
            I::store(r(1), r(1), 0),
            I::store(r(1), r(1), 8),
            I::halt(),
        ];
        let program = Arc::new(Program::new("sc", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let cfg = CoreConfig {
            consistency: crate::Consistency::Sc,
            ..CoreConfig::default()
        };
        let mut core = Core::new(cfg, program, l1, 7);
        for c in 0..2000 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert!(core.is_halted());
        assert_eq!(
            core.stats().serializing.value(),
            2,
            "each store serializes under SC"
        );
    }

    #[test]
    fn soft_error_corrupts_result() {
        let code = vec![I::load_imm(r(1), 100), I::halt()];
        let program = Arc::new(Program::new("err", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program.clone(), l1, 7);
        core.inject_soft_error_at(0, 3);
        for c in 0..100 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert_eq!(core.arch_state().regs.read(r(1)), 100 ^ 8);
    }

    #[test]
    fn single_step_raises_sync_on_first_load() {
        let code = vec![
            I::add_imm(r(1), r(1), 0xD00),
            I::load(r(2), r(1), 0),
            I::jump(0),
        ];
        let program = Arc::new(Program::new("ss", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        mem.poke(Addr::new(0xD00), 77);
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default().checked(), program, l1, 7);
        core.begin_single_step();
        let mut cycle = 0;
        // Drive with generous grants until the sync request appears.
        while core.pending_sync().is_none() && cycle < 5000 {
            core.tick(Cycle::new(cycle), &mut mem);
            for ev in core.take_check_events() {
                core.grant(ReleaseGrant {
                    epoch: ev.epoch,
                    interval_id: ev.fingerprint.interval_id,
                    at: ev.ready_at,
                });
            }
            cycle += 1;
        }
        let req = core.pending_sync().expect("sync raised");
        assert_eq!(req.addr, Addr::new(0xD00));
        assert!(req.rmw.is_none());
        // Fulfill and verify the value lands in the register.
        core.fulfill_sync(77, Cycle::new(cycle + 10));
        for ev in core.take_check_events() {
            core.grant(ReleaseGrant {
                epoch: ev.epoch,
                interval_id: ev.fingerprint.interval_id,
                at: ev.ready_at,
            });
        }
        for c in cycle..cycle + 200 {
            core.tick(Cycle::new(c + 11), &mut mem);
            for ev in core.take_check_events() {
                core.grant(ReleaseGrant {
                    epoch: ev.epoch,
                    interval_id: ev.fingerprint.interval_id,
                    at: ev.ready_at,
                });
            }
        }
        assert_eq!(core.arch_state().regs.read(r(2)), 77);
        assert_eq!(core.stats().sync_loads.value(), 1);
    }

    #[test]
    fn interval_grouping_respects_configured_interval() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("iv", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut cfg = CoreConfig::default().checked();
        cfg.fingerprint_interval = 8;
        let mut core = Core::new(cfg, program, l1, 7);
        for c in 0..100 {
            core.tick(Cycle::new(c), &mut mem);
        }
        let events = core.take_check_events();
        assert!(!events.is_empty());
        for ev in &events {
            assert!(ev.fingerprint.count <= 8);
        }
        // Most intervals are full-size.
        assert!(events.iter().filter(|e| e.fingerprint.count == 8).count() >= events.len() / 2);
    }

    #[test]
    fn interrupt_handler_injected_at_interval() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("irq", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program, l1, 7);
        core.schedule_interrupt_at(0);
        for c in 0..500 {
            core.tick(Cycle::new(c), &mut mem);
        }
        // Two traps retired from the handler.
        assert!(core.stats().serializing.value() >= 2);
        assert!(core.stats().retired_total.value() > core.retired_user());
    }

    #[test]
    fn strict_lvq_consumes_provided_values() {
        let code = vec![I::load_imm(r(1), 0xE00), I::load(r(2), r(1), 0), I::halt()];
        let program = Arc::new(Program::new("lvq", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::mute(0));
        let mut cfg = CoreConfig::default().checked();
        cfg.strict_lvq = true;
        let mut core = Core::new(cfg, program, l1, 7);
        // Without LVQ data the load cannot dispatch.
        for c in 0..100 {
            core.tick(Cycle::new(c), &mut mem);
            for ev in core.take_check_events() {
                core.grant(ReleaseGrant {
                    epoch: ev.epoch,
                    interval_id: ev.fingerprint.interval_id,
                    at: ev.ready_at,
                });
            }
        }
        assert!(!core.is_halted(), "load must stall on empty LVQ");
        core.push_lvq([4242]);
        for c in 100..400 {
            core.tick(Cycle::new(c), &mut mem);
            for ev in core.take_check_events() {
                core.grant(ReleaseGrant {
                    epoch: ev.epoch,
                    interval_id: ev.fingerprint.interval_id,
                    at: ev.ready_at,
                });
            }
        }
        assert!(core.is_halted());
        assert_eq!(core.arch_state().regs.read(r(2)), 4242);
    }

    #[test]
    fn halted_empty_core_is_quiescent_and_silent() {
        let code = vec![I::load_imm(r(1), 7), I::halt()];
        let (core, _) = run_core(code, 500);
        assert!(core.is_halted());
        assert!(core.is_quiescent());
        assert_eq!(core.next_activity_at(Cycle::new(500)), None);
    }

    #[test]
    fn running_core_reports_immediate_activity() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let (core, _) = run_core(code, 100);
        assert!(!core.is_quiescent());
        // Front end dispatches every cycle: the next cycle is active.
        assert_eq!(
            core.next_activity_at(Cycle::new(100)),
            Some(Cycle::new(100))
        );
    }

    #[test]
    fn ungranted_head_waits_on_the_partner() {
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("naa", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default().checked(), program, l1, 7);
        let mut events = Vec::new();
        let mut now = 0;
        // Fill the ROB: ungranted intervals cannot retire.
        while core.next_activity_at(Cycle::new(now)).is_some() {
            core.tick(Cycle::new(now), &mut mem);
            events.extend(core.take_check_events());
            now += 1;
            assert!(now < 10_000, "ROB must fill and block");
        }
        // Blocked on the pair driver entirely: no self-activity.
        assert!(!core.is_quiescent());
        assert_eq!(core.next_activity_at(Cycle::new(now)), None);
        // A grant with a future release time becomes the next activity.
        let head = &events[0];
        let at = Cycle::new(now + 400);
        core.grant(ReleaseGrant {
            epoch: head.epoch,
            interval_id: head.fingerprint.interval_id,
            at,
        });
        assert_eq!(core.next_activity_at(Cycle::new(now)), Some(at));
    }

    #[test]
    fn pending_check_events_keep_the_core_active() {
        // A fulfilled synchronizing request emits an event after the pair
        // driver's collection point; the event must force the next cycle.
        let code = vec![I::add_imm(r(1), r(1), 1), I::jump(0)];
        let program = Arc::new(Program::new("ev", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default().checked(), program, l1, 7);
        core.tick(Cycle::ZERO, &mut mem);
        assert!(!core.take_check_events().is_empty(), "interval emitted");
        assert_eq!(
            core.next_activity_at(Cycle::new(1)),
            Some(Cycle::new(1)),
            "an active front end (and undrained events) demand the next cycle"
        );
    }

    #[test]
    fn lvq_producer_exports_load_values() {
        let code = vec![I::load_imm(r(1), 0xF00), I::load(r(2), r(1), 0), I::halt()];
        let program = Arc::new(Program::new("lvp", code).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        mem.poke(Addr::new(0xF00), 99);
        let l1 = mem.register_l1(Owner::vocal(0));
        let mut core = Core::new(CoreConfig::default(), program, l1, 7);
        core.set_lvq_producer(true);
        for c in 0..1000 {
            core.tick(Cycle::new(c), &mut mem);
        }
        assert_eq!(core.take_load_values(), vec![99]);
    }
}

//! Translation lookaside buffers.
//!
//! The simulator maps addresses identically (virtual = physical); the TLB
//! models translation *timing*. The paper shows (§5.5, Figure 7b) that the
//! architecturally-specified software-managed TLB handler — two traps plus
//! three non-idempotent MMU accesses per miss — dominates the serializing
//! overhead of commercial workloads, so the handler instructions themselves
//! are modeled and flow through the pipeline, check stage and fingerprints.

use reunion_isa::Instruction;
use reunion_mem::CacheArray;

/// A set-associative TLB over 8 KB page numbers.
///
/// Defaults elsewhere follow Table 1: 512-entry 2-way DTLB, 128-entry 2-way
/// ITLB.
///
/// # Examples
///
/// ```
/// use reunion_cpu::Tlb;
///
/// let mut dtlb = Tlb::new(512, 2);
/// assert!(!dtlb.access(42)); // cold miss
/// assert!(dtlb.access(42));  // now cached
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: CacheArray<()>,
    misses: u64,
    accesses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` entries and `assoc` ways.
    pub fn new(entries: usize, assoc: usize) -> Self {
        Tlb {
            entries: CacheArray::new(entries, assoc),
            misses: 0,
            accesses: 0,
        }
    }

    /// Looks up `page`, filling on miss. Returns `true` on a hit.
    pub fn access(&mut self, page: u64) -> bool {
        self.accesses += 1;
        if self.entries.lookup(page).is_some() {
            true
        } else {
            self.misses += 1;
            self.entries.insert(page, ());
            false
        }
    }

    /// Total misses since creation or the last reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses since creation or the last reset.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Clears miss/access counters (entries stay warm, matching how the
    /// evaluation measures from warmed checkpoints).
    pub fn reset_counters(&mut self) {
        self.misses = 0;
        self.accesses = 0;
    }
}

/// The UltraSPARC III "fast TLB miss handler" instruction sequence:
/// a trap into the handler, three non-idempotent MMU accesses, and the
/// return trap. All five serialize retirement.
pub fn software_tlb_handler() -> Vec<Instruction> {
    vec![
        Instruction::trap(),
        Instruction::mmu_op(0x08),
        Instruction::mmu_op(0x10),
        Instruction::mmu_op(0x18),
        Instruction::trap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut tlb = Tlb::new(4, 2);
        assert!(!tlb.access(1));
        assert!(tlb.access(1));
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.accesses(), 2);
    }

    #[test]
    fn capacity_misses_occur() {
        let mut tlb = Tlb::new(4, 2);
        for page in 0..8 {
            tlb.access(page);
        }
        // Re-touching early pages misses after eviction.
        let before = tlb.misses();
        tlb.access(0);
        assert!(tlb.misses() > before);
    }

    #[test]
    fn reset_counters_keeps_entries_warm() {
        let mut tlb = Tlb::new(8, 2);
        tlb.access(3);
        tlb.reset_counters();
        assert_eq!(tlb.misses(), 0);
        assert!(tlb.access(3), "entry must survive counter reset");
    }

    #[test]
    fn handler_shape_matches_ultrasparc() {
        let h = software_tlb_handler();
        assert_eq!(h.len(), 5);
        assert!(h.iter().all(|i| i.op.is_serializing()));
        let traps = h
            .iter()
            .filter(|i| i.op == reunion_isa::Opcode::Trap)
            .count();
        let mmus = h
            .iter()
            .filter(|i| i.op == reunion_isa::Opcode::MmuOp)
            .count();
        assert_eq!(traps, 2);
        assert_eq!(mmus, 3);
    }
}

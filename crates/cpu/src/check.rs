//! The check-stage interface between a core and its pairing logic.

use reunion_fingerprint::Fingerprint;
use reunion_isa::{Addr, AtomicOp};
use reunion_kernel::Cycle;

/// A fingerprint emitted by a core's check stage at an interval boundary.
///
/// The pairing driver collects events from both cores, matches them by
/// `(epoch, fingerprint.interval_id)`, compares hashes and instruction
/// counts, and either grants release (match) or triggers recovery
/// (mismatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckEvent {
    /// Recovery epoch: events from before a rollback are stale and must be
    /// discarded by the driver.
    pub epoch: u64,
    /// The interval fingerprint (id, instruction count, hash).
    pub fingerprint: Fingerprint,
    /// When this core's fingerprint is available to send — the in-order
    /// check time of the interval's last instruction.
    pub ready_at: Cycle,
    /// Whether the interval ends with a serializing instruction (ends the
    /// interval early and stalls retirement for the full comparison).
    pub serializing: bool,
}

/// Permission from the pairing driver for an interval to retire.
///
/// `at` is when the partner's fingerprint has arrived and been compared:
/// `max(own_ready, partner_ready + comparison_latency)` from the perspective
/// of the receiving core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleaseGrant {
    /// Recovery epoch the grant belongs to.
    pub epoch: u64,
    /// Interval being released.
    pub interval_id: u64,
    /// Earliest cycle at which instructions of the interval may retire.
    pub at: Cycle,
}

/// A synchronizing-request demand raised by a core in single-step
/// re-execution mode when it reaches the first load or atomic (Definition
/// 11). The driver waits for both halves, performs one coherent
/// [`sync_access`](reunion_mem::MemorySystem::sync_access), and fulfills
/// both cores with the same value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncRequest {
    /// Word-aligned effective address of the memory operation.
    pub addr: Addr,
    /// Read-modify-write semantics, if the instruction is an atomic.
    pub rmw: Option<(AtomicOp, u64)>,
    /// Cycle at which the core raised the request.
    pub raised_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_and_grant_round_trip() {
        let fp = Fingerprint { interval_id: 4, count: 1, hash: 0x1234 };
        let ev = CheckEvent { epoch: 0, fingerprint: fp, ready_at: Cycle::new(10), serializing: false };
        let grant = ReleaseGrant { epoch: ev.epoch, interval_id: ev.fingerprint.interval_id, at: Cycle::new(20) };
        assert_eq!(grant.interval_id, 4);
        assert!(grant.at > ev.ready_at);
    }

    #[test]
    fn sync_request_carries_rmw() {
        let req = SyncRequest {
            addr: Addr::new(0x40),
            rmw: Some((AtomicOp::Swap, 1)),
            raised_at: Cycle::new(5),
        };
        assert!(req.rmw.is_some());
    }
}

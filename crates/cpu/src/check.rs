//! The check-stage interface between a core and its pairing logic.

use reunion_fingerprint::Fingerprint;
use reunion_isa::{Addr, AtomicOp};
use reunion_kernel::Cycle;

/// A fingerprint emitted by a core's check stage at an interval boundary.
///
/// The pair driver collects events from both cores, matches them by
/// `(epoch, fingerprint.interval_id)`, compares hashes and instruction
/// counts, and answers with a [`ReleaseGrant`] on a match or begins
/// recovery on a mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckEvent {
    /// Recovery epoch the event belongs to; events from before a rollback
    /// are stale and are discarded by the pair driver.
    pub epoch: u64,
    /// The interval fingerprint (id, instruction count, hash).
    pub fingerprint: Fingerprint,
    /// Cycle at which this core's fingerprint is ready to send — the
    /// in-order check time of the interval's last instruction.
    pub ready_at: Cycle,
    /// Whether the interval ends in a serializing instruction. Such an
    /// interval drains the pipeline and, in Reunion, stalls retirement for
    /// the full check round trip.
    pub serializing: bool,
}

impl CheckEvent {
    /// How many messages this event puts on a shared check interconnect:
    /// the outbound fingerprint, plus the release grant's return trip when
    /// the interval is serializing and the design pays that round trip
    /// (`serializing_round_trip`, i.e. Reunion; the strict oracle keeps
    /// checking off the serializing path). Sizing input for the scaling
    /// study's check-bus bandwidth model.
    pub fn bus_messages(&self, serializing_round_trip: bool) -> u32 {
        1 + u32::from(self.serializing && serializing_round_trip)
    }
}

/// Permission from the pair driver for an interval to retire — the answer
/// to a matched pair of [`CheckEvent`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleaseGrant {
    /// Recovery epoch the grant belongs to; grants from before a rollback
    /// are stale and are ignored by the core.
    pub epoch: u64,
    /// The interval fingerprint id being released.
    pub interval_id: u64,
    /// Cycle at which the partner's fingerprint has arrived and compared:
    /// `max(own_ready, partner_ready + comparison_latency)` from the
    /// receiving core's perspective. Serializing intervals additionally
    /// wait out the grant's return trip
    /// ([`CoreConfig::check_latency`](crate::CoreConfig::check_latency)).
    pub at: Cycle,
}

/// A synchronizing-request demand raised by a core in single-step
/// re-execution mode when it reaches the first load or atomic (Definition
/// 11). The driver waits for both halves, performs one coherent
/// [`sync_access`](reunion_mem::MemorySystem::sync_access), and fulfills
/// both cores with the same value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncRequest {
    /// Word-aligned effective address of the memory operation.
    pub addr: Addr,
    /// Read-modify-write semantics, if the instruction is an atomic.
    pub rmw: Option<(AtomicOp, u64)>,
    /// Cycle at which the core raised the request.
    pub raised_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_and_grant_round_trip() {
        let fp = Fingerprint {
            interval_id: 4,
            count: 1,
            hash: 0x1234,
        };
        let ev = CheckEvent {
            epoch: 0,
            fingerprint: fp,
            ready_at: Cycle::new(10),
            serializing: false,
        };
        let grant = ReleaseGrant {
            epoch: ev.epoch,
            interval_id: ev.fingerprint.interval_id,
            at: Cycle::new(20),
        };
        assert_eq!(grant.interval_id, 4);
        assert!(grant.at > ev.ready_at);
        // A plain interval is one fingerprint message either way.
        assert_eq!(ev.bus_messages(true), 1);
        assert_eq!(ev.bus_messages(false), 1);
        let serializing = CheckEvent {
            serializing: true,
            ..ev
        };
        assert_eq!(serializing.bus_messages(true), 2);
        assert_eq!(serializing.bus_messages(false), 1);
    }

    #[test]
    fn sync_request_carries_rmw() {
        let req = SyncRequest {
            addr: Addr::new(0x40),
            rmw: Some((AtomicOp::Swap, 1)),
            raised_at: Cycle::new(5),
        };
        assert!(req.rmw.is_some());
    }
}

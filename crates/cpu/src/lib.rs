//! The out-of-order processor core model for the Reunion simulator.
//!
//! Models the simplified pipeline of Figure 3: in-order fetch/decode, an
//! RUU-style out-of-order window (256 entries, Table 1), in-order retirement
//! with an optional **check stage** that compares fingerprints with the
//! partner core before architectural writeback, a two-region store buffer,
//! a gshare branch predictor, and ITLB/DTLB models with both hardware-walked
//! and UltraSPARC-style software-managed miss handling.
//!
//! ## Modeling approach
//!
//! The core is *functionally exact and oracle-scheduled*: an instruction's
//! architectural effect is computed when it dispatches (using the precise
//! memory view at that moment), while its *timing* — operand readiness,
//! execution latency, cache misses, serializing stalls, check-stage
//! releases — is computed forward from known producer completion times.
//! Only the correct path is fetched (mispredicted branches charge the
//! refetch penalty without executing wrong-path instructions), a standard
//! simplification that preserves every effect the paper measures:
//! serializing-retirement stalls, ROB occupancy under check latency, MSHR
//! and bank pressure, TSO store-buffer drain, and — crucially — the exact
//! data values that make input incoherence and its detection real.
//!
//! The check stage is exposed as a narrow interface ([`CheckEvent`] out,
//! [`ReleaseGrant`] in) so that the pairing logic (the `reunion-core` crate)
//! can implement Reunion, Strict, or no redundancy at all without the core
//! knowing which execution model it is part of.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use reunion_cpu::{Core, CoreConfig};
//! use reunion_isa::{Instruction, Program, RegId};
//! use reunion_kernel::Cycle;
//! use reunion_mem::{MemConfig, MemorySystem, Owner};
//!
//! let prog = Arc::new(Program::new(
//!     "count",
//!     vec![
//!         Instruction::add_imm(RegId::new(1), RegId::new(1), 1),
//!         Instruction::jump(0),
//!     ],
//! )?);
//! let mut mem = MemorySystem::new(MemConfig::small());
//! let l1 = mem.register_l1(Owner::vocal(0));
//! let mut core = Core::new(CoreConfig::default(), prog, l1, 1);
//! for cycle in 0..1000 {
//!     core.tick(Cycle::new(cycle), &mut mem);
//! }
//! assert!(core.retired_user() > 0);
//! # Ok::<(), reunion_isa::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod check;
mod config;
mod core_impl;
mod predictor;
mod stats;
mod tlb;

pub use check::{CheckEvent, ReleaseGrant, SyncRequest};
pub use config::{Consistency, CoreConfig, TlbMode};
pub use core_impl::Core;
pub use predictor::Gshare;
pub use stats::CoreStats;
pub use tlb::{software_tlb_handler, Tlb};

//! Core configuration.

use reunion_mem::PhantomStrength;

/// TLB miss handling model (§5.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbMode {
    /// A hardware page walker refills the TLB; the missing access is simply
    /// delayed by the walk latency.
    Hardware {
        /// Page-walk latency in cycles.
        walk_latency: u64,
    },
    /// The UltraSPARC III software-managed "fast TLB miss handler": a trap
    /// into a handler that performs three non-idempotent MMU accesses and a
    /// return trap — five serializing instructions per miss.
    Software,
}

impl Default for TlbMode {
    fn default() -> Self {
        TlbMode::Hardware { walk_latency: 30 }
    }
}

/// Memory consistency model enforced at retirement (§5.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Consistency {
    /// Sun Total Store Order: stores drain in order through the store
    /// buffer; only explicit membars serialize.
    #[default]
    Tso,
    /// Sequential consistency: every store carries memory-barrier semantics
    /// and therefore serializes retirement.
    Sc,
}

/// Configuration of one processor core.
///
/// Defaults are Table 1: 4-wide dispatch/retirement, 256-entry RUU,
/// 64-entry store buffer, 12-stage pipeline (the mispredict/refill penalty).
#[derive(Clone, Debug, PartialEq)]
pub struct CoreConfig {
    /// Dispatch and retirement width, instructions per cycle.
    pub width: usize,
    /// Register update unit (ROB) capacity.
    pub rob_entries: usize,
    /// Store buffer capacity (speculative region).
    pub sb_entries: usize,
    /// Pipeline refill penalty on a branch mispredict, in cycles.
    pub mispredict_penalty: u64,
    /// Whether retirement is gated by check-stage release grants (any
    /// redundant execution model).
    pub checking: bool,
    /// Strict-input-replication mute: loads consume the vocal's values from
    /// an ideal load-value queue instead of accessing the cache hierarchy.
    pub strict_lvq: bool,
    /// Phantom request strength used when this core's L1 is mute.
    pub phantom: PhantomStrength,
    /// TLB miss handling model.
    pub tlb: TlbMode,
    /// Synthetic ITLB miss rate per million fetched user instructions
    /// (instruction-footprint effects; workload-dependent).
    pub itlb_miss_per_million: u64,
    /// Memory consistency model.
    pub consistency: Consistency,
    /// Instructions per fingerprint (the fingerprint interval, §4.3).
    pub fingerprint_interval: u32,
    /// Fingerprint CRC width in bits.
    pub fingerprint_width: u32,
    /// One-way check latency in cycles, charged on top of the release
    /// grant when an interval ends in a serializing instruction (the grant
    /// itself must cross back to the core before the drained pipeline may
    /// resume), and twice (a full round trip) on every input-incoherence
    /// re-execution fulfillment. Pair drivers set this to the comparison
    /// latency.
    pub check_latency: u64,
    /// Whether serializing intervals pay the grant's return trip
    /// (`check_latency`) before retiring. True for Reunion's tightly
    /// coupled pairs; false for the strict-input-replication oracle, whose
    /// LVQ-style slack execution keeps the comparison off the critical
    /// path.
    pub serializing_round_trip: bool,
    /// L1 hit latency in cycles, charged by loads that never reach the
    /// memory system (store-buffer forwards and strict-LVQ consumption).
    /// Must match the memory system's configured hit latency; caching it
    /// here keeps those bindings memory-free, so a pure compute phase can
    /// run them off-thread.
    pub l1_hit_latency: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 4,
            rob_entries: 256,
            sb_entries: 64,
            mispredict_penalty: 12,
            checking: false,
            strict_lvq: false,
            phantom: PhantomStrength::Global,
            tlb: TlbMode::default(),
            itlb_miss_per_million: 0,
            consistency: Consistency::Tso,
            fingerprint_interval: 1,
            fingerprint_width: 16,
            check_latency: 10,
            serializing_round_trip: true,
            l1_hit_latency: 2,
        }
    }
}

impl CoreConfig {
    /// A configuration with check-stage gating enabled (redundant modes).
    pub fn checked(mut self) -> Self {
        self.checking = true;
        self
    }

    /// Whether a store serializes retirement under the configured
    /// consistency model.
    pub fn store_serializes(&self) -> bool {
        matches!(self.consistency, Consistency::Sc)
    }

    /// Sets the cached L1 hit latency (must match the memory system).
    pub fn with_l1_hit_latency(mut self, cycles: u64) -> Self {
        self.l1_hit_latency = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = CoreConfig::default();
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.rob_entries, 256);
        assert_eq!(cfg.sb_entries, 64);
        assert!(!cfg.checking);
        assert_eq!(cfg.fingerprint_interval, 1);
    }

    #[test]
    fn sc_makes_stores_serializing() {
        let mut cfg = CoreConfig::default();
        assert!(!cfg.store_serializes());
        cfg.consistency = Consistency::Sc;
        assert!(cfg.store_serializes());
    }

    #[test]
    fn checked_builder() {
        assert!(CoreConfig::default().checked().checking);
    }
}

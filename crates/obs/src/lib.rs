//! Observability primitives for the Reunion timing model.
//!
//! The rest of the workspace keeps flat counters; the paper's story is told
//! in *distributions* (check round-trip latency, serializing-stall episode
//! length, input-incoherence inter-arrival). This crate holds the small,
//! dependency-free building blocks that record them:
//!
//! - [`LatencyHistogram`] — fixed power-of-two buckets, merge-associative,
//!   exactly representable in JSON (all fields are `u64`).
//! - [`EpisodeSummary`] — a histogram over episode *lengths* (stall runs,
//!   skip runs).
//! - [`EventTrace`] — a bounded ring buffer of check-protocol events
//!   ([`TraceEvent`]) with cycle stamps, dumpable per cell as JSONL.
//! - [`ObsConfig`] — the opt-in switch ([`REUNION_OBS`]/[`REUNION_TRACE_CAP`]
//!   env knobs); everything is off by default so baseline artifacts stay
//!   byte-stable.
//! - [`ObsReport`] — the merged per-measurement summary surfaced through the
//!   BENCH JSON schema's `observability` block.
//!
//! [`REUNION_OBS`]: ObsConfig::from_env
//! [`REUNION_TRACE_CAP`]: ObsConfig::from_env
//!
//! Everything here is engine-agnostic: the recording *sites* in
//! `reunion-cpu`/`reunion-core` decide which series are dense↔skip
//! invariant (check latency, stall episodes, incoherence gaps, the trace)
//! and which are engine-dependent by design (skip runs, `skipped_cycles`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::VecDeque;

/// Number of buckets in a [`LatencyHistogram`].
///
/// Bucket 0 holds zero-valued samples; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`; the last bucket is open-ended. 16 buckets cover
/// episode lengths up to 2^14 cycles before saturating, which comfortably
/// spans every latency this model produces (check latencies are tens of
/// cycles, stall episodes hundreds, skip runs thousands).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-bucket latency histogram with power-of-two bucket boundaries.
///
/// Merge is associative and commutative: merging per-window (or per-shard)
/// histograms in any order yields byte-identical totals, which is what lets
/// shard-merged observability output equal a single-process run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel while empty.
    min: u64,
    max: u64,
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, or `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts (index per [`HISTOGRAM_BUCKETS`] doc).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Reassemble a histogram from serialized fields.
    ///
    /// `min` is stored as `0` in JSON when the histogram is empty; the
    /// empty-histogram sentinel is restored from `count == 0`.
    pub fn from_raw(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; HISTOGRAM_BUCKETS],
    ) -> Self {
        Self {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A summary of variable-length episodes (serializing-stall runs, skip runs).
///
/// Thin wrapper over [`LatencyHistogram`] keyed by episode *length in
/// cycles*; kept distinct so call sites read as what they are.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpisodeSummary {
    lengths: LatencyHistogram,
}

impl EpisodeSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed episode of `length` cycles.
    pub fn record(&mut self, length: u64) {
        self.lengths.record(length);
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &Self) {
        self.lengths.merge(&other.lengths);
    }

    /// Number of completed episodes.
    pub fn episodes(&self) -> u64 {
        self.lengths.count()
    }

    /// Total cycles across all episodes.
    pub fn total_cycles(&self) -> u64 {
        self.lengths.sum()
    }

    /// The underlying length histogram.
    pub fn lengths(&self) -> &LatencyHistogram {
        &self.lengths
    }

    /// Reassemble from a deserialized length histogram.
    pub fn from_lengths(lengths: LatencyHistogram) -> Self {
        Self { lengths }
    }
}

/// What happened at a traced point in the check protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed interval reached the check stage on the vocal core.
    Issue,
    /// The comparison matched and release grants were returned to both cores.
    Grant,
    /// Fingerprints disagreed (soft error or input incoherence).
    Mismatch,
    /// A recovery (rollback + synchronized re-execution) began.
    Recovery,
    /// Recovery escalation exhausted both phases: unrecoverable fault.
    Failure,
}

impl TraceKind {
    /// Stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Issue => "issue",
            TraceKind::Grant => "grant",
            TraceKind::Mismatch => "mismatch",
            TraceKind::Recovery => "recovery",
            TraceKind::Failure => "failure",
        }
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "issue" => Ok(TraceKind::Issue),
            "grant" => Ok(TraceKind::Grant),
            "mismatch" => Ok(TraceKind::Mismatch),
            "recovery" => Ok(TraceKind::Recovery),
            "failure" => Ok(TraceKind::Failure),
            other => Err(format!("unknown trace kind {other:?}")),
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One cycle-stamped event in the check protocol of one redundant pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle stamp (the cycle the event takes effect).
    pub cycle: u64,
    /// Logical-processor index of the pair that produced the event.
    pub lp: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Sequence number of the interval involved (0 when not applicable).
    pub interval_id: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest event is evicted so the trace always holds the
/// *most recent* `cap` events; `evicted()` reports how many were dropped.
/// A cap of 0 records nothing (every push counts as evicted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventTrace {
    events: VecDeque<TraceEvent>,
    cap: usize,
    pushed: u64,
    evicted: u64,
}

impl EventTrace {
    /// An empty trace bounded at `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(cap.min(4096)),
            cap,
            pushed: 0,
            evicted: 0,
        }
    }

    /// Append an event, evicting the oldest if the trace is at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        self.pushed += 1;
        if self.cap == 0 {
            self.evicted += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed (retained + evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events dropped because the buffer was full (or cap is 0).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterate retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drain the retained events oldest-first, leaving the trace empty
    /// (counters are preserved).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

/// Default [`EventTrace`] capacity when observability is enabled without an
/// explicit `REUNION_TRACE_CAP`.
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Opt-in observability configuration.
///
/// Default-constructed (and absent-from-env) state is *off*: no histograms
/// are recorded, no trace is kept, and serialized artifacts are
/// byte-identical to pre-observability output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch for histogram/episode recording and trace capture.
    pub enabled: bool,
    /// Per-pair bound on retained trace events.
    pub trace_cap: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            trace_cap: DEFAULT_TRACE_CAP,
        }
    }
}

impl ObsConfig {
    /// Resolve from the environment: `REUNION_OBS=1` enables recording,
    /// `REUNION_TRACE_CAP=<n>` bounds the per-pair event trace (default
    /// [`DEFAULT_TRACE_CAP`]).
    ///
    /// Panics on an unparseable `REUNION_TRACE_CAP`, matching how the other
    /// `REUNION_*` knobs fail fast on bad input.
    #[deprecated(
        note = "configuration construction is env-free; resolve observability once \
                (e.g. via reunion_sim::RunOptions) and inject it with \
                SystemConfig::with_observability or GridBuilder::run_options"
    )]
    pub fn from_env() -> Self {
        let enabled = std::env::var("REUNION_OBS")
            .map(|v| v == "1")
            .unwrap_or(false);
        let trace_cap = match std::env::var("REUNION_TRACE_CAP") {
            Ok(v) => v
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("REUNION_TRACE_CAP must be an integer, got {v:?}")),
            Err(_) => DEFAULT_TRACE_CAP,
        };
        Self { enabled, trace_cap }
    }
}

/// Merged observability summary for one measurement (all windows, all pairs).
///
/// Every field is a `u64`-backed structure so the JSON round trip is exact.
/// `check_latency`, `stall_episodes`, `incoherence_gaps`, and the trace
/// counters are dense↔skip engine-invariant; `skip_runs` and
/// `skipped_cycles` describe the engine itself and differ across engines by
/// design.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Check round-trip latency: cycles from a vocal interval reaching the
    /// check stage to its release grant arriving back.
    pub check_latency: LatencyHistogram,
    /// Lengths of serializing-stall episodes (consecutive cycles a core's
    /// retire stage waited on an outstanding serializing check).
    pub stall_episodes: EpisodeSummary,
    /// Lengths of cycle runs the engine fast-forwarded over
    /// (engine-dependent: dense only skips quiescent tails).
    pub skip_runs: EpisodeSummary,
    /// Inter-arrival gaps between input-incoherence events.
    pub incoherence_gaps: LatencyHistogram,
    /// Total cycles skipped by the engine (promoted from the counter kept
    /// out of the schema since the skip engine landed).
    pub skipped_cycles: u64,
    /// Total trace events captured (including later-evicted ones).
    pub trace_events: u64,
    /// Trace events evicted by the ring-buffer bound.
    pub trace_evicted: u64,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another report into this one (associative, commutative).
    pub fn merge(&mut self, other: &Self) {
        self.check_latency.merge(&other.check_latency);
        self.stall_episodes.merge(&other.stall_episodes);
        self.skip_runs.merge(&other.skip_runs);
        self.incoherence_gaps.merge(&other.incoherence_gaps);
        self.skipped_cycles += other.skipped_cycles;
        self.trace_events += other.trace_events;
        self.trace_evicted += other.trace_evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 14) - 1), 14);
        assert_eq!(bucket_index(1 << 14), 15);
        assert_eq!(bucket_index(u64::MAX), 15);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for v in [3, 0, 12, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 22);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(12));
        assert_eq!(h.mean(), Some(5.5));
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[3], 1); // 7
        assert_eq!(h.buckets()[4], 1); // 12
    }

    /// Deterministic xorshift so merge tests exercise varied shapes without
    /// OS randomness.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn merge_is_associative_and_matches_sequential_recording() {
        let mut state = 0x0B5E_55ED_u64;
        let samples: Vec<u64> = (0..300).map(|_| xorshift(&mut state) % 50_000).collect();

        // One histogram fed everything...
        let mut all = LatencyHistogram::new();
        for &s in &samples {
            all.record(s);
        }

        // ...must equal three partials merged in either association order.
        let mut parts: Vec<LatencyHistogram> = samples
            .chunks(100)
            .map(|c| {
                let mut h = LatencyHistogram::new();
                for &s in c {
                    h.record(s);
                }
                h
            })
            .collect();
        let (a, b, c) = (parts.remove(0), parts.remove(0), parts.remove(0));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right);
        assert_eq!(left, all);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(9);
        let before = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before);

        let mut empty = LatencyHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn from_raw_round_trips_including_empty_min_sentinel() {
        let mut h = LatencyHistogram::new();
        for v in [5, 17, 90] {
            h.record(v);
        }
        let r = LatencyHistogram::from_raw(
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            *h.buckets(),
        );
        assert_eq!(r, h);

        let empty = LatencyHistogram::from_raw(0, 0, 0, 0, [0; HISTOGRAM_BUCKETS]);
        assert_eq!(empty, LatencyHistogram::new());
        assert_eq!(empty.min(), None);
    }

    #[test]
    fn episode_summary_counts_episodes_and_cycles() {
        let mut e = EpisodeSummary::new();
        e.record(10);
        e.record(4);
        assert_eq!(e.episodes(), 2);
        assert_eq!(e.total_cycles(), 14);
        let mut other = EpisodeSummary::new();
        other.record(1);
        e.merge(&other);
        assert_eq!(e.episodes(), 3);
        assert_eq!(e.total_cycles(), 15);
    }

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            lp: 0,
            kind: TraceKind::Issue,
            interval_id: cycle,
        }
    }

    #[test]
    fn trace_evicts_oldest_at_cap() {
        let mut t = EventTrace::with_capacity(3);
        for c in 0..5 {
            t.push(ev(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.pushed(), 5);
        assert_eq!(t.evicted(), 2);
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        let drained = t.take_events();
        assert_eq!(drained.len(), 3);
        assert!(t.is_empty());
        // Counters survive the drain.
        assert_eq!(t.pushed(), 5);
        assert_eq!(t.evicted(), 2);
    }

    #[test]
    fn trace_cap_zero_drops_everything() {
        let mut t = EventTrace::with_capacity(0);
        t.push(ev(1));
        t.push(ev(2));
        assert!(t.is_empty());
        assert_eq!(t.pushed(), 2);
        assert_eq!(t.evicted(), 2);
    }

    #[test]
    fn trace_kind_round_trips() {
        for k in [
            TraceKind::Issue,
            TraceKind::Grant,
            TraceKind::Mismatch,
            TraceKind::Recovery,
            TraceKind::Failure,
        ] {
            assert_eq!(k.as_str().parse::<TraceKind>().unwrap(), k);
        }
        assert!("bogus".parse::<TraceKind>().is_err());
    }

    #[test]
    fn obs_config_default_is_off() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.trace_cap, DEFAULT_TRACE_CAP);
    }

    #[test]
    fn obs_report_merge_sums_everything() {
        let mut a = ObsReport::new();
        a.check_latency.record(10);
        a.stall_episodes.record(3);
        a.skip_runs.record(100);
        a.incoherence_gaps.record(5000);
        a.skipped_cycles = 7;
        a.trace_events = 2;
        a.trace_evicted = 1;
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.check_latency.count(), 2);
        assert_eq!(a.stall_episodes.episodes(), 2);
        assert_eq!(a.skip_runs.episodes(), 2);
        assert_eq!(a.incoherence_gaps.count(), 2);
        assert_eq!(a.skipped_cycles, 14);
        assert_eq!(a.trace_events, 4);
        assert_eq!(a.trace_evicted, 2);
    }
}

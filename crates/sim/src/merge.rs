//! Merging shard manifests back into a single experiment report.
//!
//! The inverse of [`Runner::run_shard`](crate::Runner::run_shard): given
//! the manifests of a complete partition (any `N`, produced on any mix of
//! machines), [`merge_manifests`] reassembles the
//! [`ExperimentReport`](crate::ExperimentReport) — byte-identical to the
//! report a single-process run of the same grid would have produced,
//! because cell measurement is a pure function of (grid, cell) and records
//! round-trip exactly through manifest lines.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::manifest::{read_manifest, ManifestHeader};
use crate::report::ExperimentReport;

/// Why a set of manifests could not be merged.
#[derive(Debug)]
pub enum MergeError {
    /// No manifest paths were supplied.
    Empty,
    /// A manifest could not be read or parsed.
    Read(String),
    /// A manifest records a different experiment (grid, partition width,
    /// sampling profile, …) than the first one.
    Mismatch {
        /// The offending manifest.
        path: PathBuf,
        /// How its header disagrees.
        detail: String,
    },
    /// Two manifests recorded the same cell — the partition overlapped.
    DuplicateCell {
        /// The doubly-recorded cell index.
        index: usize,
    },
    /// The manifests do not cover the whole grid (shards missing, or a
    /// shard was interrupted and never resumed to completion).
    MissingCells {
        /// Uncovered cell indices, ascending (capped for display).
        missing: Vec<usize>,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard manifests to merge"),
            MergeError::Read(e) => write!(f, "{e}"),
            MergeError::Mismatch { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            MergeError::DuplicateCell { index } => {
                write!(f, "cell {index} recorded by more than one manifest")
            }
            MergeError::MissingCells { missing } => {
                write!(
                    f,
                    "{} cell(s) not covered by any manifest (first missing: {:?}); \
                     run the missing shards (or resume the interrupted ones) first",
                    missing.len(),
                    &missing[..missing.len().min(8)]
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges the shard manifests at `paths` into one report.
///
/// All manifests must describe the same experiment (identical grid id,
/// caption, cell count, sampling profile and overrides, and partition
/// width), and together they must cover every grid cell exactly once.
/// Records are reassembled in grid enumeration order, so the merged
/// report's JSON is byte-identical to a single-process run's.
///
/// # Errors
///
/// See [`MergeError`]; incomplete coverage names the missing cells so the
/// operator knows which shard to (re)run.
pub fn merge_manifests(paths: &[PathBuf]) -> Result<ExperimentReport, MergeError> {
    let first_path = paths.first().ok_or(MergeError::Empty)?;
    let (reference, mut records) = read_manifest(first_path).map_err(MergeError::Read)?;
    for path in &paths[1..] {
        let (header, shard_records) = read_manifest(path).map_err(MergeError::Read)?;
        if !header.same_experiment(&reference) {
            return Err(MergeError::Mismatch {
                path: path.clone(),
                detail: format!(
                    "manifest describes a different experiment than {} \
                     (grid {:?} shard {} vs grid {:?} shard {})",
                    first_path.display(),
                    header.id,
                    header.shard,
                    reference.id,
                    reference.shard,
                ),
            });
        }
        for (index, record) in shard_records {
            if records.insert(index, record).is_some() {
                return Err(MergeError::DuplicateCell { index });
            }
        }
    }
    let missing: Vec<usize> = (0..reference.cells)
        .filter(|i| !records.contains_key(i))
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingCells { missing });
    }
    Ok(report_from_parts(reference, records))
}

fn report_from_parts(
    header: ManifestHeader,
    records: BTreeMap<usize, crate::report::RunRecord>,
) -> ExperimentReport {
    ExperimentReport {
        id: header.id,
        caption: header.caption,
        sample: header.sample,
        sample_overrides: header.sample_overrides,
        records: records.into_values().collect(),
    }
}

/// All shard manifests (`MANIFEST_*.jsonl`) directly under `dir`, sorted by
/// file name, grouped by the grid id recorded in each header.
///
/// Only the header line of each file is read here — grouping must stay
/// cheap even over a campaign directory whose record lines run to
/// thousands; the records are parsed once, by [`merge_manifests`].
///
/// # Errors
///
/// Propagates directory-read failures; unreadable or foreign `.jsonl`
/// files are skipped rather than failing the scan.
pub fn find_manifests(dir: &Path) -> io::Result<BTreeMap<String, Vec<PathBuf>>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("MANIFEST_") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    let mut groups: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    for path in files {
        let Ok(file) = File::open(&path) else {
            continue;
        };
        let mut first = String::new();
        if BufReader::new(file).read_line(&mut first).is_err() {
            continue;
        }
        if let Ok(header) = ManifestHeader::from_line(first.trim_end()) {
            groups.entry(header.id).or_default().push(path);
        }
    }
    Ok(groups)
}

//! Sparse configuration overrides — the third axis of an experiment grid.

use reunion_core::SystemConfig;
use reunion_cpu::{Consistency, TlbMode};
use reunion_mem::PhantomStrength;

/// A labeled, sparse override applied on top of a base [`SystemConfig`].
///
/// Every figure and table in the paper sweeps at most a couple of
/// configuration fields (comparison latency, phantom strength, TLB model,
/// consistency, fingerprint interval); a patch names one point of such a
/// sweep, and [`apply`](ConfigPatch::apply) leaves every other field of the
/// base configuration untouched.
///
/// # Examples
///
/// ```
/// use reunion_core::{ExecutionMode, SystemConfig};
/// use reunion_sim::ConfigPatch;
///
/// let patch = ConfigPatch::new("lat=40").latency(40);
/// let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
/// patch.apply(&mut cfg);
/// assert_eq!(cfg.comparison_latency, 40);
/// assert_eq!(patch.label(), "lat=40");
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConfigPatch {
    label: String,
    comparison_latency: Option<u64>,
    phantom: Option<PhantomStrength>,
    tlb: Option<TlbMode>,
    consistency: Option<Consistency>,
    fingerprint_interval: Option<u32>,
    logical_processors: Option<usize>,
    seed: Option<u64>,
    check_bandwidth: Option<u64>,
    xbar_ports: Option<usize>,
}

impl ConfigPatch {
    /// An empty patch with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        ConfigPatch {
            label: label.into(),
            ..ConfigPatch::default()
        }
    }

    /// The conventional "change nothing" patch used by single-point grids.
    pub fn baseline() -> Self {
        ConfigPatch::new("base")
    }

    /// The patch's display label (also its identity within a report).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Overrides the one-way fingerprint comparison latency (Figure 6).
    pub fn latency(mut self, cycles: u64) -> Self {
        self.comparison_latency = Some(cycles);
        self
    }

    /// Overrides the phantom request strength (Figure 7a / Table 3).
    pub fn phantom(mut self, strength: PhantomStrength) -> Self {
        self.phantom = Some(strength);
        self
    }

    /// Overrides the TLB miss handling model (Figure 7b).
    pub fn tlb(mut self, tlb: TlbMode) -> Self {
        self.tlb = Some(tlb);
        self
    }

    /// Overrides the memory consistency model (§5.5).
    pub fn consistency(mut self, model: Consistency) -> Self {
        self.consistency = Some(model);
        self
    }

    /// Overrides the instructions-per-fingerprint interval (§4.3).
    pub fn fingerprint_interval(mut self, interval: u32) -> Self {
        self.fingerprint_interval = Some(interval);
        self
    }

    /// Overrides the number of logical processors.
    pub fn logical_processors(mut self, n: usize) -> Self {
        self.logical_processors = Some(n);
        self
    }

    /// Overrides the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the shared check-bus occupancy — cycles per fingerprint
    /// message, the reciprocal of the bus bandwidth (`0` = unmodeled
    /// private channels). The second axis of the scaling study.
    pub fn check_bandwidth(mut self, cycles_per_message: u64) -> Self {
        self.check_bandwidth = Some(cycles_per_message);
        self
    }

    /// Overrides the number of L1↔L2 crossbar ports (`0` = unbounded).
    pub fn xbar_ports(mut self, ports: usize) -> Self {
        self.xbar_ports = Some(ports);
        self
    }

    /// Applies the overrides to `cfg`, leaving unset fields untouched.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(v) = self.comparison_latency {
            cfg.comparison_latency = v;
        }
        if let Some(v) = self.phantom {
            cfg.phantom = v;
        }
        if let Some(v) = self.tlb {
            cfg.tlb = v;
        }
        if let Some(v) = self.consistency {
            cfg.consistency = v;
        }
        if let Some(v) = self.fingerprint_interval {
            cfg.fingerprint_interval = v;
        }
        if let Some(v) = self.logical_processors {
            cfg.logical_processors = v;
        }
        if let Some(v) = self.seed {
            cfg.seed = v;
        }
        if let Some(v) = self.check_bandwidth {
            cfg.check_bus_occupancy = v;
        }
        if let Some(v) = self.xbar_ports {
            cfg.mem.xbar_ports = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reunion_core::ExecutionMode;

    #[test]
    fn baseline_changes_nothing() {
        let base = SystemConfig::table1(ExecutionMode::Reunion);
        let mut patched = base.clone();
        ConfigPatch::baseline().apply(&mut patched);
        assert_eq!(base, patched);
    }

    #[test]
    fn multi_field_patch_applies_all_fields() {
        let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
        ConfigPatch::new("sc+lat40+null")
            .latency(40)
            .consistency(Consistency::Sc)
            .phantom(PhantomStrength::Null)
            .fingerprint_interval(50)
            .apply(&mut cfg);
        assert_eq!(cfg.comparison_latency, 40);
        assert_eq!(cfg.consistency, Consistency::Sc);
        assert_eq!(cfg.phantom, PhantomStrength::Null);
        assert_eq!(cfg.fingerprint_interval, 50);
        // Untouched fields keep Table 1 values.
        assert_eq!(cfg.logical_processors, 4);
    }

    #[test]
    fn scaling_knobs_patch_bus_and_crossbar() {
        let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
        ConfigPatch::new("p8:bw2")
            .logical_processors(8)
            .check_bandwidth(2)
            .xbar_ports(4)
            .apply(&mut cfg);
        assert_eq!(cfg.logical_processors, 8);
        assert_eq!(cfg.check_bus_occupancy, 2);
        assert_eq!(cfg.mem.xbar_ports, 4);
        // The unset mem knobs keep their Table 1 values.
        assert_eq!(cfg.mem.bank_queue_depth, 0);
    }
}

//! Unified run-options resolution for experiment drivers.
//!
//! Every experiment binary historically grew its own partial mix of flags
//! and `REUNION_*` environment reads; [`RunOptions`] replaces that with one
//! typed resolution of the shared run surface:
//!
//! | option        | flag                      | environment fallback        |
//! |---------------|---------------------------|-----------------------------|
//! | profile       | `--profile full\|fast`    | `REUNION_PROFILE` (legacy `REUNION_FAST=1`) |
//! | engine        | `--engine dense\|skip`    | `REUNION_ENGINE`            |
//! | serial        | `--serial`                | `REUNION_SERIAL=1`          |
//! | threads       | `--threads <n>`           | `REUNION_THREADS`           |
//! | intra-cell    | `--intracell-threads <n>` | `REUNION_INTRACELL_THREADS` |
//! | shard         | `--shard i/N`             | `REUNION_SHARD`             |
//! | observability | `--obs`                   | `REUNION_OBS=1`             |
//! | trace cap     | `--trace-cap <n>`         | `REUNION_TRACE_CAP`         |
//!
//! A flag always wins over its environment fallback. Resolution is
//! *hermetic* — [`RunOptions::resolve`] takes the argument list and an
//! environment lookup function, so precedence is unit-testable without
//! touching process state. Arguments the resolver does not recognize are
//! returned to the caller untouched (binaries with extra flags, positional
//! manifest paths, …); callers that accept no extra arguments treat a
//! non-empty leftover list as a usage error.
//!
//! After resolving, a driver injects the winning choices where they are
//! needed: [`RunOptions::apply`] stamps the engine and observability
//! selection onto a [`SystemConfig`] (the constructors are env-free —
//! they never read `REUNION_*` themselves), and
//! [`GridBuilder::run_options`](crate::GridBuilder::run_options) does the
//! same for every cell of an experiment grid. [`RunOptions::apply_env`]
//! additionally exports the choices back into the process environment for
//! the legacy env-reading entry points ([`Runner::from_env`],
//! [`ShardSpec::from_env`]) and for child processes spawned by the
//! dispatcher.

use reunion_core::{Engine, ObsConfig, Profile, SampleConfig, SystemConfig};

use crate::runner::Runner;
use crate::shard::ShardSpec;

/// The resolved run surface shared by every experiment binary.
///
/// Construct via [`RunOptions::parse_cli`] (real argv + environment) or
/// [`RunOptions::resolve`] (hermetic, for tests and embedders).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Sampling profile (`--profile`, `REUNION_PROFILE`, `REUNION_FAST=1`).
    pub profile: Profile,
    /// Timing engine (`--engine`, `REUNION_ENGINE`). `BENCH_<id>.json`
    /// output is byte-identical between the two engines.
    pub engine: Engine,
    /// Force single-threaded execution (`--serial`, `REUNION_SERIAL=1`).
    pub serial: bool,
    /// Worker-thread cap (`--threads`, `REUNION_THREADS`); `None` means
    /// all cores. Ignored when `serial` is set.
    pub threads: Option<usize>,
    /// Intra-cell compute workers per simulated system
    /// (`--intracell-threads`, `REUNION_INTRACELL_THREADS`); `None` or
    /// values below 2 keep the per-pair compute phase on the ticking
    /// thread. Purely a scheduling choice: artifacts are byte-identical
    /// for every setting. [`RunOptions::runner`] divides the thread
    /// budget so cell-level workers × intra-cell workers stays within
    /// `threads`.
    pub intracell: Option<usize>,
    /// Shard slice to execute (`--shard i/N`, `REUNION_SHARD=i/N`);
    /// `None` runs the whole grid in-process.
    pub shard: Option<ShardSpec>,
    /// Opt-in observability layer (`--obs` / `REUNION_OBS=1` plus
    /// `--trace-cap` / `REUNION_TRACE_CAP`). Off by default so the
    /// `BENCH_<id>.json` artifacts stay byte-stable.
    pub observability: ObsConfig,
}

/// One-line usage summary of the shared flags, for drivers' usage errors.
pub const RUN_OPTIONS_USAGE: &str = "[--profile full|fast] [--engine dense|skip] [--serial] \
     [--threads <n>] [--intracell-threads <n>] [--shard i/N] [--obs] [--trace-cap <n>]";

impl RunOptions {
    /// Resolves the shared options from an argument list and an environment
    /// lookup, returning the options plus every argument the resolver did
    /// not recognize, in their original order.
    ///
    /// # Errors
    ///
    /// Returns a usage message when a flag is missing its value or any
    /// flag/environment value fails to parse. A malformed environment value
    /// is an error even though it is merely a fallback — silently ignoring
    /// it would run the (expensive) default configuration.
    pub fn resolve(
        args: impl IntoIterator<Item = String>,
        env: &dyn Fn(&str) -> Option<String>,
    ) -> Result<(Self, Vec<String>), String> {
        let mut profile: Option<Profile> = None;
        let mut engine: Option<Engine> = None;
        let mut serial = false;
        let mut threads: Option<usize> = None;
        let mut intracell: Option<usize> = None;
        let mut shard: Option<ShardSpec> = None;
        let mut obs = false;
        let mut trace_cap: Option<usize> = None;
        let mut leftovers = Vec::new();

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |flag: &str, hint: &str| -> Option<Result<String, String>> {
                if arg == flag {
                    Some(
                        it.next()
                            .ok_or_else(|| format!("{flag} requires a value ({hint})")),
                    )
                } else {
                    arg.strip_prefix(flag)
                        .and_then(|rest| rest.strip_prefix('='))
                        .map(|v| Ok(v.to_string()))
                }
            };
            if let Some(v) = take("--profile", "full|fast") {
                profile = Some(v?.parse()?);
            } else if let Some(v) = take("--engine", "dense|skip") {
                engine = Some(v?.parse()?);
            } else if let Some(v) = take("--threads", "a worker count") {
                threads = Some(parse_count("--threads", &v?)?);
            } else if let Some(v) = take("--intracell-threads", "compute workers per cell") {
                intracell = Some(parse_usize("--intracell-threads", &v?)?);
            } else if let Some(v) = take("--shard", "i/N") {
                shard = Some(v?.parse::<ShardSpec>()?);
            } else if let Some(v) = take("--trace-cap", "events per pair") {
                trace_cap = Some(parse_usize("--trace-cap", &v?)?);
            } else if arg == "--serial" {
                serial = true;
            } else if arg == "--obs" {
                obs = true;
            } else {
                leftovers.push(arg);
            }
        }

        let profile = match profile {
            Some(p) => p,
            None => match env("REUNION_PROFILE") {
                Some(v) => v.parse().map_err(|e| format!("REUNION_PROFILE: {e}"))?,
                None if env_is_one(env, "REUNION_FAST") => Profile::Fast,
                None => Profile::Full,
            },
        };
        let engine = match engine {
            Some(e) => e,
            None => match env("REUNION_ENGINE") {
                Some(v) => v.parse().map_err(|e| format!("REUNION_ENGINE: {e}"))?,
                None => Engine::default(),
            },
        };
        let serial = serial || env_is_one(env, "REUNION_SERIAL");
        let threads = match threads {
            Some(t) => Some(t),
            None => match env("REUNION_THREADS") {
                Some(v) => Some(parse_count("REUNION_THREADS", &v)?),
                None => None,
            },
        };
        let intracell = match intracell {
            Some(t) => Some(t),
            None => match env("REUNION_INTRACELL_THREADS") {
                Some(v) => Some(parse_usize("REUNION_INTRACELL_THREADS", &v)?),
                None => None,
            },
        };
        let shard = match shard {
            Some(s) => Some(s),
            None => match env("REUNION_SHARD") {
                Some(v) => Some(
                    v.parse::<ShardSpec>()
                        .map_err(|e| format!("REUNION_SHARD: {e}"))?,
                ),
                None => None,
            },
        };
        let obs = obs || env_is_one(env, "REUNION_OBS");
        let trace_cap = match trace_cap {
            Some(c) => c,
            None => match env("REUNION_TRACE_CAP") {
                Some(v) => parse_usize("REUNION_TRACE_CAP", &v)?,
                None => ObsConfig::default().trace_cap,
            },
        };

        Ok((
            RunOptions {
                profile,
                engine,
                serial,
                threads,
                intracell,
                shard,
                observability: ObsConfig {
                    enabled: obs,
                    trace_cap,
                },
            },
            leftovers,
        ))
    }

    /// Resolves from the real command line (`std::env::args`, skipping the
    /// binary name) and process environment.
    ///
    /// # Errors
    ///
    /// Propagates [`RunOptions::resolve`] errors; the caller decides how to
    /// report them (the bench harness prints usage and exits 2).
    pub fn parse_cli() -> Result<(Self, Vec<String>), String> {
        Self::resolve(std::env::args().skip(1), &|k| std::env::var(k).ok())
    }

    /// Stamps the per-system choices — timing engine and observability —
    /// onto a [`SystemConfig`].
    ///
    /// The config constructors are env-free; this (or the equivalent
    /// [`SystemConfig::with_engine`] / [`SystemConfig::with_observability`]
    /// builders) is how a resolved command line reaches a configuration.
    /// Grid-based drivers normally don't call it directly:
    /// [`GridBuilder::run_options`](crate::GridBuilder::run_options)
    /// records the same overlay on the grid, which applies it to every
    /// cell's config.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        cfg.engine = self.engine;
        cfg.obs = self.observability;
        cfg.intracell_threads = self.intracell.unwrap_or(0);
    }

    /// Exports every winning choice back into the process environment, so
    /// the legacy env-reading entry points — [`Runner::from_env`],
    /// [`ShardSpec::from_env`] — and any child process spawned by the
    /// dispatcher observe exactly what this resolution decided.
    /// ([`SystemConfig`] itself is env-free; see [`RunOptions::apply`].)
    pub fn apply_env(&self) {
        std::env::set_var("REUNION_PROFILE", self.profile.to_string());
        std::env::set_var("REUNION_ENGINE", self.engine.to_string());
        std::env::set_var("REUNION_SERIAL", if self.serial { "1" } else { "0" });
        match self.threads {
            Some(t) => std::env::set_var("REUNION_THREADS", t.to_string()),
            None => std::env::remove_var("REUNION_THREADS"),
        }
        match self.intracell {
            Some(t) => std::env::set_var("REUNION_INTRACELL_THREADS", t.to_string()),
            None => std::env::remove_var("REUNION_INTRACELL_THREADS"),
        }
        match self.shard {
            Some(s) => std::env::set_var("REUNION_SHARD", s.to_string()),
            None => std::env::remove_var("REUNION_SHARD"),
        }
        std::env::set_var(
            "REUNION_OBS",
            if self.observability.enabled { "1" } else { "0" },
        );
        std::env::set_var(
            "REUNION_TRACE_CAP",
            self.observability.trace_cap.to_string(),
        );
    }

    /// The sampling parameters the selected profile maps to.
    pub fn sample(&self) -> SampleConfig {
        self.profile.sample()
    }

    /// A [`Runner`] honouring the resolved `serial`/`threads`/`intracell`
    /// choice.
    ///
    /// When intra-cell compute workers are enabled, the cell-level worker
    /// count is the thread budget divided by the per-cell worker count
    /// (floor, at least 1), so cells × intra-cell workers never
    /// oversubscribes the budget. With intra-cell parallelism off the
    /// budget goes entirely to cell-level workers, as before.
    pub fn runner(&self) -> Runner {
        if self.serial {
            return Runner::serial();
        }
        let total = match self.threads {
            Some(t) => t.max(1),
            None => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        };
        let per_cell = self.intracell.unwrap_or(0).max(1);
        Runner::with_threads((total / per_cell).max(1))
    }
}

impl Default for RunOptions {
    /// The paper's defaults: full profile, skip engine, parallel in-process
    /// execution, observability off.
    fn default() -> Self {
        RunOptions {
            profile: Profile::default(),
            engine: Engine::default(),
            serial: false,
            threads: None,
            intracell: None,
            shard: None,
            observability: ObsConfig::default(),
        }
    }
}

fn env_is_one(env: &dyn Fn(&str) -> Option<String>, name: &str) -> bool {
    env(name).is_some_and(|v| v == "1")
}

fn parse_usize(what: &str, v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("{what}: expected a non-negative integer, got {v:?}"))
}

fn parse_count(what: &str, v: &str) -> Result<usize, String> {
    match parse_usize(what, v)? {
        0 => Err(format!("{what}: must be at least 1")),
        n => Ok(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn resolve(args: &[&str], env: &[(&str, &str)]) -> Result<(RunOptions, Vec<String>), String> {
        let map: HashMap<String, String> = env
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        RunOptions::resolve(args.iter().map(|s| s.to_string()), &move |k| {
            map.get(k).cloned()
        })
    }

    fn opts(args: &[&str], env: &[(&str, &str)]) -> RunOptions {
        let (o, leftovers) = resolve(args, env).unwrap();
        assert!(leftovers.is_empty(), "unexpected leftovers {leftovers:?}");
        o
    }

    #[test]
    fn defaults_when_nothing_is_set() {
        let o = opts(&[], &[]);
        assert_eq!(o, RunOptions::default());
        assert_eq!(o.profile, Profile::Full);
        assert_eq!(o.engine, Engine::Skip);
        assert!(!o.observability.enabled);
    }

    #[test]
    fn flags_parse_both_spellings() {
        let o = opts(
            &[
                "--profile",
                "fast",
                "--engine=dense",
                "--serial",
                "--threads=3",
                "--intracell-threads=2",
                "--shard",
                "2/4",
                "--obs",
                "--trace-cap=16",
            ],
            &[],
        );
        assert_eq!(o.profile, Profile::Fast);
        assert_eq!(o.engine, Engine::Dense);
        assert!(o.serial);
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.intracell, Some(2));
        assert_eq!(o.shard, Some(ShardSpec::new(2, 4)));
        assert!(o.observability.enabled);
        assert_eq!(o.observability.trace_cap, 16);
    }

    #[test]
    fn env_fallback_fills_unset_options() {
        let o = opts(
            &[],
            &[
                ("REUNION_PROFILE", "fast"),
                ("REUNION_ENGINE", "dense"),
                ("REUNION_SERIAL", "1"),
                ("REUNION_THREADS", "2"),
                ("REUNION_INTRACELL_THREADS", "4"),
                ("REUNION_SHARD", "1/2"),
                ("REUNION_OBS", "1"),
                ("REUNION_TRACE_CAP", "8"),
            ],
        );
        assert_eq!(o.profile, Profile::Fast);
        assert_eq!(o.engine, Engine::Dense);
        assert!(o.serial);
        assert_eq!(o.threads, Some(2));
        assert_eq!(o.intracell, Some(4));
        assert_eq!(o.shard, Some(ShardSpec::new(1, 2)));
        assert!(o.observability.enabled);
        assert_eq!(o.observability.trace_cap, 8);
    }

    #[test]
    fn flag_wins_over_environment() {
        let o = opts(
            &["--profile", "full", "--engine", "skip", "--trace-cap", "32"],
            &[
                ("REUNION_PROFILE", "fast"),
                ("REUNION_ENGINE", "dense"),
                ("REUNION_TRACE_CAP", "8"),
            ],
        );
        assert_eq!(o.profile, Profile::Full);
        assert_eq!(o.engine, Engine::Skip);
        assert_eq!(o.observability.trace_cap, 32);
    }

    #[test]
    fn legacy_fast_spelling_applies_only_without_profile() {
        assert_eq!(opts(&[], &[("REUNION_FAST", "1")]).profile, Profile::Fast);
        assert_eq!(
            opts(&[], &[("REUNION_FAST", "1"), ("REUNION_PROFILE", "full")]).profile,
            Profile::Full,
            "REUNION_PROFILE outranks the legacy spelling"
        );
        assert_eq!(opts(&[], &[("REUNION_FAST", "0")]).profile, Profile::Full);
    }

    #[test]
    fn unrecognized_arguments_pass_through_in_order() {
        let (o, leftovers) =
            resolve(&["alpha", "--profile", "fast", "--beta=7", "gamma"], &[]).unwrap();
        assert_eq!(o.profile, Profile::Fast);
        assert_eq!(leftovers, vec!["alpha", "--beta=7", "gamma"]);
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(resolve(&["--profile"], &[]).is_err());
        assert!(resolve(&["--profile", "slow"], &[]).is_err());
        assert!(resolve(&["--engine=sparse"], &[]).is_err());
        assert!(resolve(&["--threads", "0"], &[]).is_err());
        assert!(resolve(&["--threads", "many"], &[]).is_err());
        assert!(resolve(&["--shard", "3"], &[]).is_err());
        assert!(resolve(&["--trace-cap", "-1"], &[]).is_err());
        assert!(resolve(&["--intracell-threads", "some"], &[]).is_err());
        assert!(resolve(&[], &[("REUNION_ENGINE", "warp")]).is_err());
        assert!(resolve(&[], &[("REUNION_INTRACELL_THREADS", "x")]).is_err());
        assert!(resolve(&[], &[("REUNION_THREADS", "0")]).is_err());
        assert!(resolve(&[], &[("REUNION_SHARD", "0/0")]).is_err());
        assert!(resolve(&[], &[("REUNION_TRACE_CAP", "lots")]).is_err());
    }

    #[test]
    fn serial_env_respects_canonical_convention() {
        assert!(opts(&[], &[("REUNION_SERIAL", "1")]).serial);
        assert!(!opts(&[], &[("REUNION_SERIAL", "true")]).serial);
        assert!(!opts(&[], &[("REUNION_SERIAL", "0")]).serial);
    }

    #[test]
    fn runner_honours_serial_and_threads() {
        assert!(opts(&["--serial"], &[]).runner().is_serial());
        assert!(!opts(&["--threads", "4"], &[]).runner().is_serial());
        let both = opts(&["--serial", "--threads", "4"], &[]);
        assert!(both.runner().is_serial(), "serial outranks a thread cap");
    }

    #[test]
    fn intracell_workers_split_the_thread_budget() {
        // 8 total / 4 per cell = 2 cell workers.
        let o = opts(&["--threads", "8", "--intracell-threads", "4"], &[]);
        assert!(!o.runner().is_serial());
        // 4 total / 8 per cell rounds down to one cell worker.
        let o = opts(&["--threads", "4", "--intracell-threads", "8"], &[]);
        assert!(o.runner().is_serial());
        // Disabled (0) or degenerate (1) intra-cell settings leave the
        // whole budget to cell-level workers.
        for knob in ["0", "1"] {
            let o = opts(&["--threads", "2", "--intracell-threads", knob], &[]);
            assert!(!o.runner().is_serial());
        }
    }

    #[test]
    fn apply_stamps_engine_and_observability_onto_a_config() {
        use reunion_core::ExecutionMode;
        let o = opts(&["--engine", "dense", "--obs", "--trace-cap", "16"], &[]);
        let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
        assert_eq!(cfg.engine, Engine::Skip, "env-free constructor default");
        assert!(!cfg.obs.enabled);
        o.apply(&mut cfg);
        assert_eq!(cfg.engine, Engine::Dense);
        assert!(cfg.obs.enabled);
        assert_eq!(cfg.obs.trace_cap, 16);
    }

    #[test]
    fn apply_stamps_intracell_workers_onto_a_config() {
        use reunion_core::ExecutionMode;
        let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
        assert_eq!(cfg.intracell_threads, 0, "env-free constructor default");
        opts(&["--intracell-threads", "4"], &[]).apply(&mut cfg);
        assert_eq!(cfg.intracell_threads, 4);
        opts(&[], &[]).apply(&mut cfg);
        assert_eq!(cfg.intracell_threads, 0, "unset knob resets the overlay");
    }

    #[test]
    fn sample_follows_profile() {
        assert_eq!(opts(&[], &[]).sample(), SampleConfig::full());
        assert_eq!(
            opts(&["--profile", "fast"], &[]).sample(),
            SampleConfig::fast()
        );
    }
}

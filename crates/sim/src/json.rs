//! A minimal, dependency-free JSON emitter.
//!
//! The build container has no network access, so `serde_json` is not
//! available; the report serializer only needs to *write* JSON, and only a
//! small subset: objects, arrays, strings, integers and floats. Output is
//! deterministic (insertion order, fixed indentation, shortest round-trip
//! float formatting), which the parallel-vs-serial determinism guard in
//! [`crate::runner`] relies on.

use std::fmt::Write as _;

/// Streaming JSON writer with two-space pretty printing.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has a first element.
    stack: Vec<bool>,
    /// Set between `key()` and the value that follows it.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the serialized document.
    ///
    /// # Panics
    ///
    /// Panics if containers are still open (serializer bug, not input data).
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unbalanced JSON containers");
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Positions the cursor for the next element (comma/indent bookkeeping).
    fn element(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
            self.newline_indent();
        }
    }

    fn close(&mut self, delim: char, was_empty: bool) {
        self.stack.pop().expect("close without open");
        if !was_empty {
            self.newline_indent();
        }
        self.out.push(delim);
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.element();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let was_empty = !self.stack.last().copied().unwrap_or(false);
        self.close('}', was_empty);
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.element();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let was_empty = !self.stack.last().copied().unwrap_or(false);
        self.close(']', was_empty);
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.element();
        self.write_escaped(k);
        self.out.push_str(": ");
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.element();
        self.write_escaped(v);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.element();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value; non-finite values serialize as `null`.
    pub fn f64(&mut self, v: f64) {
        self.element();
        if v.is_finite() {
            // Shortest round-trip representation; deterministic for a given
            // bit pattern, which the serial-vs-parallel guard depends on.
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Convenience: `"k": "v"`.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `"k": 42`.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `"k": 0.5`.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", "fig5");
        w.key("records");
        w.begin_array();
        w.begin_object();
        w.field_f64("ipc", 1.5);
        w.field_u64("cycles", 42);
        w.end_object();
        w.end_array();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig5\",\n  \"records\": [\n    {\n      \"ipc\": 1.5,\n      \"cycles\": 42\n    }\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn escapes_control_characters() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(0.25);
        w.end_array();
        assert_eq!(w.finish(), "[\n  null,\n  null,\n  0.25\n]");
    }
}

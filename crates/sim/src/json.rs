//! A minimal, dependency-free JSON emitter and parser.
//!
//! The build container has no network access, so `serde_json` is not
//! available; the report serializer only needs to *write* JSON, and only a
//! small subset: objects, arrays, strings, integers and floats. Output is
//! deterministic (insertion order, fixed indentation, shortest round-trip
//! float formatting), which the parallel-vs-serial determinism guard in
//! [`crate::runner`] relies on.
//!
//! The matching [`parse_json`] reader exists for the bench-trajectory
//! regression tooling (`compare_trajectory`), which must re-load
//! `BENCH_<id>.json` artifacts and compare them against checked-in
//! baselines.

use std::fmt;
use std::fmt::Write as _;

/// Streaming JSON writer with two-space pretty printing (or single-line
/// compact output for line-oriented files such as shard manifests).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has a first element.
    stack: Vec<bool>,
    /// Set between `key()` and the value that follows it.
    pending_key: bool,
    /// Suppress all newlines and indentation (one document per line).
    compact: bool,
}

impl JsonWriter {
    /// Creates an empty pretty-printing writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that emits the whole document on a single line —
    /// the format of shard-manifest (`MANIFEST_*.jsonl`) entries, where one
    /// line is one appended record.
    pub fn compact() -> Self {
        JsonWriter {
            compact: true,
            ..Self::default()
        }
    }

    /// Consumes the writer, returning the serialized document.
    ///
    /// # Panics
    ///
    /// Panics if containers are still open (serializer bug, not input data).
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unbalanced JSON containers");
        self.out
    }

    fn newline_indent(&mut self) {
        if self.compact {
            return;
        }
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Positions the cursor for the next element (comma/indent bookkeeping).
    fn element(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
            self.newline_indent();
        }
    }

    fn close(&mut self, delim: char, was_empty: bool) {
        self.stack.pop().expect("close without open");
        if !was_empty {
            self.newline_indent();
        }
        self.out.push(delim);
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.element();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let was_empty = !self.stack.last().copied().unwrap_or(false);
        self.close('}', was_empty);
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.element();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let was_empty = !self.stack.last().copied().unwrap_or(false);
        self.close(']', was_empty);
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.element();
        self.write_escaped(k);
        self.out.push_str(": ");
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.element();
        self.write_escaped(v);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.element();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value; non-finite values serialize as `null`.
    pub fn f64(&mut self, v: f64) {
        self.element();
        if v.is_finite() {
            // Shortest round-trip representation; deterministic for a given
            // bit pattern, which the serial-vs-parallel guard depends on.
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Convenience: `"k": "v"`.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `"k": 42`.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `"k": 0.5`.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// A parsed JSON value.
///
/// Objects preserve key order (the writer's order is deterministic, and
/// trajectory comparison reports drift in a stable order because of it).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced by the writer for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; parsed as `f64`, which losslessly covers every value the
    /// report writer emits (counters fit in 53 bits at any realistic scale).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document (the subset the writer emits, plus booleans).
///
/// # Errors
///
/// Returns [`JsonParseError`] on malformed input or trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonParseError {
            at: pos,
            message: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8, message: &'static str) -> Result<(), JsonParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonParseError { at: *pos, message })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonParseError {
            at: *pos,
            message: "unexpected end of input",
        }),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(
    b: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: JsonValue,
) -> Result<JsonValue, JsonParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonParseError {
            at: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(b, pos, b'{', "expected '{'")?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':', "expected ':' after object key")?;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => {
                return Err(JsonParseError {
                    at: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(b, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => {
                return Err(JsonParseError {
                    at: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(b, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(JsonParseError {
                    at: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonParseError {
                                at: *pos,
                                message: "invalid \\u escape",
                            })?;
                        // Surrogate pairs never appear in report output;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonParseError {
                            at: *pos,
                            message: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let start = *pos;
                let s = std::str::from_utf8(&b[start..]).map_err(|_| JsonParseError {
                    at: start,
                    message: "invalid UTF-8",
                })?;
                let c = s.chars().next().expect("nonempty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| JsonParseError {
            at: start,
            message: "invalid number",
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", "fig5");
        w.key("records");
        w.begin_array();
        w.begin_object();
        w.field_f64("ipc", 1.5);
        w.field_u64("cycles", 42);
        w.end_object();
        w.end_array();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"id\": \"fig5\",\n  \"records\": [\n    {\n      \"ipc\": 1.5,\n      \"cycles\": 42\n    }\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn compact_writer_stays_on_one_line() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_str("id", "fig5");
        w.key("records");
        w.begin_array();
        w.u64(1);
        w.f64(0.5);
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert!(!s.contains('\n'), "compact output must be single-line: {s}");
        let v = parse_json(&s).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("fig5"));
    }

    #[test]
    fn escapes_control_characters() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.f64(0.25);
        w.end_array();
        assert_eq!(w.finish(), "[\n  null,\n  null,\n  0.25\n]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", "fig5");
        w.field_f64("ipc", 1.5);
        w.field_u64("cycles", 42);
        w.key("records");
        w.begin_array();
        w.begin_object();
        w.field_str("name", "a\"b\\c\n");
        w.field_f64("nanish", f64::NAN);
        w.end_object();
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("fig5"));
        assert_eq!(v.get("ipc").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("cycles").and_then(JsonValue::as_f64), Some(42.0));
        let records = match v.get("records") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("records must be an array, got {other:?}"),
        };
        assert_eq!(
            records[0].get("name").and_then(JsonValue::as_str),
            Some("a\"b\\c\n")
        );
        assert_eq!(records[0].get("nanish"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_handles_literals_and_numbers() {
        let v = parse_json(" [true, false, null, -2.5e3, 0] ").unwrap();
        assert_eq!(
            v,
            JsonValue::Array(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
                JsonValue::Num(-2500.0),
                JsonValue::Num(0.0),
            ])
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            parse_json("\"a\\u0041\"").unwrap(),
            JsonValue::Str("aA".to_string())
        );
    }
}

//! Deterministic partitioning of a grid into independently runnable shards.
//!
//! A [`ShardSpec`] names one of `N` disjoint slices of a grid's cell index
//! space. The partition is round-robin (`cell_index % N`), so heterogeneous
//! cells — e.g. `table3`'s widened em3d windows next to ordinary cells —
//! spread evenly across shards instead of one shard inheriting a contiguous
//! run of expensive cells. Because cell measurement is a pure function of
//! (grid, cell), any partition of a grid merges back into a report that is
//! byte-identical to a single-process run (see [`crate::merge_manifests`]).

use std::fmt;
use std::str::FromStr;

/// One shard of an `N`-way partition of a grid's cells (1-based).
///
/// Construct programmatically with [`ShardSpec::new`] or from the
/// `REUNION_SHARD=i/N` environment override with [`ShardSpec::from_env`]:
///
/// ```
/// use reunion_sim::ShardSpec;
///
/// let shard: ShardSpec = "2/3".parse().unwrap();
/// assert_eq!(shard.index(), 2);
/// assert_eq!(shard.count(), 3);
/// // Round-robin: shard 2 of 3 owns cells 1, 4, 7, ...
/// assert_eq!(shard.cell_indices(8), vec![1, 4, 7]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Shard `index` of `count` (both 1-based; `index <= count`).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index` is outside `1..=count`.
    pub fn new(index: usize, count: usize) -> Self {
        Self::try_new(index, count).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`new`](Self::new) — how untrusted sources (manifest
    /// headers, environment strings) construct shard positions.
    pub fn try_new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if !(1..=count).contains(&index) {
            return Err(format!("shard index {index} outside 1..={count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// The trivial 1/1 "partition": every cell in one shard.
    pub fn single() -> Self {
        ShardSpec { index: 1, count: 1 }
    }

    /// Whether this is the trivial single-shard partition.
    pub fn is_single(&self) -> bool {
        self.count == 1
    }

    /// This shard's 1-based position within the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Reads the `REUNION_SHARD=i/N` environment override.
    ///
    /// Returns `Ok(None)` when the variable is unset, `Ok(Some(spec))` for a
    /// well-formed value, and an error message for a malformed one (the
    /// bench harness treats that as a usage error rather than silently
    /// running the full grid).
    pub fn from_env() -> Result<Option<ShardSpec>, String> {
        match std::env::var("REUNION_SHARD") {
            Err(_) => Ok(None),
            Ok(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("REUNION_SHARD: {e}")),
        }
    }

    /// Whether this shard owns the cell at `cell_index` (round-robin).
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index - 1
    }

    /// The cell indices this shard owns, out of `total` grid cells,
    /// in ascending order.
    pub fn cell_indices(&self, total: usize) -> Vec<usize> {
        (0..total).filter(|&i| self.owns(i)).collect()
    }

    /// Canonical manifest file name for this shard of grid `id`:
    /// `MANIFEST_<id>.shard<i>of<N>.jsonl`.
    pub fn manifest_file_name(&self, id: &str) -> String {
        format!("MANIFEST_{id}.shard{}of{}.jsonl", self.index, self.count)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    /// Parses `"i/N"` with `1 <= i <= N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("expected i/N (e.g. 1/2), got {s:?}"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        ShardSpec::try_new(index, count).map_err(|e| format!("{e} in {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partition_is_disjoint_and_complete() {
        let total = 23;
        for count in [1usize, 2, 3, 8] {
            let mut seen = vec![0u32; total];
            for index in 1..=count {
                for i in ShardSpec::new(index, count).cell_indices(total) {
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "{count}-way partition must cover every cell exactly once"
            );
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["1/1", "2/3", "8/8"] {
            let spec: ShardSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("".parse::<ShardSpec>().is_err());
        assert!("3".parse::<ShardSpec>().is_err());
        assert!("0/2".parse::<ShardSpec>().is_err());
        assert!("3/2".parse::<ShardSpec>().is_err());
        assert!("1/0".parse::<ShardSpec>().is_err());
        assert!("a/b".parse::<ShardSpec>().is_err());
    }

    #[test]
    fn manifest_names_are_unique_per_shard() {
        let a = ShardSpec::new(1, 2).manifest_file_name("fig5");
        let b = ShardSpec::new(2, 2).manifest_file_name("fig5");
        assert_ne!(a, b);
        assert!(a.starts_with("MANIFEST_fig5.shard"));
    }
}

//! Experiment-runner subsystem: declarative grids, parallel/sharded
//! execution, resumable manifests, structured reports.
//!
//! The paper's evaluation is a pile of cartesian products — every figure
//! and table sweeps (workload × execution mode × one or two configuration
//! knobs) and aggregates the results. This crate factors that shape out of
//! the individual experiment binaries:
//!
//! * [`ExperimentGrid`] — a *declarative* description of one experiment:
//!   the workload/mode/patch axes, the base [`SystemConfig`] they override,
//!   the sampling profile (with optional per-workload overrides), and what
//!   to measure per cell ([`Metric`]).
//! * [`ConfigPatch`] — a labeled sparse override (comparison latency,
//!   phantom strength, TLB model, consistency, fingerprint interval, …).
//! * [`Runner`] — executes cells across OS threads, pulling work from a
//!   work-stealing [`CellQueue`] so heterogeneous cells don't straggle.
//!   `REUNION_SERIAL=1` forces the single-threaded fallback and
//!   `REUNION_THREADS=<n>` caps the workers.
//! * [`RunOptions`] — one typed resolution of the run surface every
//!   experiment driver shares (profile, engine, serial/threads, shard,
//!   observability): command-line flags with `REUNION_*` environment
//!   fallbacks, flags winning, unrecognized arguments handed back to the
//!   caller.
//! * [`ShardSpec`] / [`ShardManifest`] / [`merge_manifests`] — sharded,
//!   resumable execution: `REUNION_SHARD=i/N` (or the programmatic
//!   [`ShardSpec`] API) selects a deterministic round-robin slice of the
//!   grid, [`Runner::run_shard`] streams each finished cell to a crash-safe
//!   manifest so an interrupted run resumes instead of restarting, and
//!   merging a complete partition reproduces the single-process report
//!   byte for byte. [`measure_cell`] (one cell at a time) and
//!   [`ShardProgress`] / [`manifest_progress_from_text`] (manifest-tail
//!   progress probes) are the stable surface external drivers — the
//!   `reunion-dispatch` host-pool dispatcher and its workers — build on.
//! * [`ExperimentReport`] / [`RunRecord`] — results in grid enumeration
//!   order with lookup and aggregation helpers, plus a deterministic JSON
//!   serializer; [`ExperimentReport::write_json_default`] emits the
//!   `BENCH_<id>.json` trajectory artifact the benchmarks are tracked by.
//!
//! Determinism is a hard invariant: a parallel run, a serial run, and any
//! `N`-way sharded-then-merged run of the same grid produce
//! **byte-identical** JSON (guarded by tests in [`runner`](crate::Runner)
//! and the `sharding` integration suite). This is what makes both the
//! N-core speed-up and the N-machine fan-out free: nothing about
//! scheduling or partitioning leaks into results.
//!
//! # Examples
//!
//! ```
//! use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
//! use reunion_sim::{ConfigPatch, ExperimentGrid, Runner};
//! use reunion_workloads::Workload;
//!
//! // Figure-6-shaped sweep, shrunk to doc-test scale.
//! let grid = ExperimentGrid::builder("doc", "latency sweep")
//!     .base(SystemConfig::small_test)
//!     .sample(SampleConfig::quick())
//!     .workloads(vec![Workload::by_name("sparse").unwrap()])
//!     .modes(&[ExecutionMode::Reunion])
//!     .patches(vec![
//!         ConfigPatch::new("lat=0").latency(0),
//!         ConfigPatch::new("lat=40").latency(40),
//!     ])
//!     .build();
//! let report = Runner::from_env().run(&grid);
//! let fast = report.get("sparse", ExecutionMode::Reunion, "lat=0").unwrap();
//! assert!(fast.normalized_ipc().unwrap() > 0.0);
//! ```
//!
//! Sharded execution of the same grid (two "machines" here, one process):
//!
//! ```
//! use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
//! use reunion_sim::{merge_manifests, ExperimentGrid, Runner, ShardSpec};
//! use reunion_workloads::Workload;
//!
//! let grid = ExperimentGrid::builder("doc_shard", "sharded run")
//!     .base(SystemConfig::small_test)
//!     .sample(SampleConfig::quick())
//!     .workloads(vec![Workload::by_name("sparse").unwrap()])
//!     .modes(&[ExecutionMode::NonRedundant, ExecutionMode::Reunion])
//!     .build();
//! let dir = std::env::temp_dir().join(format!("reunion-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let a = Runner::serial().run_shard(&grid, ShardSpec::new(1, 2), &dir).unwrap();
//! let b = Runner::serial().run_shard(&grid, ShardSpec::new(2, 2), &dir).unwrap();
//! let merged = merge_manifests(&[a.manifest_path, b.manifest_path]).unwrap();
//! assert_eq!(merged.to_json(), Runner::serial().run(&grid).to_json());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`SystemConfig`]: reunion_core::SystemConfig

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod grid;
mod json;
mod manifest;
mod merge;
mod options;
mod patch;
mod report;
mod runner;
mod scheduler;
mod shard;

pub use grid::{Cell, ExperimentGrid, GridBuilder, Metric};
pub use json::{parse_json, JsonParseError, JsonValue, JsonWriter};
pub use manifest::{
    manifest_progress, manifest_progress_from_text, read_manifest, ManifestHeader, ShardManifest,
    ShardProgress,
};
pub use merge::{find_manifests, merge_manifests, MergeError};
pub use options::{RunOptions, RUN_OPTIONS_USAGE};
pub use patch::ConfigPatch;
pub use report::{
    out_dir, ExperimentReport, MeasureSummary, NormalizedSummary, Outcome, RunRecord, StaticSummary,
};
pub use runner::{env_flag, measure_cell, Runner, ShardRunOutcome};
pub use scheduler::{cell_cost, CellQueue};
pub use shard::ShardSpec;

//! Experiment-runner subsystem: declarative grids, parallel execution,
//! structured reports.
//!
//! The paper's evaluation is a pile of cartesian products — every figure
//! and table sweeps (workload × execution mode × one or two configuration
//! knobs) and aggregates the results. This crate factors that shape out of
//! the individual experiment binaries:
//!
//! * [`ExperimentGrid`] — a *declarative* description of one experiment:
//!   the workload/mode/patch axes, the base [`SystemConfig`] they override,
//!   the sampling profile, and what to measure per cell ([`Metric`]).
//! * [`ConfigPatch`] — a labeled sparse override (comparison latency,
//!   phantom strength, TLB model, consistency, fingerprint interval, …).
//! * [`Runner`] — executes cells across OS threads. Each cell simulates an
//!   independent, fully-seeded `CmpSystem` (or matched pair), so execution
//!   order cannot affect results; `REUNION_SERIAL=1` forces the
//!   single-threaded fallback and `REUNION_THREADS=<n>` caps the workers.
//! * [`ExperimentReport`] / [`RunRecord`] — results in grid enumeration
//!   order with lookup and aggregation helpers, plus a deterministic JSON
//!   serializer; [`ExperimentReport::write_json_default`] emits the
//!   `BENCH_<id>.json` trajectory artifact the benchmarks are tracked by.
//!
//! Determinism is a hard invariant: a parallel run and a serial run of the
//! same grid produce **byte-identical** JSON (guarded by tests in
//! [`runner`](crate::Runner)). This is what makes the N-core speed-up free:
//! nothing about scheduling leaks into results.
//!
//! # Examples
//!
//! ```
//! use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
//! use reunion_sim::{ConfigPatch, ExperimentGrid, Runner};
//! use reunion_workloads::Workload;
//!
//! // Figure-6-shaped sweep, shrunk to doc-test scale.
//! let grid = ExperimentGrid::builder("doc", "latency sweep")
//!     .base(SystemConfig::small_test)
//!     .sample(SampleConfig::quick())
//!     .workloads(vec![Workload::by_name("sparse").unwrap()])
//!     .modes(&[ExecutionMode::Reunion])
//!     .patches(vec![
//!         ConfigPatch::new("lat=0").latency(0),
//!         ConfigPatch::new("lat=40").latency(40),
//!     ])
//!     .build();
//! let report = Runner::from_env().run(&grid);
//! let fast = report.get("sparse", ExecutionMode::Reunion, "lat=0").unwrap();
//! assert!(fast.normalized_ipc().unwrap() > 0.0);
//! ```
//!
//! [`SystemConfig`]: reunion_core::SystemConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod json;
mod patch;
mod report;
mod runner;

pub use grid::{Cell, ExperimentGrid, GridBuilder, Metric};
pub use json::{parse_json, JsonParseError, JsonValue, JsonWriter};
pub use patch::ConfigPatch;
pub use report::{
    ExperimentReport, MeasureSummary, NormalizedSummary, Outcome, RunRecord, StaticSummary,
};
pub use runner::{env_flag, Runner};

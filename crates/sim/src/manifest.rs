//! Incremental shard manifests: the crash-safe unit of sharded execution.
//!
//! A manifest is an append-only JSONL file (`MANIFEST_<id>.shard<i>of<N>.jsonl`)
//! holding one header line describing the (grid, shard, sampling) contract,
//! followed by one compact line per completed cell. The runner appends a
//! line the moment a cell finishes, so a killed run loses at most the cell
//! in flight: reopening the manifest with the same contract resumes from
//! the recorded cells instead of restarting. [`crate::merge_manifests`]
//! combines a complete set of manifests back into an
//! [`ExperimentReport`](crate::ExperimentReport) that is byte-identical to
//! a single-process run.
//!
//! A half-written trailing line (the kill landed mid-append) is detected
//! and discarded on resume; a header that no longer matches — different
//! grid, shard arithmetic, or sampling profile — invalidates the file,
//! which is truncated and restarted rather than silently merged.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use reunion_core::{ObsConfig, ObsReport, SampleConfig};

use crate::json::{parse_json, JsonValue, JsonWriter};
use crate::report::{
    sample_from_json, sample_override_from_json, str_field, u64_field, write_sample_json,
    write_sample_override_json, Outcome, RunRecord,
};
use crate::shard::ShardSpec;

/// The contract line at the top of every shard manifest.
///
/// Two manifests can only be merged (and an existing manifest only
/// resumed) when their headers agree on everything except the shard
/// position itself.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestHeader {
    /// Grid identifier (`BENCH_<id>.json`).
    pub id: String,
    /// Human-readable grid caption.
    pub caption: String,
    /// Which shard of which partition this manifest records.
    pub shard: ShardSpec,
    /// Total number of cells in the *full* grid (not this shard).
    pub cells: usize,
    /// The grid-wide sampling profile.
    pub sample: SampleConfig,
    /// Per-workload sampling overrides, in grid declaration order.
    pub sample_overrides: Vec<(String, SampleConfig)>,
    /// Observability configuration the shard ran under. Part of the merge
    /// contract: records carrying `observability` blocks must not merge
    /// with records that lack them. Serialized only when enabled, so
    /// pre-observability manifests parse (and re-serialize) unchanged.
    pub obs: ObsConfig,
}

impl ManifestHeader {
    /// Whether `other` records a shard of the same experiment: everything
    /// must match except the shard index (the partition width must agree).
    pub fn same_experiment(&self, other: &ManifestHeader) -> bool {
        self.id == other.id
            && self.caption == other.caption
            && self.shard.count() == other.shard.count()
            && self.cells == other.cells
            && self.sample == other.sample
            && self.sample_overrides == other.sample_overrides
            && self.obs.enabled == other.obs.enabled
            // The trace cap is meaningless while disabled (and is not
            // serialized then), so it only contracts when enabled.
            && (!self.obs.enabled || self.obs.trace_cap == other.obs.trace_cap)
    }

    fn to_line(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_str("kind", "reunion-shard-manifest");
        w.field_u64("version", 1);
        w.field_str("id", &self.id);
        w.field_str("caption", &self.caption);
        w.field_u64("shard", self.shard.index() as u64);
        w.field_u64("of", self.shard.count() as u64);
        w.field_u64("cells", self.cells as u64);
        w.key("sample");
        write_sample_json(&mut w, &self.sample);
        w.key("sample_overrides");
        w.begin_array();
        for (workload, sample) in &self.sample_overrides {
            write_sample_override_json(&mut w, workload, sample);
        }
        w.end_array();
        if self.obs.enabled {
            w.field_u64("obs", 1);
            w.field_u64("trace_cap", self.obs.trace_cap as u64);
        }
        w.end_object();
        w.finish()
    }

    pub(crate) fn from_line(line: &str) -> Result<Self, String> {
        let prefix = |e: String| format!("manifest header: {e}");
        let v = parse_json(line).map_err(|e| prefix(e.to_string()))?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("reunion-shard-manifest") {
            return Err("not a reunion shard manifest".to_string());
        }
        let mut sample_overrides = Vec::new();
        if let Some(JsonValue::Array(items)) = v.get("sample_overrides") {
            for item in items {
                sample_overrides.push(sample_override_from_json(item).map_err(prefix)?);
            }
        }
        // The validated accessors (and ShardSpec::try_new) keep a corrupt
        // header an Err, never a panic: one bad file must degrade into the
        // caller's per-file diagnostics, not abort a merge.
        let shard = ShardSpec::try_new(
            u64_field(&v, "shard").map_err(prefix)? as usize,
            u64_field(&v, "of").map_err(prefix)? as usize,
        )
        .map_err(prefix)?;
        // Observability fields are written only when enabled; their absence
        // (every pre-observability manifest) reads back as the default-off
        // configuration.
        let obs = ObsConfig {
            enabled: match v.get("obs") {
                Some(_) => u64_field(&v, "obs").map_err(prefix)? == 1,
                None => false,
            },
            trace_cap: match v.get("trace_cap") {
                Some(_) => u64_field(&v, "trace_cap").map_err(prefix)? as usize,
                None => ObsConfig::default().trace_cap,
            },
        };
        Ok(ManifestHeader {
            id: str_field(&v, "id").map_err(prefix)?.to_string(),
            caption: str_field(&v, "caption").map_err(prefix)?.to_string(),
            shard,
            cells: u64_field(&v, "cells").map_err(prefix)? as usize,
            sample: sample_from_json(v.get("sample").ok_or("manifest header: missing sample")?)?,
            sample_overrides,
            obs,
        })
    }
}

/// An open, appendable shard manifest.
///
/// Created (or resumed) by [`ShardManifest::create_or_resume`]; the runner
/// calls [`append`](ShardManifest::append) once per completed cell.
#[derive(Debug)]
pub struct ShardManifest {
    path: PathBuf,
    file: File,
    header: ManifestHeader,
    completed: BTreeMap<usize, RunRecord>,
}

impl ShardManifest {
    /// Opens the canonical manifest for `header` under `dir`, resuming a
    /// compatible existing file or starting a fresh one.
    ///
    /// An existing file is resumed only when its header describes the same
    /// experiment *and* shard position; otherwise it is stale (a different
    /// grid, profile, or partition wrote it) and is truncated. A torn final
    /// line from a killed run is discarded.
    pub fn create_or_resume(dir: &Path, header: ManifestHeader) -> io::Result<ShardManifest> {
        let path = dir.join(header.shard.manifest_file_name(&header.id));
        let completed = match std::fs::read_to_string(&path) {
            Ok(text) => match parse_manifest_text(&text) {
                Ok((existing, records))
                    if existing.same_experiment(&header) && existing.shard == header.shard =>
                {
                    records
                }
                _ => BTreeMap::new(),
            },
            Err(_) => BTreeMap::new(),
        };
        // Rewrite rather than blind-append: this truncates stale files and
        // drops any torn trailing line in one pass, leaving a manifest that
        // is exactly header + the valid completed records. The rewrite goes
        // through a temp file and an atomic rename — truncating the real
        // manifest in place would open a window where a second kill loses
        // every completed record, not just the cells in flight.
        let mut text = header.to_line();
        text.push('\n');
        for (index, record) in &completed {
            text.push_str(&entry_line(*index, record));
            text.push('\n');
        }
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(ShardManifest {
            path,
            file,
            header,
            completed,
        })
    }

    /// The manifest's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The contract this manifest was opened with.
    pub fn header(&self) -> &ManifestHeader {
        &self.header
    }

    /// Records recovered from a previous interrupted run (plus any appended
    /// since opening), keyed by cell index.
    pub fn completed(&self) -> &BTreeMap<usize, RunRecord> {
        &self.completed
    }

    /// Appends one completed cell and fsyncs it, making the record durable
    /// (host crash included) before the runner moves on. Cells take seconds
    /// to minutes to simulate, so one `fdatasync` per cell is noise.
    pub fn append(&mut self, index: usize, record: &RunRecord) -> io::Result<()> {
        let mut line = entry_line(index, record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.completed.insert(index, record.clone());
        Ok(())
    }
}

fn entry_line(index: usize, record: &RunRecord) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_u64("index", index as u64);
    w.key("record");
    record.write_json(&mut w);
    w.end_object();
    w.finish()
}

fn parse_manifest_text(text: &str) -> Result<(ManifestHeader, BTreeMap<usize, RunRecord>), String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty manifest")?;
    let header = ManifestHeader::from_line(header_line)?;
    let mut records = BTreeMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        // A torn trailing line (killed mid-append) parses as garbage; it is
        // the price of crash-safety, not an error — stop there and keep the
        // prefix. An out-of-range or repeated cell index is corruption of
        // the same kind: everything from the first anomaly on is dropped,
        // so recovered records are always unique and within the grid (the
        // resumed runner re-executes whatever got dropped).
        let Ok(v) = parse_json(line) else { break };
        let Ok(index) = u64_field(&v, "index") else {
            break;
        };
        let index = index as usize;
        if index >= header.cells || !header.shard.owns(index) || records.contains_key(&index) {
            break;
        }
        let Some(record_json) = v.get("record") else {
            break;
        };
        let Ok(record) = RunRecord::from_json(record_json) else {
            break;
        };
        records.insert(index, record);
    }
    Ok((header, records))
}

/// Reads a complete manifest file: its header and all validly recorded
/// cells (a torn trailing line is ignored, exactly as resume does).
///
/// # Errors
///
/// Returns a message when the file cannot be read or its header is not a
/// shard-manifest header.
pub fn read_manifest(path: &Path) -> Result<(ManifestHeader, BTreeMap<usize, RunRecord>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_manifest_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// How far one shard has progressed, read from its manifest alone.
///
/// The manifest header records the full experiment contract (grid id,
/// shard arithmetic, total cell count), so an external monitor — the
/// `reunion-dispatch` driver tailing worker manifests over whatever
/// transport reaches the host — can compute ownership and completion
/// without ever seeing the grid itself.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardProgress {
    /// The experiment contract the manifest was opened with.
    pub header: ManifestHeader,
    /// Number of grid cells this shard owns.
    pub owned: usize,
    /// Validly recorded (completed) cells so far.
    pub completed: usize,
    /// Merged observability summary over every completed cell's recorded
    /// `observability` blocks (model, baseline and raw measurements alike).
    /// `Some` exactly when the shard ran with observability enabled — the
    /// dispatcher streams it while the shard is still running.
    pub obs: Option<ObsReport>,
}

impl ShardProgress {
    /// Whether every owned cell has been recorded.
    pub fn is_complete(&self) -> bool {
        self.completed >= self.owned
    }

    /// Owned cells not yet recorded.
    pub fn remaining(&self) -> usize {
        self.owned.saturating_sub(self.completed)
    }
}

/// Progress of the shard whose manifest text is `text` (the remote-tail
/// form: the dispatcher reads manifest bytes over its transport and parses
/// them here). A torn trailing line counts as not-yet-completed, exactly
/// as resume treats it.
///
/// # Errors
///
/// Returns a message when the first line is not a shard-manifest header.
pub fn manifest_progress_from_text(text: &str) -> Result<ShardProgress, String> {
    let (header, records) = parse_manifest_text(text)?;
    let owned = header.shard.cell_indices(header.cells).len();
    let obs = header.obs.enabled.then(|| {
        let mut merged = ObsReport::new();
        for record in records.values() {
            for block in record_obs(record) {
                merged.merge(block);
            }
        }
        merged
    });
    Ok(ShardProgress {
        owned,
        completed: records.len(),
        header,
        obs,
    })
}

/// Every `observability` block a record carries (model and baseline for a
/// normalized cell, the single measurement for a raw cell, none for a
/// static cell).
fn record_obs(record: &RunRecord) -> impl Iterator<Item = &ObsReport> {
    let (a, b) = match &record.outcome {
        Outcome::Normalized(n) => (Some(&n.model), Some(&n.baseline)),
        Outcome::Raw(m) => (Some(m.as_ref()), None),
        Outcome::Static(_) => (None, None),
    };
    a.into_iter().chain(b).filter_map(|m| m.obs.as_ref())
}

/// Progress of the shard whose manifest lives at `path` (the local-file
/// form of [`manifest_progress_from_text`]).
///
/// # Errors
///
/// Returns a message when the file cannot be read or parsed.
pub fn manifest_progress(path: &Path) -> Result<ShardProgress, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    manifest_progress_from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(shard: ShardSpec) -> ManifestHeader {
        ManifestHeader {
            id: "t".to_string(),
            caption: "test grid".to_string(),
            shard,
            cells: 6,
            sample: SampleConfig::quick(),
            sample_overrides: vec![(
                "em3d".to_string(),
                SampleConfig {
                    warmup: 1,
                    window: 2,
                    windows: 3,
                },
            )],
            obs: ObsConfig::default(),
        }
    }

    #[test]
    fn header_line_round_trips() {
        let h = header(ShardSpec::new(2, 3));
        let parsed = ManifestHeader::from_line(&h.to_line()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn same_experiment_ignores_shard_index_only() {
        let a = header(ShardSpec::new(1, 3));
        let b = header(ShardSpec::new(2, 3));
        assert!(a.same_experiment(&b));
        let narrower = header(ShardSpec::new(1, 2));
        assert!(!a.same_experiment(&narrower));
        let mut other = header(ShardSpec::new(1, 3));
        other.sample.windows += 1;
        assert!(!a.same_experiment(&other));
    }

    #[test]
    fn rejects_non_manifest_header() {
        assert!(ManifestHeader::from_line("{\"kind\": \"other\"}").is_err());
        assert!(ManifestHeader::from_line("not json").is_err());
    }

    /// A header that is valid JSON but carries impossible shard arithmetic
    /// must surface as a per-file error, never a panic — one corrupt
    /// manifest in a directory cannot be allowed to abort a whole merge.
    #[test]
    fn corrupt_header_fields_are_errors_not_panics() {
        let good = header(ShardSpec::new(2, 3)).to_line();
        for (from, to) in [
            ("\"shard\": 2", "\"shard\": 0"),
            ("\"shard\": 2", "\"shard\": 7"),
            ("\"shard\": 2", "\"shard\": -1"),
            ("\"of\": 3", "\"of\": 0"),
            ("\"cells\": 6", "\"cells\": 1.5"),
        ] {
            assert!(good.contains(from), "fixture drifted: {from} not in header");
            let corrupt = good.replace(from, to);
            assert!(
                ManifestHeader::from_line(&corrupt).is_err(),
                "{to} must be rejected"
            );
        }
    }

    /// A Table-2-shaped (static) record line for cell `index` — the
    /// cheapest record that round-trips through `RunRecord::from_json`.
    fn record_line(index: usize) -> String {
        format!(
            "{{\"index\": {index}, \"record\": {{\"workload\": \"sparse\", \
             \"class\": \"Scientific\", \"mode\": \"reunion\", \"patch\": \"base\", \
             \"private_bytes\": 1, \"shared_bytes\": 1, \"locks\": 1, \
             \"critical_section_len\": 1, \"itlb_miss_per_million\": 1, \
             \"static_len\": 1}}}}"
        )
    }

    /// The progress probe mirrors resume semantics: whole records count,
    /// a torn trailing line does not, and ownership arithmetic comes from
    /// the header alone.
    #[test]
    fn progress_counts_whole_records_only() {
        // Shard 1/3 of 6 cells owns indices 0 and 3.
        let head = header(ShardSpec::new(1, 3)).to_line();
        let empty = format!("{head}\n");
        let p = manifest_progress_from_text(&empty).unwrap();
        assert_eq!((p.owned, p.completed), (2, 0));
        assert!(!p.is_complete());
        assert_eq!(p.remaining(), 2);

        let one = format!("{head}\n{}\n", record_line(0));
        let torn = format!("{one}{}", &record_line(3)[..20]);
        let p = manifest_progress_from_text(&torn).unwrap();
        assert_eq!(p.completed, 1, "torn trailing line must not count");

        let full = format!("{head}\n{}\n{}\n", record_line(0), record_line(3));
        let p = manifest_progress_from_text(&full).unwrap();
        assert!(p.is_complete());

        assert!(manifest_progress_from_text("not a manifest").is_err());
    }

    /// Record recovery stops at the first anomalous line — out-of-range,
    /// unowned, or repeated cell index — keeping only the trustworthy
    /// prefix (which the resumed runner then completes).
    #[test]
    fn anomalous_record_lines_truncate_recovery() {
        // Shard 1/3 of 6 cells owns indices 0 and 3.
        let head = header(ShardSpec::new(1, 3)).to_line();
        let join = |lines: &[String]| format!("{head}\n{}\n", lines.join("\n"));

        let clean = join(&[record_line(0), record_line(3)]);
        let (_, records) = parse_manifest_text(&clean).unwrap();
        assert_eq!(records.len(), 2);

        for (label, lines) in [
            ("out of range", vec![record_line(0), record_line(9)]),
            ("unowned cell", vec![record_line(0), record_line(1)]),
            ("duplicate", vec![record_line(0), record_line(0)]),
        ] {
            let (_, records) = parse_manifest_text(&join(&lines)).unwrap();
            assert_eq!(records.len(), 1, "{label}: keep only the clean prefix");
            assert!(records.contains_key(&0), "{label}: cell 0 survives");
        }
    }
}

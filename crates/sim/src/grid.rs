//! Declarative experiment grids.

use reunion_core::{Engine, ExecutionMode, ObsConfig, SampleConfig, SystemConfig};
use reunion_workloads::Workload;

use crate::{ConfigPatch, RunOptions};

/// What each grid cell measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Metric {
    /// Matched-pair IPC normalized against the non-redundant baseline
    /// (two systems per cell; Figures 5–7).
    #[default]
    Normalized,
    /// A single-system measurement without a baseline (Table 3).
    Raw,
    /// Static workload parameters only — no simulation (Table 2).
    Static,
}

/// One point of the experiment grid: workload × mode × patch.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Position in the grid's deterministic enumeration order.
    pub index: usize,
    /// The workload to run.
    pub workload: Workload,
    /// The execution mode of the measured system.
    pub mode: ExecutionMode,
    /// Configuration overrides on top of the grid's base configuration.
    pub patch: ConfigPatch,
}

/// A declarative description of one experiment: the full cartesian product
/// of workloads × execution modes × configuration patches, plus how to
/// measure each cell.
///
/// Grids are *data*; execution happens in [`crate::Runner`], which may
/// evaluate cells on many OS threads. Cell enumeration order (workload-major,
/// then mode, then patch) is part of the grid's contract: reports list
/// records in exactly this order regardless of execution schedule.
///
/// # Examples
///
/// ```
/// use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
/// use reunion_sim::{ConfigPatch, ExperimentGrid};
/// use reunion_workloads::Workload;
///
/// let grid = ExperimentGrid::builder("demo", "latency sweep")
///     .base(SystemConfig::small_test)
///     .sample(SampleConfig::quick())
///     .workloads(vec![Workload::by_name("sparse").unwrap()])
///     .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
///     .patches([0u64, 10].iter().map(|&l| ConfigPatch::new(format!("lat={l}")).latency(l)).collect())
///     .build();
/// assert_eq!(grid.cells().len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentGrid {
    id: String,
    caption: String,
    metric: Metric,
    sample: SampleConfig,
    sample_overrides: Vec<(String, SampleConfig)>,
    base: fn(ExecutionMode) -> SystemConfig,
    engine: Engine,
    obs: ObsConfig,
    intracell: usize,
    dump_traces: bool,
    cells: Vec<Cell>,
}

impl ExperimentGrid {
    /// Starts building a grid; `id` names the JSON artifact
    /// (`BENCH_<id>.json`), `caption` is the human-readable title.
    pub fn builder(id: impl Into<String>, caption: impl Into<String>) -> GridBuilder {
        GridBuilder {
            id: id.into(),
            caption: caption.into(),
            metric: Metric::default(),
            sample: SampleConfig::default(),
            sample_overrides: Vec::new(),
            base: SystemConfig::table1,
            engine: Engine::default(),
            obs: ObsConfig::default(),
            intracell: 0,
            dump_traces: false,
            workloads: Vec::new(),
            modes: vec![ExecutionMode::Reunion],
            patches: vec![ConfigPatch::baseline()],
        }
    }

    /// The grid's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// What each cell measures.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The sampling profile shared by every cell (unless overridden per
    /// workload — see [`cell_sample`](Self::cell_sample)).
    pub fn sample(&self) -> &SampleConfig {
        &self.sample
    }

    /// Per-workload sampling overrides, in declaration order.
    pub fn sample_overrides(&self) -> &[(String, SampleConfig)] {
        &self.sample_overrides
    }

    /// The sampling profile one cell measures under: the workload's
    /// override if one was declared, the grid-wide profile otherwise.
    pub fn cell_sample(&self, cell: &Cell) -> &SampleConfig {
        self.sample_overrides
            .iter()
            .find(|(name, _)| name == cell.workload.name())
            .map(|(_, s)| s)
            .unwrap_or(&self.sample)
    }

    /// The base configuration constructor (patches apply on top of this).
    pub fn base(&self) -> fn(ExecutionMode) -> SystemConfig {
        self.base
    }

    /// The timing engine every cell simulates under (set by
    /// [`GridBuilder::run_options`]; default: [`Engine::default`]).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The observability configuration every cell simulates under (set by
    /// [`GridBuilder::run_options`]; default: off).
    pub fn observability(&self) -> &ObsConfig {
        &self.obs
    }

    /// Compute workers each cell's system ticks its pairs on (set by
    /// [`GridBuilder::run_options`]; default: 0 = in-place serial compute).
    /// Purely a scheduling choice — reports are byte-identical either way.
    pub fn intracell_threads(&self) -> usize {
        self.intracell
    }

    /// Whether the runner writes retained event traces to
    /// `TRACE_<id>_<cell>.jsonl` files. Only the command-line surface —
    /// [`GridBuilder::run_options`] with observability enabled — turns
    /// this on; a library caller enabling collection through
    /// [`GridBuilder::observability`] gets the in-memory trace and the
    /// report block without files appearing in the working directory.
    pub fn dumps_traces(&self) -> bool {
        self.dump_traces
    }

    /// All cells in deterministic enumeration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The fully-patched configuration for one cell: base, then the cell's
    /// patch, then the grid-wide engine/observability overlay (patches
    /// sweep model parameters; how the cell is *simulated and observed* is
    /// a property of the run, so the overlay is applied last and uniformly).
    pub fn cell_config(&self, cell: &Cell) -> SystemConfig {
        let mut cfg = (self.base)(cell.mode);
        cell.patch.apply(&mut cfg);
        cfg.engine = self.engine;
        cfg.obs = self.obs;
        cfg.intracell_threads = self.intracell;
        cfg
    }
}

/// Builder for [`ExperimentGrid`].
#[derive(Clone, Debug)]
pub struct GridBuilder {
    id: String,
    caption: String,
    metric: Metric,
    sample: SampleConfig,
    sample_overrides: Vec<(String, SampleConfig)>,
    base: fn(ExecutionMode) -> SystemConfig,
    engine: Engine,
    obs: ObsConfig,
    intracell: usize,
    dump_traces: bool,
    workloads: Vec<Workload>,
    modes: Vec<ExecutionMode>,
    patches: Vec<ConfigPatch>,
}

impl GridBuilder {
    /// Sets what each cell measures (default: [`Metric::Normalized`]).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the sampling profile (default: the paper's profile).
    pub fn sample(mut self, sample: SampleConfig) -> Self {
        self.sample = sample;
        self
    }

    /// Overrides the sampling profile for one workload's cells.
    ///
    /// Used where a workload's event rate is below the single-event
    /// resolution of the shared profile: `table3` widens em3d's measured
    /// window until one input-incoherence event resolves inside the
    /// paper's band. Overrides are part of the grid contract and are
    /// recorded in the report (and shard-manifest headers).
    pub fn sample_override(mut self, workload: impl Into<String>, sample: SampleConfig) -> Self {
        self.sample_overrides.push((workload.into(), sample));
        self
    }

    /// Sets the base configuration constructor (default:
    /// [`SystemConfig::table1`]).
    pub fn base(mut self, base: fn(ExecutionMode) -> SystemConfig) -> Self {
        self.base = base;
        self
    }

    /// Records the resolved run surface's per-system choices — timing
    /// engine and observability — as the grid-wide overlay applied to
    /// every cell's configuration (see
    /// [`cell_config`](ExperimentGrid::cell_config)).
    ///
    /// The experiment binaries call this with their
    /// [`RunOptions`] so `--engine` / `--obs` reach the simulated systems;
    /// the execution-scoped choices (profile, threads, shard) are consumed
    /// by the runner, not the grid. Enabling observability here — and only
    /// here — also opts the run into `TRACE_*.jsonl` file dumps (see
    /// [`ExperimentGrid::dumps_traces`]): trace files are part of the
    /// command-line artifact contract, not of in-memory collection.
    pub fn run_options(mut self, opts: &RunOptions) -> Self {
        self.engine = opts.engine;
        self.obs = opts.observability;
        self.intracell = opts.intracell.unwrap_or(0);
        self.dump_traces = opts.observability.enabled;
        self
    }

    /// Sets the timing engine overlay directly (default:
    /// [`Engine::default`]). [`run_options`](Self::run_options) is the
    /// usual entry point; this exists for embedders sweeping engines
    /// without a command line.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the intra-cell compute worker count directly (default: 0 =
    /// in-place serial compute). Purely a scheduling choice: reports are
    /// byte-identical at any worker count.
    /// [`run_options`](Self::run_options) is the usual entry point; this
    /// exists for embedders sweeping schedules without a command line.
    pub fn intracell_threads(mut self, workers: usize) -> Self {
        self.intracell = workers;
        self
    }

    /// Sets the observability overlay directly (default: off). Unlike
    /// [`run_options`](Self::run_options) this is in-memory only: cells
    /// collect histograms and the bounded trace, the report carries the
    /// observability block, and no `TRACE_*.jsonl` files are written.
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the execution-mode axis (default: `[Reunion]`).
    pub fn modes(mut self, modes: &[ExecutionMode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Sets the patch axis (default: the single [`ConfigPatch::baseline`]).
    pub fn patches(mut self, patches: Vec<ConfigPatch>) -> Self {
        self.patches = patches;
        self
    }

    /// Materializes the cartesian product.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or two patches share a label (labels are
    /// the lookup key within a report).
    pub fn build(self) -> ExperimentGrid {
        assert!(
            !self.workloads.is_empty(),
            "grid {:?} has no workloads",
            self.id
        );
        assert!(!self.modes.is_empty(), "grid {:?} has no modes", self.id);
        assert!(
            !self.patches.is_empty(),
            "grid {:?} has no patches",
            self.id
        );
        for (i, a) in self.patches.iter().enumerate() {
            for b in &self.patches[..i] {
                assert!(
                    a.label() != b.label(),
                    "grid {:?}: duplicate patch label {:?}",
                    self.id,
                    a.label()
                );
            }
        }
        let mut cells =
            Vec::with_capacity(self.workloads.len() * self.modes.len() * self.patches.len());
        for workload in &self.workloads {
            for &mode in &self.modes {
                for patch in &self.patches {
                    cells.push(Cell {
                        index: cells.len(),
                        workload: workload.clone(),
                        mode,
                        patch: patch.clone(),
                    });
                }
            }
        }
        for (workload, _) in &self.sample_overrides {
            assert!(
                self.workloads.iter().any(|w| w.name() == workload),
                "grid {:?}: sample override for unknown workload {:?}",
                self.id,
                workload
            );
        }
        ExperimentGrid {
            id: self.id,
            caption: self.caption,
            metric: self.metric,
            sample: self.sample,
            sample_overrides: self.sample_overrides,
            base: self.base,
            engine: self.engine,
            obs: self.obs,
            intracell: self.intracell,
            dump_traces: self.dump_traces,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_workloads() -> Vec<Workload> {
        vec![
            Workload::by_name("sparse").unwrap(),
            Workload::by_name("moldyn").unwrap(),
        ]
    }

    #[test]
    fn cells_enumerate_workload_major() {
        let grid = ExperimentGrid::builder("t", "t")
            .workloads(two_workloads())
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .patches(vec![ConfigPatch::new("a"), ConfigPatch::new("b")])
            .build();
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].workload.name(), "sparse");
        assert_eq!(cells[0].mode, ExecutionMode::Strict);
        assert_eq!(cells[0].patch.label(), "a");
        assert_eq!(cells[1].patch.label(), "b");
        assert_eq!(cells[2].mode, ExecutionMode::Reunion);
        assert_eq!(cells[4].workload.name(), "moldyn");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn cell_config_applies_mode_and_patch() {
        let grid = ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .workloads(two_workloads())
            .modes(&[ExecutionMode::Reunion])
            .patches(vec![ConfigPatch::new("lat=33").latency(33)])
            .build();
        let cfg = grid.cell_config(&grid.cells()[0]);
        assert_eq!(cfg.mode, ExecutionMode::Reunion);
        assert_eq!(cfg.comparison_latency, 33);
        // Everything else is small_test.
        assert_eq!(cfg.logical_processors, 2);
    }

    #[test]
    fn run_options_overlay_reaches_every_cell_config() {
        let opts = RunOptions {
            engine: Engine::Dense,
            observability: ObsConfig {
                enabled: true,
                trace_cap: 7,
            },
            intracell: Some(3),
            ..RunOptions::default()
        };
        let grid = ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .run_options(&opts)
            .workloads(two_workloads())
            .patches(vec![ConfigPatch::new("lat=5").latency(5)])
            .build();
        assert_eq!(grid.engine(), Engine::Dense);
        assert!(grid.observability().enabled);
        assert_eq!(grid.intracell_threads(), 3);
        assert!(grid.dumps_traces(), "the CLI surface opts into trace files");
        for cell in grid.cells() {
            let cfg = grid.cell_config(cell);
            assert_eq!(cfg.engine, Engine::Dense);
            assert!(cfg.obs.enabled);
            assert_eq!(cfg.obs.trace_cap, 7);
            assert_eq!(cfg.intracell_threads, 3);
            assert_eq!(cfg.comparison_latency, 5, "patches still apply");
        }
    }

    #[test]
    fn default_overlay_is_env_free_and_off() {
        let grid = ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .workloads(two_workloads())
            .build();
        assert_eq!(grid.engine(), Engine::default());
        assert!(!grid.observability().enabled);
        assert!(!grid.dumps_traces());
    }

    #[test]
    fn programmatic_observability_stays_in_memory() {
        let grid = ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .observability(ObsConfig {
                enabled: true,
                trace_cap: 16,
            })
            .workloads(two_workloads())
            .build();
        assert!(grid.observability().enabled, "collection is on");
        assert!(
            !grid.dumps_traces(),
            "library callers must not litter the working directory"
        );
        assert!(grid.cell_config(&grid.cells()[0]).obs.enabled);
    }

    #[test]
    fn programmatic_intracell_reaches_cell_configs() {
        let grid = ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .intracell_threads(5)
            .workloads(two_workloads())
            .build();
        assert_eq!(grid.intracell_threads(), 5);
        assert_eq!(grid.cell_config(&grid.cells()[0]).intracell_threads, 5);
    }

    #[test]
    fn sample_override_applies_to_one_workload_only() {
        let wide = SampleConfig {
            warmup: 1_000,
            window: 1_000,
            windows: 64,
        };
        let grid = ExperimentGrid::builder("t", "t")
            .sample(SampleConfig::quick())
            .sample_override("moldyn", wide)
            .workloads(two_workloads())
            .build();
        let sparse = &grid.cells()[0];
        let moldyn = &grid.cells()[1];
        assert_eq!(grid.cell_sample(sparse), &SampleConfig::quick());
        assert_eq!(grid.cell_sample(moldyn), &wide);
        assert_eq!(grid.sample_overrides().len(), 1);
    }

    #[test]
    #[should_panic(expected = "sample override for unknown workload")]
    fn sample_override_must_name_a_grid_workload() {
        ExperimentGrid::builder("t", "t")
            .sample_override("nope", SampleConfig::quick())
            .workloads(two_workloads())
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate patch label")]
    fn duplicate_patch_labels_rejected() {
        ExperimentGrid::builder("t", "t")
            .workloads(two_workloads())
            .patches(vec![
                ConfigPatch::new("x"),
                ConfigPatch::new("x").latency(1),
            ])
            .build();
    }
}

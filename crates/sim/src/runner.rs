//! Parallel, sharded, resumable execution of experiment grids.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use reunion_core::{measure, normalized_ipc, TraceEvent};

use crate::grid::{Cell, ExperimentGrid, Metric};
use crate::json::JsonWriter;
use crate::manifest::{ManifestHeader, ShardManifest};
use crate::report::{
    out_dir, ExperimentReport, MeasureSummary, NormalizedSummary, Outcome, RunRecord, StaticSummary,
};
use crate::scheduler::CellQueue;
use crate::shard::ShardSpec;

/// Executes the cells of an [`ExperimentGrid`] and assembles an
/// [`ExperimentReport`].
///
/// Every cell simulates an independent `CmpSystem` (or matched pair of
/// systems) whose behaviour is fully determined by the seeded configuration,
/// so cells can run on any number of OS threads in any order; records are
/// reassembled in grid enumeration order afterwards. A parallel run and a
/// serial run of the same grid therefore produce byte-identical reports —
/// `reunion-sim`'s determinism guard tests exactly that. Workers pull cells
/// from a work-stealing [`CellQueue`], so heterogeneous cells (full-profile
/// sampling next to fast cells) cannot leave one thread straggling.
///
/// For grids too slow for one machine, [`Runner::run_shard`] executes one
/// [`ShardSpec`] slice of the grid, streaming each finished cell to a
/// crash-safe shard manifest; `merge_shards` (or
/// [`crate::merge_manifests`]) later combines the manifests into the same
/// byte-identical `BENCH_<id>.json`.
///
/// # Environment
///
/// [`Runner::from_env`] honours:
///
/// * `REUNION_SERIAL=1` — force single-threaded execution,
/// * `REUNION_THREADS=<n>` — cap the worker count (default: all cores).
///
/// The shard slice itself comes from `REUNION_SHARD=i/N` via
/// [`ShardSpec::from_env`] (read by the bench harness, not by the runner).
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

/// Whether the environment variable `name` is set to `"1"`.
///
/// The canonical on/off convention for every `REUNION_*` boolean knob:
/// `FOO=1` enables, anything else (including `FOO=0` or unset) disables.
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

/// What [`Runner::run_shard`] did: where the manifest lives and how much of
/// the shard ran now versus was recovered from an interrupted run.
#[derive(Clone, Debug)]
pub struct ShardRunOutcome {
    /// The manifest file holding this shard's per-cell records.
    pub manifest_path: PathBuf,
    /// The shard that was executed.
    pub shard: ShardSpec,
    /// Number of grid cells this shard owns.
    pub owned_cells: usize,
    /// Cells recovered from an earlier interrupted run's manifest.
    pub resumed: usize,
    /// Cells executed by this invocation.
    pub executed: usize,
}

impl Runner {
    /// A runner configured from the environment (see type docs).
    pub fn from_env() -> Self {
        if env_flag("REUNION_SERIAL") {
            return Runner::serial();
        }
        let default_threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let threads = std::env::var("REUNION_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default_threads);
        Runner { threads }
    }

    /// A single-threaded runner.
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// A runner with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        Runner { threads }
    }

    /// Whether this runner executes cells one at a time.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Executes every cell of `grid` and returns the assembled report.
    pub fn run(&self, grid: &ExperimentGrid) -> ExperimentReport {
        let cells = grid.cells();
        let records = if self.threads <= 1 || cells.len() <= 1 {
            cells.iter().map(|c| run_cell(grid, c)).collect()
        } else {
            self.run_parallel(grid, cells)
        };
        ExperimentReport {
            id: grid.id().to_string(),
            caption: grid.caption().to_string(),
            sample: *grid.sample(),
            sample_overrides: grid.sample_overrides().to_vec(),
            records,
        }
    }

    /// Executes the slice of `grid` owned by `shard`, streaming every
    /// finished cell to the shard's manifest under `dir` and resuming from
    /// any compatible manifest already there.
    ///
    /// The manifest (`MANIFEST_<id>.shard<i>of<N>.jsonl`) is flushed after
    /// each cell, so an interrupted run loses at most the cells in flight.
    /// Re-invoking with the same grid and shard picks up where the previous
    /// run stopped; a manifest written by a *different* grid, profile, or
    /// partition is discarded, not merged.
    ///
    /// # Errors
    ///
    /// Propagates manifest I/O failures; the simulation itself cannot fail.
    pub fn run_shard(
        &self,
        grid: &ExperimentGrid,
        shard: ShardSpec,
        dir: &Path,
    ) -> io::Result<ShardRunOutcome> {
        let header = ManifestHeader {
            id: grid.id().to_string(),
            caption: grid.caption().to_string(),
            shard,
            cells: grid.cells().len(),
            sample: *grid.sample(),
            sample_overrides: grid.sample_overrides().to_vec(),
            obs: *grid.observability(),
        };
        let manifest = ShardManifest::create_or_resume(dir, header)?;
        let owned = shard.cell_indices(grid.cells().len());
        let todo: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|i| !manifest.completed().contains_key(i))
            .collect();
        let resumed = owned.len() - todo.len();
        let executed = todo.len();
        let manifest = Mutex::new(manifest);
        self.execute_into_manifest(grid, &todo, &manifest)?;
        let manifest = manifest
            .into_inner()
            .expect("worker panicked holding manifest");
        Ok(ShardRunOutcome {
            manifest_path: manifest.path().to_path_buf(),
            shard,
            owned_cells: owned.len(),
            resumed,
            executed,
        })
    }

    /// Runs `indices` (cell indices into `grid`), appending each record to
    /// `manifest` the moment it completes. Serial execution preserves index
    /// order (so serial manifests are deterministic files); parallel
    /// execution appends in completion order.
    fn execute_into_manifest(
        &self,
        grid: &ExperimentGrid,
        indices: &[usize],
        manifest: &Mutex<ShardManifest>,
    ) -> io::Result<()> {
        let workers = self.threads.min(indices.len());
        if workers <= 1 {
            for &i in indices {
                let record = run_cell(grid, &grid.cells()[i]);
                manifest
                    .lock()
                    .expect("worker panicked holding manifest")
                    .append(i, &record)?;
            }
            return Ok(());
        }
        let queue = CellQueue::new(grid, indices, workers);
        let first_err: Mutex<Option<io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queue = &queue;
                let first_err = &first_err;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(worker) {
                        if first_err.lock().expect("error lock").is_some() {
                            return;
                        }
                        let record = run_cell(grid, &grid.cells()[i]);
                        let result = manifest
                            .lock()
                            .expect("worker panicked holding manifest")
                            .append(i, &record);
                        if let Err(e) = result {
                            let mut slot = first_err.lock().expect("error lock");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        });
        match first_err.into_inner().expect("error lock") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn run_parallel(&self, grid: &ExperimentGrid, cells: &[Cell]) -> Vec<RunRecord> {
        let workers = self.threads.min(cells.len());
        let indices: Vec<usize> = (0..cells.len()).collect();
        let queue = CellQueue::new(grid, &indices, workers);
        let done: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::with_capacity(cells.len()));
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queue = &queue;
                let done = &done;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(worker) {
                        let record = run_cell(grid, &cells[i]);
                        done.lock()
                            .expect("worker panicked holding lock")
                            .push((i, record));
                    }
                });
            }
        });
        let mut indexed = done.into_inner().expect("worker panicked holding lock");
        assert_eq!(
            indexed.len(),
            cells.len(),
            "every cell must produce a record"
        );
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Measures one cell of `grid`: the smallest unit of sharded execution.
///
/// Pure apart from the simulation itself: the outcome is a function of
/// (grid base config, cell, cell sampling profile) only — which is what
/// lets external drivers (the `reunion-dispatch` workers, custom shard
/// loops) execute cells one at a time, appending each record to a
/// [`ShardManifest`] between their own checkpoint or failure-injection
/// logic, and still merge back into a byte-identical report.
pub fn measure_cell(grid: &ExperimentGrid, cell: &Cell) -> RunRecord {
    run_cell(grid, cell)
}

/// Measures one cell. Pure apart from the simulation itself: the outcome is
/// a function of (grid base config, cell, cell sampling profile) only.
fn run_cell(grid: &ExperimentGrid, cell: &Cell) -> RunRecord {
    let sample = grid.cell_sample(cell);
    let outcome = match grid.metric() {
        Metric::Normalized => {
            let cfg = grid.cell_config(cell);
            let n = normalized_ipc(&cfg, &cell.workload, sample);
            dump_trace(grid, cell.index, &n.model.trace);
            Outcome::Normalized(Box::new(NormalizedSummary::from(&n)))
        }
        Metric::Raw => {
            let cfg = grid.cell_config(cell);
            let m = measure(&cfg, &cell.workload, sample);
            dump_trace(grid, cell.index, &m.trace);
            Outcome::Raw(Box::new(MeasureSummary::from(&m)))
        }
        Metric::Static => Outcome::Static(StaticSummary::of(&cell.workload)),
    };
    RunRecord {
        workload: cell.workload.name().to_string(),
        class: cell.workload.class(),
        mode: cell.mode,
        patch: cell.patch.label().to_string(),
        outcome,
    }
}

/// Writes a cell's retained check-protocol trace to
/// `TRACE_<grid>_<cell>.jsonl` in [`out_dir`], one compact JSON object per
/// event. Dumping follows the grid's command-line artifact contract
/// ([`ExperimentGrid::dumps_traces`], set by
/// [`GridBuilder::run_options`](crate::GridBuilder::run_options) from
/// `--obs` / `REUNION_OBS=1`): a library caller who enables collection
/// through [`GridBuilder::observability`](crate::GridBuilder::observability)
/// or on individual [`SystemConfig`](reunion_core::SystemConfig) values
/// gets in-memory collection and the report block without files appearing
/// in the working directory. No file is written when the trace is empty; a
/// dump failure is a warning, never a run failure, because the trace is a
/// diagnostic side channel and must not perturb the deterministic report
/// pipeline.
fn dump_trace(grid: &ExperimentGrid, cell_index: usize, trace: &[TraceEvent]) {
    if trace.is_empty() || !grid.dumps_traces() {
        return;
    }
    let mut text = String::new();
    for e in trace {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_u64("cycle", e.cycle);
        w.field_u64("lp", u64::from(e.lp));
        w.field_str("kind", e.kind.as_str());
        w.field_u64("interval_id", e.interval_id);
        w.end_object();
        text.push_str(&w.finish());
        text.push('\n');
    }
    let path = out_dir().join(format!("TRACE_{}_{cell_index}.jsonl", grid.id()));
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write trace {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigPatch;
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_workloads::Workload;

    fn quick_grid(metric: Metric) -> ExperimentGrid {
        ExperimentGrid::builder("determinism", "serial vs parallel")
            .metric(metric)
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![
                Workload::by_name("sparse").unwrap(),
                Workload::by_name("moldyn").unwrap(),
            ])
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .patches(vec![
                ConfigPatch::new("lat=0").latency(0),
                ConfigPatch::new("lat=20").latency(20),
            ])
            .build()
    }

    /// The determinism guard: parallel and serial execution of the same
    /// grid must produce byte-identical JSON reports.
    #[test]
    fn parallel_and_serial_reports_are_byte_identical() {
        let grid = quick_grid(Metric::Normalized);
        let serial = Runner::serial().run(&grid).to_json();
        let parallel = Runner::with_threads(4).run(&grid).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn records_follow_grid_order() {
        let grid = quick_grid(Metric::Static);
        let report = Runner::with_threads(3).run(&grid);
        assert_eq!(report.records.len(), grid.cells().len());
        for (record, cell) in report.records.iter().zip(grid.cells()) {
            assert_eq!(record.workload, cell.workload.name());
            assert_eq!(record.mode, cell.mode);
            assert_eq!(record.patch, cell.patch.label());
        }
    }

    #[test]
    fn raw_metric_measures_single_system() {
        let grid = ExperimentGrid::builder("raw", "raw")
            .metric(Metric::Raw)
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![Workload::by_name("sparse").unwrap()])
            .modes(&[ExecutionMode::Reunion])
            .build();
        let report = Runner::serial().run(&grid);
        let m = report.records[0].raw().expect("raw outcome");
        assert!(m.ipc > 0.0);
        assert!(report.records[0].normalized().is_none());
    }

    #[test]
    fn env_override_forces_serial() {
        // Runner::from_env is exercised directly by the bench binaries; here
        // just check the explicit constructors agree with is_serial().
        assert!(Runner::serial().is_serial());
        assert!(!Runner::with_threads(8).is_serial());
    }

    #[test]
    fn sample_override_changes_measured_window() {
        let wide = SampleConfig {
            warmup: 10_000,
            window: 10_000,
            windows: 8,
        };
        let grid = ExperimentGrid::builder("widened", "sample override")
            .metric(Metric::Raw)
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .sample_override("moldyn", wide)
            .workloads(vec![
                Workload::by_name("sparse").unwrap(),
                Workload::by_name("moldyn").unwrap(),
            ])
            .modes(&[ExecutionMode::Reunion])
            .build();
        let report = Runner::serial().run(&grid);
        let sparse = report.records[0].raw().expect("raw outcome");
        let moldyn = report.records[1].raw().expect("raw outcome");
        // Four times the windows at the same window length: the widened
        // workload must retire several times the instructions.
        assert!(moldyn.user_instructions > 2 * sparse.user_instructions);
        assert_eq!(report.sample_overrides.len(), 1);
        assert!(report.to_json().contains("\"sample_overrides\""));
    }
}

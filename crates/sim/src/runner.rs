//! Parallel execution of experiment grids.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use reunion_core::{measure, normalized_ipc};

use crate::grid::{Cell, ExperimentGrid, Metric};
use crate::report::{
    ExperimentReport, MeasureSummary, NormalizedSummary, Outcome, RunRecord, StaticSummary,
};

/// Executes the cells of an [`ExperimentGrid`] and assembles an
/// [`ExperimentReport`].
///
/// Every cell simulates an independent `CmpSystem` (or matched pair of
/// systems) whose behaviour is fully determined by the seeded configuration,
/// so cells can run on any number of OS threads in any order; records are
/// reassembled in grid enumeration order afterwards. A parallel run and a
/// serial run of the same grid therefore produce byte-identical reports —
/// `reunion-sim`'s determinism guard tests exactly that.
///
/// # Environment
///
/// [`Runner::from_env`] honours:
///
/// * `REUNION_SERIAL=1` — force single-threaded execution,
/// * `REUNION_THREADS=<n>` — cap the worker count (default: all cores).
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

/// Whether the environment variable `name` is set to `"1"`.
///
/// The canonical on/off convention for every `REUNION_*` boolean knob:
/// `FOO=1` enables, anything else (including `FOO=0` or unset) disables.
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

impl Runner {
    /// A runner configured from the environment (see type docs).
    pub fn from_env() -> Self {
        if env_flag("REUNION_SERIAL") {
            return Runner::serial();
        }
        let default_threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let threads = std::env::var("REUNION_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default_threads);
        Runner { threads }
    }

    /// A single-threaded runner.
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// A runner with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker");
        Runner { threads }
    }

    /// Whether this runner executes cells one at a time.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Executes every cell of `grid` and returns the assembled report.
    pub fn run(&self, grid: &ExperimentGrid) -> ExperimentReport {
        let cells = grid.cells();
        let records = if self.threads <= 1 || cells.len() <= 1 {
            cells.iter().map(|c| run_cell(grid, c)).collect()
        } else {
            self.run_parallel(grid, cells)
        };
        ExperimentReport {
            id: grid.id().to_string(),
            caption: grid.caption().to_string(),
            sample: *grid.sample(),
            records,
        }
    }

    fn run_parallel(&self, grid: &ExperimentGrid, cells: &[Cell]) -> Vec<RunRecord> {
        let workers = self.threads.min(cells.len());
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::with_capacity(cells.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let record = run_cell(grid, cell);
                    done.lock()
                        .expect("worker panicked holding lock")
                        .push((i, record));
                });
            }
        });
        let mut indexed = done.into_inner().expect("worker panicked holding lock");
        assert_eq!(
            indexed.len(),
            cells.len(),
            "every cell must produce a record"
        );
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Measures one cell. Pure apart from the simulation itself: the outcome is
/// a function of (grid base config, cell, sample profile) only.
fn run_cell(grid: &ExperimentGrid, cell: &Cell) -> RunRecord {
    let outcome = match grid.metric() {
        Metric::Normalized => {
            let cfg = grid.cell_config(cell);
            let n = normalized_ipc(&cfg, &cell.workload, grid.sample());
            Outcome::Normalized(NormalizedSummary::from(&n))
        }
        Metric::Raw => {
            let cfg = grid.cell_config(cell);
            let m = measure(&cfg, &cell.workload, grid.sample());
            Outcome::Raw(MeasureSummary::from(&m))
        }
        Metric::Static => Outcome::Static(StaticSummary::of(&cell.workload)),
    };
    RunRecord {
        workload: cell.workload.name().to_string(),
        class: cell.workload.class(),
        mode: cell.mode,
        patch: cell.patch.label().to_string(),
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigPatch;
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_workloads::Workload;

    fn quick_grid(metric: Metric) -> ExperimentGrid {
        ExperimentGrid::builder("determinism", "serial vs parallel")
            .metric(metric)
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![
                Workload::by_name("sparse").unwrap(),
                Workload::by_name("moldyn").unwrap(),
            ])
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .patches(vec![
                ConfigPatch::new("lat=0").latency(0),
                ConfigPatch::new("lat=20").latency(20),
            ])
            .build()
    }

    /// The determinism guard: parallel and serial execution of the same
    /// grid must produce byte-identical JSON reports.
    #[test]
    fn parallel_and_serial_reports_are_byte_identical() {
        let grid = quick_grid(Metric::Normalized);
        let serial = Runner::serial().run(&grid).to_json();
        let parallel = Runner::with_threads(4).run(&grid).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn records_follow_grid_order() {
        let grid = quick_grid(Metric::Static);
        let report = Runner::with_threads(3).run(&grid);
        assert_eq!(report.records.len(), grid.cells().len());
        for (record, cell) in report.records.iter().zip(grid.cells()) {
            assert_eq!(record.workload, cell.workload.name());
            assert_eq!(record.mode, cell.mode);
            assert_eq!(record.patch, cell.patch.label());
        }
    }

    #[test]
    fn raw_metric_measures_single_system() {
        let grid = ExperimentGrid::builder("raw", "raw")
            .metric(Metric::Raw)
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![Workload::by_name("sparse").unwrap()])
            .modes(&[ExecutionMode::Reunion])
            .build();
        let report = Runner::serial().run(&grid);
        let m = report.records[0].raw().expect("raw outcome");
        assert!(m.ipc > 0.0);
        assert!(report.records[0].normalized().is_none());
    }

    #[test]
    fn env_override_forces_serial() {
        // Runner::from_env is exercised directly by the bench binaries; here
        // just check the explicit constructors agree with is_serial().
        assert!(Runner::serial().is_serial());
        assert!(!Runner::with_threads(8).is_serial());
    }
}

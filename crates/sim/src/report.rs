//! Structured experiment results and their JSON serialization.

use std::io;
use std::path::PathBuf;

use reunion_core::{
    EpisodeSummary, ExecutionMode, LatencyHistogram, Measurement, NormalizedResult, ObsReport,
    SampleConfig, HISTOGRAM_BUCKETS,
};
use reunion_workloads::{Workload, WorkloadClass};

use crate::json::{JsonValue, JsonWriter};

/// Flattened single-system measurement (one side of a matched pair).
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureSummary {
    /// Mean user IPC over measurement windows.
    pub ipc: f64,
    /// Half-width of the 95% confidence interval on the IPC.
    pub ipc_ci95: f64,
    /// Retired user instructions over all windows.
    pub user_instructions: u64,
    /// Simulated cycles over all windows.
    pub cycles: u64,
    /// Fingerprint mismatches (including in-recovery escalations).
    pub mismatches: u64,
    /// Measured input-incoherence events (mismatches first detected during
    /// normal paired execution).
    pub input_incoherence: u64,
    /// Recovery protocol invocations.
    pub recoveries: u64,
    /// Phase-two (architectural register copy) recoveries.
    pub phase2: u64,
    /// Unrecoverable failures.
    pub failures: u64,
    /// Synchronizing requests issued.
    pub sync_requests: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Phantom fills that returned garbage data.
    pub phantom_garbage_fills: u64,
    /// Cycles retirement stalled on serializing check round trips.
    pub serializing_stall_cycles: u64,
    /// Check round-trip cycles charged during re-executions.
    pub reexec_penalty_cycles: u64,
    /// Input-incoherence events per million user instructions (Table 3).
    pub incoherence_per_million: f64,
    /// TLB misses per million user instructions (Table 3).
    pub tlb_misses_per_million: f64,
    /// Opt-in observability block (histograms, episode summaries, trace
    /// counters). `None` unless the run enabled observability; absent from
    /// the serialized form when `None`, keeping default artifacts
    /// byte-identical to the pre-observability schema.
    pub obs: Option<ObsReport>,
}

impl From<&Measurement> for MeasureSummary {
    fn from(m: &Measurement) -> Self {
        MeasureSummary {
            ipc: m.ipc,
            ipc_ci95: m.ipc_ci95,
            user_instructions: m.totals.user_instructions,
            cycles: m.totals.cycles,
            mismatches: m.totals.mismatches,
            input_incoherence: m.totals.input_incoherence,
            recoveries: m.totals.recoveries,
            phase2: m.totals.phase2,
            failures: m.totals.failures,
            sync_requests: m.totals.sync_requests,
            tlb_misses: m.totals.tlb_misses,
            phantom_garbage_fills: m.totals.phantom_garbage_fills,
            serializing_stall_cycles: m.totals.serializing_stall_cycles,
            reexec_penalty_cycles: m.totals.reexec_penalty_cycles,
            incoherence_per_million: m.incoherence_per_million(),
            tlb_misses_per_million: m.tlb_misses_per_million(),
            obs: m.obs.clone(),
        }
    }
}

impl MeasureSummary {
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_f64("ipc", self.ipc);
        w.field_f64("ipc_ci95", self.ipc_ci95);
        w.field_u64("user_instructions", self.user_instructions);
        w.field_u64("cycles", self.cycles);
        w.field_u64("mismatches", self.mismatches);
        w.field_u64("input_incoherence", self.input_incoherence);
        w.field_u64("recoveries", self.recoveries);
        w.field_u64("phase2", self.phase2);
        w.field_u64("failures", self.failures);
        w.field_u64("sync_requests", self.sync_requests);
        w.field_u64("tlb_misses", self.tlb_misses);
        w.field_u64("phantom_garbage_fills", self.phantom_garbage_fills);
        w.field_u64("serializing_stall_cycles", self.serializing_stall_cycles);
        w.field_u64("reexec_penalty_cycles", self.reexec_penalty_cycles);
        w.field_f64("incoherence_per_million", self.incoherence_per_million);
        w.field_f64("tlb_misses_per_million", self.tlb_misses_per_million);
        if let Some(obs) = &self.obs {
            w.key("observability");
            write_obs_json(w, obs);
        }
        w.end_object();
    }

    pub(crate) fn from_json(v: &JsonValue) -> Result<Self, String> {
        Ok(MeasureSummary {
            ipc: f64_field(v, "ipc")?,
            ipc_ci95: f64_field(v, "ipc_ci95")?,
            user_instructions: u64_field(v, "user_instructions")?,
            cycles: u64_field(v, "cycles")?,
            mismatches: u64_field(v, "mismatches")?,
            input_incoherence: u64_field(v, "input_incoherence")?,
            recoveries: u64_field(v, "recoveries")?,
            phase2: u64_field(v, "phase2")?,
            failures: u64_field(v, "failures")?,
            sync_requests: u64_field(v, "sync_requests")?,
            tlb_misses: u64_field(v, "tlb_misses")?,
            phantom_garbage_fills: u64_field(v, "phantom_garbage_fills")?,
            serializing_stall_cycles: u64_field(v, "serializing_stall_cycles")?,
            reexec_penalty_cycles: u64_field(v, "reexec_penalty_cycles")?,
            incoherence_per_million: f64_field(v, "incoherence_per_million")?,
            tlb_misses_per_million: f64_field(v, "tlb_misses_per_million")?,
            obs: match v.get("observability") {
                Some(o) => Some(obs_from_json(o)?),
                None => None,
            },
        })
    }
}

/// Writes a [`LatencyHistogram`] as `{count, sum, min, max, buckets}`.
/// `min` serializes as 0 for an empty histogram (the reader restores the
/// empty sentinel from `count == 0`).
fn write_histogram_json(w: &mut JsonWriter, h: &LatencyHistogram) {
    w.begin_object();
    w.field_u64("count", h.count());
    w.field_u64("sum", h.sum());
    w.field_u64("min", h.min().unwrap_or(0));
    w.field_u64("max", h.max().unwrap_or(0));
    w.key("buckets");
    w.begin_array();
    for &b in h.buckets().iter() {
        w.u64(b);
    }
    w.end_array();
    w.end_object();
}

fn histogram_from_json(v: &JsonValue) -> Result<LatencyHistogram, String> {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    match v.get("buckets") {
        Some(JsonValue::Array(items)) if items.len() == HISTOGRAM_BUCKETS => {
            for (slot, item) in buckets.iter_mut().zip(items.iter()) {
                let n = item
                    .as_f64()
                    .ok_or_else(|| format!("bucket entry is not a number: {item:?}"))?;
                *slot = n as u64;
            }
        }
        Some(JsonValue::Array(items)) => {
            return Err(format!(
                "histogram has {} buckets, expected {HISTOGRAM_BUCKETS}",
                items.len()
            ))
        }
        _ => return Err("missing histogram field \"buckets\"".to_string()),
    }
    Ok(LatencyHistogram::from_raw(
        u64_field(v, "count")?,
        u64_field(v, "sum")?,
        u64_field(v, "min")?,
        u64_field(v, "max")?,
        buckets,
    ))
}

/// Writes the opt-in `observability` block of a measurement summary.
pub(crate) fn write_obs_json(w: &mut JsonWriter, obs: &ObsReport) {
    w.begin_object();
    w.field_u64("skipped_cycles", obs.skipped_cycles);
    w.key("check_latency");
    write_histogram_json(w, &obs.check_latency);
    w.key("stall_episodes");
    write_histogram_json(w, obs.stall_episodes.lengths());
    w.key("skip_runs");
    write_histogram_json(w, obs.skip_runs.lengths());
    w.key("incoherence_gaps");
    write_histogram_json(w, &obs.incoherence_gaps);
    w.field_u64("trace_events", obs.trace_events);
    w.field_u64("trace_evicted", obs.trace_evicted);
    w.end_object();
}

/// Parses the `observability` block back into an [`ObsReport`]; the inverse
/// of [`write_obs_json`], exact for every value the writer emits.
pub(crate) fn obs_from_json(v: &JsonValue) -> Result<ObsReport, String> {
    let histogram = |key: &str| -> Result<LatencyHistogram, String> {
        histogram_from_json(v.get(key).ok_or_else(|| format!("missing field {key:?}"))?)
    };
    Ok(ObsReport {
        check_latency: histogram("check_latency")?,
        stall_episodes: EpisodeSummary::from_lengths(histogram("stall_episodes")?),
        skip_runs: EpisodeSummary::from_lengths(histogram("skip_runs")?),
        incoherence_gaps: histogram("incoherence_gaps")?,
        skipped_cycles: u64_field(v, "skipped_cycles")?,
        trace_events: u64_field(v, "trace_events")?,
        trace_evicted: u64_field(v, "trace_evicted")?,
    })
}

/// A float leaf; `null` reads back as NaN, mirroring the writer's encoding
/// of non-finite values.
fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(JsonValue::Num(n)) => Ok(*n),
        Some(JsonValue::Null) => Ok(f64::NAN),
        Some(other) => Err(format!("field {key:?}: expected number, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// An unsigned-counter leaf. Counters are parsed through `f64` (the only
/// numeric type of the JSON subset), which is exact below 2^53 — far above
/// any cycle or instruction count these simulations produce.
pub(crate) fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    let n = f64_field(v, key)?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
        Ok(n as u64)
    } else {
        Err(format!("field {key:?}: {n} is not a u64 counter"))
    }
}

pub(crate) fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Writes a [`SampleConfig`] as the `{warmup, window, windows}` object used
/// by both `BENCH_<id>.json` and shard-manifest headers.
pub(crate) fn write_sample_json(w: &mut JsonWriter, sample: &SampleConfig) {
    w.begin_object();
    w.field_u64("warmup", sample.warmup);
    w.field_u64("window", sample.window);
    w.field_u64("windows", sample.windows as u64);
    w.end_object();
}

/// Parses the `{warmup, window, windows}` object form of a [`SampleConfig`].
pub(crate) fn sample_from_json(v: &JsonValue) -> Result<SampleConfig, String> {
    Ok(SampleConfig {
        warmup: u64_field(v, "warmup")?,
        window: u64_field(v, "window")?,
        windows: u64_field(v, "windows")? as usize,
    })
}

/// Writes one per-workload sampling override in the flat
/// `{workload, warmup, window, windows}` shape — the one schema shared by
/// `BENCH_<id>.json` reports and shard-manifest headers.
pub(crate) fn write_sample_override_json(
    w: &mut JsonWriter,
    workload: &str,
    sample: &SampleConfig,
) {
    w.begin_object();
    w.field_str("workload", workload);
    w.field_u64("warmup", sample.warmup);
    w.field_u64("window", sample.window);
    w.field_u64("windows", sample.windows as u64);
    w.end_object();
}

/// Parses the flat override shape written by [`write_sample_override_json`].
pub(crate) fn sample_override_from_json(v: &JsonValue) -> Result<(String, SampleConfig), String> {
    Ok((str_field(v, "workload")?.to_string(), sample_from_json(v)?))
}

/// Matched-pair result: the model system and its non-redundant baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizedSummary {
    /// Mean of per-window IPC ratios.
    pub normalized_ipc: f64,
    /// Half-width of the 95% confidence interval on the ratio.
    pub ci95: f64,
    /// The measured model system.
    pub model: MeasureSummary,
    /// The matching non-redundant baseline.
    pub baseline: MeasureSummary,
}

impl From<&NormalizedResult> for NormalizedSummary {
    fn from(n: &NormalizedResult) -> Self {
        NormalizedSummary {
            normalized_ipc: n.normalized_ipc,
            ci95: n.ci95,
            model: MeasureSummary::from(&n.model),
            baseline: MeasureSummary::from(&n.baseline),
        }
    }
}

/// Static workload parameters (Table 2) — no simulation involved.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticSummary {
    /// Per-thread private data footprint in bytes.
    pub private_bytes: u64,
    /// Shared data footprint in bytes.
    pub shared_bytes: u64,
    /// Number of spin locks.
    pub locks: u64,
    /// Instructions per critical section body.
    pub critical_section_len: u64,
    /// Synthetic ITLB miss rate per million fetched instructions.
    pub itlb_miss_per_million: u64,
    /// Static length of the generated program for thread 0.
    pub static_len: u64,
}

impl StaticSummary {
    /// Computes the Table 2 row for one workload.
    pub fn of(workload: &Workload) -> Self {
        let s = workload.spec();
        StaticSummary {
            private_bytes: s.private_bytes,
            shared_bytes: s.shared_bytes,
            locks: s.locks,
            critical_section_len: s.critical_section_len as u64,
            itlb_miss_per_million: s.itlb_miss_per_million,
            static_len: workload.program(0).len() as u64,
        }
    }
}

/// What one grid cell produced, by [`crate::Metric`] kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Matched-pair normalized measurement (boxed: the two embedded
    /// [`MeasureSummary`] values dwarf the other variants).
    Normalized(Box<NormalizedSummary>),
    /// Single-system raw measurement (boxed for the same reason).
    Raw(Box<MeasureSummary>),
    /// Static workload parameters.
    Static(StaticSummary),
}

/// The result of one grid cell.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Execution mode of the measured system.
    pub mode: ExecutionMode,
    /// Patch label identifying the configuration point.
    pub patch: String,
    /// The measurement itself.
    pub outcome: Outcome,
}

impl RunRecord {
    /// The matched-pair summary, if this cell measured one.
    pub fn normalized(&self) -> Option<&NormalizedSummary> {
        match &self.outcome {
            Outcome::Normalized(n) => Some(n.as_ref()),
            _ => None,
        }
    }

    /// Shorthand for the normalized IPC value.
    pub fn normalized_ipc(&self) -> Option<f64> {
        self.normalized().map(|n| n.normalized_ipc)
    }

    /// The raw measurement, if this cell measured one.
    pub fn raw(&self) -> Option<&MeasureSummary> {
        match &self.outcome {
            Outcome::Raw(m) => Some(m.as_ref()),
            _ => None,
        }
    }

    /// The static parameters, if this cell computed them.
    pub fn statics(&self) -> Option<&StaticSummary> {
        match &self.outcome {
            Outcome::Static(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("workload", &self.workload);
        w.field_str("class", &self.class.to_string());
        w.field_str("mode", &self.mode.to_string());
        w.field_str("patch", &self.patch);
        match &self.outcome {
            Outcome::Normalized(n) => {
                w.field_f64("normalized_ipc", n.normalized_ipc);
                w.field_f64("ci95", n.ci95);
                w.key("model");
                n.model.write_json(w);
                w.key("baseline");
                n.baseline.write_json(w);
            }
            Outcome::Raw(m) => {
                w.key("measurement");
                m.write_json(w);
            }
            Outcome::Static(s) => {
                w.field_u64("private_bytes", s.private_bytes);
                w.field_u64("shared_bytes", s.shared_bytes);
                w.field_u64("locks", s.locks);
                w.field_u64("critical_section_len", s.critical_section_len);
                w.field_u64("itlb_miss_per_million", s.itlb_miss_per_million);
                w.field_u64("static_len", s.static_len);
            }
        }
        w.end_object();
    }

    /// Parses the JSON form produced by [`write_json`](Self::write_json) —
    /// how shard manifests and `BENCH_<id>.json` records are read back.
    ///
    /// Round-tripping is exact: floats use shortest round-trip formatting,
    /// so parse-then-reserialize reproduces the original bytes (the property
    /// the sharded/merged byte-identity guarantee rests on).
    pub(crate) fn from_json(v: &JsonValue) -> Result<Self, String> {
        let outcome = if v.get("normalized_ipc").is_some() {
            Outcome::Normalized(Box::new(NormalizedSummary {
                normalized_ipc: f64_field(v, "normalized_ipc")?,
                ci95: f64_field(v, "ci95")?,
                model: MeasureSummary::from_json(v.get("model").ok_or("missing field \"model\"")?)?,
                baseline: MeasureSummary::from_json(
                    v.get("baseline").ok_or("missing field \"baseline\"")?,
                )?,
            }))
        } else if let Some(m) = v.get("measurement") {
            Outcome::Raw(Box::new(MeasureSummary::from_json(m)?))
        } else {
            Outcome::Static(StaticSummary {
                private_bytes: u64_field(v, "private_bytes")?,
                shared_bytes: u64_field(v, "shared_bytes")?,
                locks: u64_field(v, "locks")?,
                critical_section_len: u64_field(v, "critical_section_len")?,
                itlb_miss_per_million: u64_field(v, "itlb_miss_per_million")?,
                static_len: u64_field(v, "static_len")?,
            })
        };
        Ok(RunRecord {
            workload: str_field(v, "workload")?.to_string(),
            class: str_field(v, "class")?.parse()?,
            mode: str_field(v, "mode")?.parse()?,
            patch: str_field(v, "patch")?.to_string(),
            outcome,
        })
    }
}

/// All records of one experiment, in grid enumeration order.
///
/// The report is the *only* artifact of a run: the experiment binaries
/// print their tables from it, and [`write_json_default`]
/// (`BENCH_<id>.json`) persists it as the performance trajectory future
/// changes are compared against. Serialization is deterministic, so a
/// parallel and a serial run of the same grid produce byte-identical files.
///
/// [`write_json_default`]: ExperimentReport::write_json_default
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Grid identifier (`BENCH_<id>.json`).
    pub id: String,
    /// Human-readable caption.
    pub caption: String,
    /// Sampling profile every cell used, unless overridden per workload.
    pub sample: SampleConfig,
    /// Per-workload sampling overrides (e.g. `table3` widens em3d's
    /// measured window); empty for most grids.
    pub sample_overrides: Vec<(String, SampleConfig)>,
    /// One record per grid cell, in grid enumeration order.
    pub records: Vec<RunRecord>,
}

impl ExperimentReport {
    /// Looks up the record for one (workload, mode, patch-label) cell.
    pub fn get(&self, workload: &str, mode: ExecutionMode, patch: &str) -> Option<&RunRecord> {
        self.records
            .iter()
            .find(|r| r.workload == workload && r.mode == mode && r.patch == patch)
    }

    /// All records for one (mode, patch-label) slice, in workload order.
    pub fn rows<'a>(
        &'a self,
        mode: ExecutionMode,
        patch: &'a str,
    ) -> impl Iterator<Item = &'a RunRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.mode == mode && r.patch == patch)
    }

    /// `(class, normalized IPC)` pairs for one (mode, patch) slice —
    /// the input shape of the class-average helpers in `reunion-bench`.
    pub fn normalized_rows(&self, mode: ExecutionMode, patch: &str) -> Vec<(WorkloadClass, f64)> {
        self.rows(mode, patch)
            .filter_map(|r| r.normalized_ipc().map(|v| (r.class, v)))
            .collect()
    }

    /// Mean normalized IPC over the (mode, patch) slice, restricted to
    /// classes accepted by `keep`.
    pub fn mean_normalized_where(
        &self,
        mode: ExecutionMode,
        patch: &str,
        keep: impl Fn(WorkloadClass) -> bool,
    ) -> f64 {
        let vals: Vec<f64> = self
            .normalized_rows(mode, patch)
            .into_iter()
            .filter(|(c, _)| keep(*c))
            .map(|(_, v)| v)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Serializes the report as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("id", &self.id);
        w.field_str("caption", &self.caption);
        w.key("sample");
        write_sample_json(&mut w, &self.sample);
        if !self.sample_overrides.is_empty() {
            w.key("sample_overrides");
            w.begin_array();
            for (workload, sample) in &self.sample_overrides {
                write_sample_override_json(&mut w, workload, sample);
            }
            w.end_array();
        }
        w.key("records");
        w.begin_array();
        for r in &self.records {
            r.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }

    /// Writes `BENCH_<id>.json` under [`out_dir`] and returns the path.
    pub fn write_json_default(&self) -> io::Result<PathBuf> {
        let path = out_dir().join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The artifact directory every experiment binary reads and writes:
/// `$REUNION_OUT_DIR`, or the current directory when unset. Holds both the
/// `BENCH_<id>.json` reports and the `MANIFEST_*.jsonl` shard manifests.
pub fn out_dir() -> PathBuf {
    std::env::var_os("REUNION_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(workload: &str, mode: ExecutionMode, patch: &str, ipc: f64) -> RunRecord {
        RunRecord {
            workload: workload.into(),
            class: if workload == "sparse" {
                WorkloadClass::Scientific
            } else {
                WorkloadClass::Oltp
            },
            mode,
            patch: patch.into(),
            outcome: Outcome::Normalized(Box::new(NormalizedSummary {
                normalized_ipc: ipc,
                ci95: 0.0,
                model: blank_measure(ipc),
                baseline: blank_measure(1.0),
            })),
        }
    }

    fn blank_measure(ipc: f64) -> MeasureSummary {
        MeasureSummary {
            ipc,
            ipc_ci95: 0.0,
            user_instructions: 0,
            cycles: 0,
            mismatches: 0,
            input_incoherence: 0,
            recoveries: 0,
            phase2: 0,
            failures: 0,
            sync_requests: 0,
            tlb_misses: 0,
            phantom_garbage_fills: 0,
            serializing_stall_cycles: 0,
            reexec_penalty_cycles: 0,
            incoherence_per_million: 0.0,
            tlb_misses_per_million: 0.0,
            obs: None,
        }
    }

    fn report() -> ExperimentReport {
        ExperimentReport {
            id: "t".into(),
            caption: "t".into(),
            sample: SampleConfig::quick(),
            sample_overrides: Vec::new(),
            records: vec![
                sample_record("db2", ExecutionMode::Reunion, "base", 0.9),
                sample_record("sparse", ExecutionMode::Reunion, "base", 0.7),
                sample_record("db2", ExecutionMode::Strict, "base", 0.95),
            ],
        }
    }

    #[test]
    fn lookup_by_cell_key() {
        let r = report();
        assert_eq!(
            r.get("db2", ExecutionMode::Strict, "base")
                .unwrap()
                .normalized_ipc(),
            Some(0.95)
        );
        assert!(r.get("db2", ExecutionMode::NonRedundant, "base").is_none());
        assert_eq!(r.rows(ExecutionMode::Reunion, "base").count(), 2);
    }

    #[test]
    fn class_filtered_mean() {
        let r = report();
        let commercial =
            r.mean_normalized_where(ExecutionMode::Reunion, "base", |c| c.is_commercial());
        assert!((commercial - 0.9).abs() < 1e-12);
        let all = r.mean_normalized_where(ExecutionMode::Reunion, "base", |_| true);
        assert!((all - 0.8).abs() < 1e-12);
    }

    #[test]
    fn json_is_stable_and_contains_records() {
        let r = report();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"normalized_ipc\": 0.9"));
        assert!(a.contains("\"mode\": \"strict\""));
        assert!(a.ends_with("}\n"));
    }
}

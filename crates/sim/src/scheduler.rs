//! Work-stealing scheduling of heterogeneous grid cells.
//!
//! The original runner handed cells to workers through a single shared
//! counter, which balances *counts* but not *costs*: a grid mixing
//! full-profile sampling with fast cells (or `table3`'s widened em3d
//! windows with ordinary ones) can leave one worker grinding a late, huge
//! cell while the rest sit idle. [`CellQueue`] fixes both ends:
//!
//! * cells are ranked by a deterministic cost estimate and dealt
//!   longest-processing-time-first round-robin across per-worker deques, so
//!   expensive cells start early;
//! * an idle worker first drains its own deque, then **steals from the back
//!   of the busiest sibling**, so load imbalance self-corrects no matter
//!   how wrong the estimate was.
//!
//! Scheduling never affects results: each cell is a pure function of
//! (grid, cell), and records are reassembled in grid enumeration order —
//! the byte-identity guarantee is scheduler-independent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::grid::{Cell, ExperimentGrid, Metric};

/// Deterministic relative cost estimate for one cell, in simulated cycles.
///
/// Static cells are free (no simulation); raw cells run one system over the
/// cell's sampling profile; normalized cells run a matched pair (model and
/// baseline), i.e. twice the work.
pub fn cell_cost(grid: &ExperimentGrid, cell: &Cell) -> u64 {
    let systems = match grid.metric() {
        Metric::Static => return 0,
        Metric::Raw => 1,
        Metric::Normalized => 2,
    };
    let sample = grid.cell_sample(cell);
    systems * (sample.warmup + sample.window * sample.windows as u64)
}

/// A work-stealing queue over cell indices.
///
/// Built once per run from the cells to execute; workers call
/// [`pop`](CellQueue::pop) with their worker id until it returns `None`.
#[derive(Debug)]
pub struct CellQueue {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl CellQueue {
    /// Distributes `indices` (cell indices into the grid) across `workers`
    /// local deques, longest-processing-time-first.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(grid: &ExperimentGrid, indices: &[usize], workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let mut ranked: Vec<usize> = indices.to_vec();
        // Stable descending cost sort: ties keep grid order, so the deal is
        // fully deterministic.
        ranked.sort_by_key(|&i| std::cmp::Reverse(cell_cost(grid, &grid.cells()[i])));
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (n, &cell) in ranked.iter().enumerate() {
            queues[n % workers].push_back(cell);
        }
        CellQueue {
            queues: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// How many cells have been taken from a sibling's deque rather than
    /// the popper's own. Under a fixed pop schedule (no real threads) the
    /// count is deterministic — the microbench counters mode drains a
    /// queue that way to snapshot scheduler behaviour machine-independently.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Next cell for `worker`: front of its own deque, else stolen from the
    /// back of the sibling with the most queued work. Returns `None` only
    /// when every deque is empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        if let Some(i) = self.queues[worker]
            .lock()
            .expect("worker panicked holding queue lock")
            .pop_front()
        {
            return Some(i);
        }
        // Steal from the deepest sibling's back: the back holds the
        // cheapest cells of that worker's deal, which are the cheapest to
        // migrate (the victim keeps its in-order expensive head).
        loop {
            let victim = self
                .queues
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != worker)
                .max_by_key(|(_, q)| q.lock().expect("queue lock").len())?;
            let (_, queue) = victim;
            // Bind before matching: a guard living in a match scrutinee
            // survives the whole match, and the None arm locks every queue
            // below — including the victim's, which would self-deadlock.
            let stolen = queue.lock().expect("queue lock").pop_back();
            match stolen {
                Some(i) => {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(i);
                }
                // Raced with the victim draining its own queue; rescan, and
                // give up once every queue reads empty.
                None => {
                    if self
                        .queues
                        .iter()
                        .all(|q| q.lock().expect("queue lock").is_empty())
                    {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfigPatch;
    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_workloads::Workload;

    fn grid_with_override() -> ExperimentGrid {
        ExperimentGrid::builder("t", "t")
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .sample_override(
                "moldyn",
                SampleConfig {
                    warmup: 10_000,
                    window: 10_000,
                    windows: 20,
                },
            )
            .workloads(vec![
                Workload::by_name("sparse").unwrap(),
                Workload::by_name("moldyn").unwrap(),
            ])
            .modes(&[ExecutionMode::Reunion])
            .patches(vec![ConfigPatch::new("a"), ConfigPatch::new("b")])
            .build()
    }

    #[test]
    fn cost_reflects_metric_and_sample() {
        let grid = grid_with_override();
        let sparse = &grid.cells()[0];
        let moldyn = &grid.cells()[2];
        assert!(cell_cost(&grid, moldyn) > cell_cost(&grid, sparse));
        let statics = ExperimentGrid::builder("s", "s")
            .metric(Metric::Static)
            .workloads(vec![Workload::by_name("sparse").unwrap()])
            .build();
        assert_eq!(cell_cost(&statics, &statics.cells()[0]), 0);
    }

    #[test]
    fn queue_drains_every_cell_exactly_once() {
        let grid = grid_with_override();
        let indices: Vec<usize> = (0..grid.cells().len()).collect();
        for workers in [1usize, 2, 3, 8] {
            let queue = CellQueue::new(&grid, &indices, workers);
            let mut seen = vec![0u32; grid.cells().len()];
            for worker in (0..workers).cycle() {
                match queue.pop(worker) {
                    Some(i) => seen[i] += 1,
                    None => break,
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "{workers} workers must drain each cell once: {seen:?}"
            );
        }
    }

    #[test]
    fn expensive_cells_are_dealt_first() {
        let grid = grid_with_override();
        let indices: Vec<usize> = (0..grid.cells().len()).collect();
        let queue = CellQueue::new(&grid, &indices, 2);
        // The two moldyn cells (indices 2 and 3) dominate the cost ranking,
        // so each worker's first pop must be one of them.
        let first_a = queue.pop(0).unwrap();
        let first_b = queue.pop(1).unwrap();
        assert!(first_a >= 2, "worker 0 should start on a widened cell");
        assert!(first_b >= 2, "worker 1 should start on a widened cell");
    }

    #[test]
    fn idle_worker_steals_from_loaded_sibling() {
        let grid = grid_with_override();
        let indices: Vec<usize> = (0..grid.cells().len()).collect();
        // One worker's deal, then a "foreign" worker id drains it by
        // stealing (pop with the other id never touches its own deque).
        let queue = CellQueue::new(&grid, &indices, 2);
        let mut stolen = 0;
        while queue.pop(1).is_some() {
            stolen += 1;
        }
        assert_eq!(
            stolen,
            indices.len(),
            "worker 1 must steal worker 0's cells"
        );
        // The deal splits cells across both deques; worker 1 drains its
        // own half first, so exactly worker 0's half arrives via steals.
        assert_eq!(
            queue.steals() as usize,
            indices.len() / 2,
            "worker 0's deal must arrive via counted steals"
        );
    }

    /// Under a fixed pop schedule the steal count is a pure function of
    /// the deal — the machine-independent scheduler counter the bench
    /// harness snapshots.
    #[test]
    fn steal_count_is_deterministic_for_fixed_schedule() {
        let grid = grid_with_override();
        let indices: Vec<usize> = (0..grid.cells().len()).collect();
        let count = |workers: usize| {
            let queue = CellQueue::new(&grid, &indices, workers);
            while queue.pop(0).is_some() {}
            queue.steals()
        };
        let first = count(3);
        assert_eq!(first, count(3), "same schedule, same steal count");
        assert!(first > 0, "draining with one worker id must steal");
    }
}

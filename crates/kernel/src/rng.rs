//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms:
//! the matched-pair sampling methodology compares the *same* measurement
//! windows across execution models, and debugging an input-incoherence event
//! requires replaying the exact interleaving. We therefore implement
//! xoshiro256\*\* directly (seeded via splitmix64) instead of relying on a
//! generator whose stream might change between library versions.

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use reunion_kernel::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // identical streams
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// The splitmix64 sequence used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child generator, e.g. one per core or workload.
    ///
    /// The child stream is a deterministic function of the parent seed state
    /// and `stream`, so components can be given decorrelated randomness
    /// without consuming numbers from the parent.
    pub fn derive(&self, stream: u64) -> SimRng {
        let mut mix = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut mix);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below called with zero bound");
        // Lemire-style widening multiply; bias is negligible at our bounds
        // and, crucially, the mapping is deterministic.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "SimRng::pick on empty slice");
        &choices[self.below(choices.len() as u64) as usize]
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Returns the index of the chosen weight. Zero-weight entries are never
    /// chosen unless all weights are zero, in which case index 0 is returned.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut target = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Samples a geometrically distributed count with success probability
    /// `p`: the number of failures before the first success, capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = self.unit_f64().max(1e-18);
        let val = (u.ln() / (1.0 - p).ln()).floor();
        (val as u64).min(cap)
    }
}

/// A deterministic 64-bit hash mixer for value synthesis.
///
/// Used to generate "arbitrary" data deterministically, e.g. the garbage
/// returned by weak phantom requests, as a pure function of its inputs.
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Deterministically hashes `x` into 64 pseudo-random bits without
    /// touching generator state.
    ///
    /// This is the function used to synthesise "arbitrary data" for weak
    /// phantom-request replies: the same `(address, epoch)` always yields the
    /// same garbage, keeping whole-simulation runs reproducible.
    #[inline]
    pub fn hash_value(x: u64) -> u64 {
        mix64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(6);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn derive_is_stable_and_decorrelated() {
        let parent = SimRng::seed_from(9);
        let mut c1 = parent.derive(1);
        let mut c1b = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SimRng::seed_from(10);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn weighted_index_all_zero_falls_back() {
        let mut rng = SimRng::seed_from(11);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    fn geometric_respects_cap() {
        let mut rng = SimRng::seed_from(12);
        for _ in 0..100 {
            assert!(rng.geometric(0.01, 5) <= 5);
        }
    }

    #[test]
    fn hash_value_is_pure() {
        assert_eq!(SimRng::hash_value(123), SimRng::hash_value(123));
        assert_ne!(SimRng::hash_value(123), SimRng::hash_value(124));
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SimRng::seed_from(13);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}

//! Strongly-typed simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation timestamp measured in processor clock cycles.
///
/// `Cycle` is a transparent wrapper around `u64` that prevents accidentally
/// mixing cycle counts with instruction counts or other integers. Arithmetic
/// with plain `u64` offsets is supported because latencies are naturally
/// expressed as raw cycle deltas.
///
/// # Examples
///
/// ```
/// use reunion_kernel::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + 35; // an L2 hit later
/// assert_eq!(later.as_u64(), 35);
/// assert_eq!(later - start, 35);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the timestamp advanced by `delta` cycles, saturating at the
    /// maximum representable cycle.
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Self {
        Cycle(self.0.saturating_add(delta))
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero if
    /// `earlier` is in the future.
    #[inline]
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Number of cycles between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction went negative");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn add_and_subtract_round_trip() {
        let a = Cycle::new(100);
        let b = a + 40;
        assert_eq!(b - a, 40);
        assert_eq!(b.as_u64(), 140);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Cycle::new(5);
        let late = Cycle::new(9);
        assert_eq!(early.saturating_since(late), 0);
        assert_eq!(late.saturating_since(early), 4);
    }

    #[test]
    fn ordering_follows_raw_count() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(7).max(Cycle::new(3)), Cycle::new(7));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(12).to_string(), "cycle 12");
    }

    #[test]
    fn add_assign_advances() {
        let mut c = Cycle::ZERO;
        c += 3;
        assert_eq!(c, Cycle::new(3));
    }
}

//! Inline small-buffer storage for hot per-cycle collections.
//!
//! Several per-core structures hold a handful of entries at a time but are
//! created and torn down per address or per interval — store-buffer chains
//! behind one word, for example, almost never exceed one or two entries.
//! Backing each with a heap `Vec` makes every first push an allocation on
//! a per-memory-access path. [`InlineVec`] keeps the first `N` elements in
//! the struct itself and only spills to the heap past that, so the common
//! case never touches the allocator (the workspace forbids `unsafe`, hence
//! the `Copy + Default` bound instead of a `MaybeUninit` buffer).

/// A vector whose first `N` elements live inline; later elements spill to
/// a heap `Vec`. Drop-in for the small subset of the `Vec` API the
/// simulator's hot paths use.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    spill: Vec<T>,
    len: usize,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty buffer; allocates nothing.
    pub fn new() -> Self {
        InlineVec {
            inline: [T::default(); N],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer has ever outgrown its inline capacity (the spill
    /// allocation is retained by [`clear`](Self::clear), like `Vec`'s).
    #[inline]
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends an element, spilling to the heap past `N` entries.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// The element at `index`, if in bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            Some(&self.inline[index])
        } else {
            Some(&self.spill[index - N])
        }
    }

    /// The most recently pushed element.
    #[inline]
    pub fn last(&self) -> Option<&T> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterates the live elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(N)]
            .iter()
            .chain(self.spill.iter())
    }

    /// Keeps only the elements for which `pred` holds, preserving order.
    pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) {
        let mut kept = 0usize;
        for i in 0..self.len {
            let v = if i < N {
                self.inline[i]
            } else {
                self.spill[i - N]
            };
            if pred(&v) {
                if kept < N {
                    self.inline[kept] = v;
                } else {
                    self.spill[kept - N] = v;
                }
                kept += 1;
            }
        }
        self.spill.truncate(kept.saturating_sub(N));
        self.len = kept;
    }

    /// Empties the buffer, retaining any spill allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.spill.clear();
        self.len = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_last_within_inline() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i * 10);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.last(), Some(&30));
        assert_eq!(v.get(4), None);
    }

    #[test]
    fn spill_preserves_order() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(v.last(), Some(&5));
    }

    #[test]
    fn retain_compacts_across_the_spill_boundary() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(v.len(), 3);
        v.retain(|_| false);
        assert!(v.is_empty());
        assert_eq!(v.last(), None);
    }

    #[test]
    fn clear_resets_but_buffer_is_reusable() {
        let mut v: InlineVec<(u64, u64), 4> = InlineVec::new();
        v.push((1, 2));
        v.push((3, 4));
        v.clear();
        assert!(v.is_empty());
        v.push((5, 6));
        assert_eq!(v.last(), Some(&(5, 6)));
    }

    #[test]
    fn equality_ignores_dead_inline_slots() {
        let mut a: InlineVec<u64, 4> = InlineVec::new();
        let mut b: InlineVec<u64, 4> = InlineVec::new();
        a.push(7);
        a.push(9);
        a.retain(|&x| x == 7);
        b.push(7);
        assert_eq!(a, b);
    }
}

//! Statistics primitives for simulation metrics.
//!
//! The Reunion evaluation reports normalized IPC, events per million
//! instructions, and confidence intervals from matched-pair sampling. These
//! types are the building blocks for all of those.

use std::fmt;

/// A named monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use reunion_kernel::stats::Counter;
///
/// let mut c = Counter::new("input_incoherence_events");
/// c.incr();
/// c.add(2);
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a display name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets the count to zero (used between measurement windows).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Events per million of `per`, the paper's favourite normalization.
    ///
    /// Returns 0 when `per` is zero.
    pub fn per_million(&self, per: u64) -> f64 {
        if per == 0 {
            0.0
        } else {
            self.value as f64 * 1.0e6 / per as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// A fixed-bucket histogram for latency- and occupancy-style metrics.
///
/// Buckets are `[0, width)`, `[width, 2*width)`, …, with a final overflow
/// bucket counting samples at or beyond `width * buckets`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    name: &'static str,
    width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total_samples: u64,
    total_weight: u128,
    max_sample: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `buckets` is zero.
    pub fn new(name: &'static str, width: u64, buckets: usize) -> Self {
        assert!(width > 0 && buckets > 0, "histogram needs nonzero shape");
        Histogram {
            name,
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total_samples: 0,
            total_weight: 0,
            max_sample: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total_samples += 1;
        self.total_weight += u128::from(sample);
        self.max_sample = self.max_sample.max(sample);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.total_samples
    }

    /// Arithmetic mean of all samples, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.total_weight as f64 / self.total_samples as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max_sample
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `idx`, or `None` past the end.
    pub fn bucket(&self, idx: usize) -> Option<u64> {
        self.counts.get(idx).copied()
    }

    /// The histogram's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.overflow = 0;
        self.total_samples = 0;
        self.total_weight = 0;
        self.max_sample = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.2} max={}",
            self.name,
            self.total_samples,
            self.mean(),
            self.max_sample
        )
    }
}

/// A running mean/variance accumulator (Welford's algorithm).
///
/// Used by the sampling harness to compute the 95% confidence intervals the
/// paper targets (±5% on change in performance).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 with no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% confidence interval on the mean, using the
    /// normal approximation (`1.96 * s / sqrt(n)`). Returns 0 for `n < 2`.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} ±{:.4} (n={})",
            self.mean(),
            self.ci95_half_width(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_per_million() {
        let mut c = Counter::new("events");
        c.add(5);
        assert_eq!(c.per_million(1_000_000), 5.0);
        assert_eq!(c.per_million(0), 0.0);
        assert!((c.per_million(500_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new("lat", 10, 3);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(29);
        h.record(30); // overflow
        assert_eq!(h.bucket(0), Some(2));
        assert_eq!(h.bucket(1), Some(1));
        assert_eq!(h.bucket(2), Some(1));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.samples(), 5);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new("m", 1, 4);
        for v in [1, 2, 3] {
            h.record(v);
        }
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonzero shape")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new("bad", 0, 1);
    }

    #[test]
    fn running_stats_mean_and_ci() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.571428).abs() < 1e-3);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn running_stats_degenerate_cases() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        s.push(3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_reset_clears() {
        let mut h = Histogram::new("r", 2, 2);
        h.record(100);
        h.reset();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.max(), 0);
    }
}

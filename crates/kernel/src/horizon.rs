//! The *event horizon* of a time-skipping engine.

use crate::Cycle;

/// Accumulates "earliest cycle anything can happen" candidates from the
/// components of a simulated system.
///
/// A time-skipping engine asks every component for the earliest future
/// cycle at which it could make forward progress (retire, dispatch, deliver
/// a message, fire a timeout, …), folds the answers into an `EventHorizon`,
/// and fast-forwards simulated time to [`next_ready`](Self::next_ready)
/// instead of ticking through the intervening quiescent cycles.
///
/// Two rules make the fold safe for byte-identical dense↔skip execution:
///
/// * **Candidates are lower bounds.** A component may report a cycle at
///   which nothing happens after all (the engine just ticks a no-op), but
///   it must never report a cycle *later* than its first state change.
/// * **`None` means "never (without external input)".** A component with no
///   self-generated future activity stays silent; if every component is
///   silent the engine may fast-forward to the end of its budget.
///
/// # Examples
///
/// ```
/// use reunion_kernel::{Cycle, EventHorizon};
///
/// let mut h = EventHorizon::new();
/// h.note(Cycle::new(40));       // a memory reply
/// h.note_opt(None);             // an idle component
/// h.note_opt(Some(Cycle::new(25))); // a check-stage release
/// assert_eq!(h.next_ready(), Some(Cycle::new(25)));
/// assert_eq!(h.clipped(Cycle::new(20)), Cycle::new(20)); // window boundary
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventHorizon {
    earliest: Option<Cycle>,
}

impl EventHorizon {
    /// An empty horizon (no candidates yet).
    pub fn new() -> Self {
        EventHorizon::default()
    }

    /// Notes a candidate activity cycle, keeping the earliest seen.
    pub fn note(&mut self, at: Cycle) {
        self.earliest = Some(match self.earliest {
            Some(t) if t <= at => t,
            _ => at,
        });
    }

    /// Notes an optional candidate; `None` (no self-activity) is ignored.
    pub fn note_opt(&mut self, at: Option<Cycle>) {
        if let Some(at) = at {
            self.note(at);
        }
    }

    /// The earliest noted candidate, or `None` if every component was
    /// silent.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.earliest
    }

    /// The earliest candidate clipped to an upper `bound` — how a sampling
    /// window keeps a skip from overshooting its boundary. A silent horizon
    /// clips to the bound itself.
    pub fn clipped(&self, bound: Cycle) -> Cycle {
        match self.earliest {
            Some(t) if t < bound => t,
            _ => bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_minimum() {
        let mut h = EventHorizon::new();
        assert_eq!(h.next_ready(), None);
        h.note(Cycle::new(30));
        h.note(Cycle::new(10));
        h.note(Cycle::new(20));
        assert_eq!(h.next_ready(), Some(Cycle::new(10)));
    }

    #[test]
    fn none_candidates_are_silent() {
        let mut h = EventHorizon::new();
        h.note_opt(None);
        assert_eq!(h.next_ready(), None);
        h.note_opt(Some(Cycle::new(7)));
        h.note_opt(None);
        assert_eq!(h.next_ready(), Some(Cycle::new(7)));
    }

    #[test]
    fn clipping_respects_the_bound() {
        let mut h = EventHorizon::new();
        assert_eq!(h.clipped(Cycle::new(100)), Cycle::new(100));
        h.note(Cycle::new(40));
        assert_eq!(h.clipped(Cycle::new(100)), Cycle::new(40));
        assert_eq!(h.clipped(Cycle::new(30)), Cycle::new(30));
    }
}

//! Fast deterministic hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash behind a per-process random
//! seed) is built to resist collision attacks from untrusted keys. The
//! simulator's hot maps — sparse memory words, store buffers, check
//! grants, mute cache images — are keyed by its own addresses and
//! sequence numbers, so that defense buys nothing and costs a long
//! permutation per lookup on paths executed once per simulated memory
//! access. [`FastHasher`] replaces it with a fixed-seed multiply/rotate
//! mix: a few cycles per word, identical across processes and platforms.
//!
//! None of the maps using this hasher have output that depends on
//! iteration order (they are only ever probed point-wise), so swapping
//! the hasher cannot move a byte of any `BENCH_<id>.json` artifact; the
//! fixed seed additionally keeps memory layout reproducible run to run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd 64-bit multiplier (the splitmix64 increment); the multiply smears
/// every input bit across the high output bits, which is where `HashMap`
/// takes its bucket index from.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fixed-seed multiply/rotate hasher for simulator-internal keys.
///
/// Not collision-resistant against adversarial keys — do not use it on
/// input that crosses a trust boundary. Every key the simulator hashes is
/// one it generated itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(23) ^ v).wrapping_mul(MULT);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy keys (word-aligned addresses)
        // still populate the high bits the bucket index is taken from.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(MULT);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` with the deterministic [`FastHasher`] — the map type of the
/// simulator's hot per-access paths. Construct with `FastHashMap::default()`.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` counterpart of [`FastHashMap`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(v: impl Hash) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0xDEAD_BEEFu64), hash_of(0xDEAD_BEEFu64));
        assert_eq!(hash_of((3u64, 7u64)), hash_of((3u64, 7u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Word-aligned addresses differing in one low bit must not collide
        // systematically (they are the dominant key population).
        let hashes: Vec<u64> = (0..1024u64).map(|i| hash_of(i * 8)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collision among aligned keys");
    }

    #[test]
    fn byte_stream_tail_is_length_sensitive() {
        let a = {
            let mut h = FastHasher::default();
            h.write(b"abc");
            h.finish()
        };
        let b = {
            let mut h = FastHasher::default();
            h.write(b"abc\0");
            h.finish()
        };
        assert_ne!(a, b, "zero-padded tails of different lengths collide");
    }

    #[test]
    fn high_bits_spread_for_sequential_keys() {
        // HashMap derives the bucket from the top hash bits; sequential
        // keys must not share them.
        let tops: FastHashSet<u64> = (0..256u64).map(|i| hash_of(i) >> 57).collect();
        assert!(
            tops.len() > 64,
            "only {} distinct top-7-bit values",
            tops.len()
        );
    }
}

//! Cycle-indexed delivery queues.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Width of the near-future bucket ring. One `u64` occupancy bitmask
/// covers the whole window, so "earliest pending bucket" is a single
/// rotate + count-trailing-zeros.
const NEAR_WINDOW: usize = 64;

/// A queue that delivers items at (or after) a chosen simulation cycle.
///
/// `DelayQueue` models every fixed-latency channel in the simulator: the
/// fingerprint swap between the vocal and mute cores, crossbar hops, memory
/// replies. Items pushed for the same delivery cycle pop in FIFO order, which
/// keeps the simulator deterministic.
///
/// Internally this is a three-tier calendar queue rather than one binary
/// heap. Almost every push lands within a few cycles of the consumer's
/// clock, so those go to a 64-cycle ring of per-cycle buckets: push and
/// pop are `O(1)` (a bitmask rotate finds the earliest pending bucket),
/// and [`peek_time`](Self::peek_time) never touches a heap in the common
/// case. Pushes beyond the ring land in a *far* overflow heap and migrate
/// into the ring as the window advances; pushes behind the window (the
/// consumer already popped past that cycle) land in a *past* heap that
/// preserves the original non-monotone `pop_ready` semantics. Ordering is
/// globally `(delivery cycle, push order)` regardless of tier.
///
/// # Examples
///
/// ```
/// use reunion_kernel::{Cycle, DelayQueue};
///
/// let mut q = DelayQueue::new();
/// q.push_at(Cycle::new(5), "fingerprint");
/// assert!(q.pop_ready(Cycle::new(4)).is_none());
/// assert_eq!(q.pop_ready(Cycle::new(5)), Some("fingerprint"));
/// ```
#[derive(Clone, Debug)]
pub struct DelayQueue<T> {
    /// Per-cycle buckets for deliveries in `[base, base + NEAR_WINDOW)`;
    /// bucket contents are `(seq, item)` kept in descending-`seq` order so
    /// the FIFO-next entry pops from the back in `O(1)`. Allocated lazily
    /// on the first push so an untouched queue costs nothing.
    near: Vec<VecDeque<(u64, T)>>,
    /// Bitmask of non-empty `near` buckets, indexed by physical slot.
    occupied: u64,
    /// Buckets whose descending-`seq` invariant may be broken (far-tier
    /// migration interleaves sequence numbers); sorted on first pop.
    dirty: u64,
    /// Physical ring index of the bucket holding cycle `base`.
    head: usize,
    /// Delivery cycle of the ring slot at `head`.
    base: u64,
    /// Deliveries at or beyond `base + NEAR_WINDOW`.
    far: BinaryHeap<Entry<T>>,
    /// Deliveries pushed for cycles the window has already advanced past.
    past: BinaryHeap<Entry<T>>,
    seq: u64,
    len: usize,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    key: Reverse<(u64, u64)>,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue {
            near: Vec::new(),
            occupied: 0,
            dirty: 0,
            head: 0,
            base: 0,
            far: BinaryHeap::new(),
            past: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `item` for delivery at cycle `when`.
    pub fn push_at(&mut self, when: Cycle, item: T) {
        if self.near.is_empty() {
            self.near.resize_with(NEAR_WINDOW, VecDeque::new);
        }
        let seq = self.seq;
        self.seq += 1;
        let w = when.as_u64();
        if self.len == 0 {
            // Empty queue: nothing constrains the window, so re-anchor it
            // on the incoming delivery and take the fast near path.
            self.base = w;
            self.head = 0;
        }
        self.len += 1;
        if w < self.base {
            self.past.push(Entry {
                key: Reverse((w, seq)),
                item,
            });
        } else if w - self.base < NEAR_WINDOW as u64 {
            let slot = (self.head + (w - self.base) as usize) % NEAR_WINDOW;
            // Newest push has the largest seq, so the front keeps the
            // bucket in descending-seq order without marking it dirty.
            self.near[slot].push_front((seq, item));
            self.occupied |= 1 << slot;
        } else {
            self.far.push(Entry {
                key: Reverse((w, seq)),
                item,
            });
        }
    }

    /// Pops the next item whose delivery time is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        let earliest = self.peek_time()?;
        if earliest > now {
            return None;
        }
        self.len -= 1;
        // Every past-tier delivery predates `base`, and every ring slot
        // predates the far tier, so the tiers drain strictly in that order.
        if !self.past.is_empty() {
            return self.past.pop().map(|e| e.item);
        }
        if self.occupied == 0 {
            // Ring empty: jump the window straight to the earliest far
            // delivery and pull the whole overflow prefix in.
            self.base = earliest.as_u64();
            self.head = 0;
            self.migrate_far();
        } else {
            let off = self.first_occupied_offset();
            if off > 0 {
                // Slots in (base, base + off) are empty, so sliding the
                // window forward skips no deliveries.
                self.base += off as u64;
                self.head = (self.head + off) % NEAR_WINDOW;
                self.migrate_far();
            }
        }
        let h = self.head;
        let bucket = &mut self.near[h];
        if self.dirty & (1 << h) != 0 {
            bucket
                .make_contiguous()
                .sort_unstable_by_key(|e| Reverse(e.0));
            self.dirty &= !(1 << h);
        }
        let (_seq, item) = bucket.pop_back().expect("occupied bucket has an item");
        if bucket.is_empty() {
            self.occupied &= !(1 << h);
            self.dirty &= !(1 << h);
        }
        Some(item)
    }

    /// Returns the delivery time of the earliest pending item.
    pub fn peek_time(&self) -> Option<Cycle> {
        if let Some(e) = self.past.peek() {
            return Some(Cycle::new(e.key.0 .0));
        }
        if self.occupied != 0 {
            return Some(Cycle::new(self.base + self.first_occupied_offset() as u64));
        }
        self.far.peek().map(|e| Cycle::new(e.key.0 .0))
    }

    /// Returns the earliest cycle at which [`pop_ready`](Self::pop_ready)
    /// can deliver an item — the queue's contribution to an event-driven
    /// engine's *next-ready* horizon.
    ///
    /// Equivalent to [`peek_time`](Self::peek_time); peeking never disturbs
    /// the FIFO order of same-cycle items, so a time-skipping engine may
    /// interleave `peek_next_ready` probes with pops freely and still
    /// deliver same-cycle items in push order.
    pub fn peek_next_ready(&self) -> Option<Cycle> {
        self.peek_time()
    }

    /// Number of pending items (ready or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending items.
    pub fn clear(&mut self) {
        for bucket in &mut self.near {
            bucket.clear();
        }
        self.occupied = 0;
        self.dirty = 0;
        self.head = 0;
        self.base = 0;
        self.far.clear();
        self.past.clear();
        self.len = 0;
    }

    /// Logical offset (cycles past `base`) of the earliest non-empty ring
    /// bucket. Callers must ensure `occupied != 0`.
    fn first_occupied_offset(&self) -> usize {
        // Rotating by `head` puts the `base` bucket's bit at position 0.
        self.occupied
            .rotate_right(self.head as u32)
            .trailing_zeros() as usize
    }

    /// Pulls every far-tier delivery that now falls inside the ring window
    /// into its bucket, marking touched buckets for a seq re-sort.
    fn migrate_far(&mut self) {
        let horizon = self.base.saturating_add(NEAR_WINDOW as u64);
        while let Some(e) = self.far.peek() {
            let w = e.key.0 .0;
            if w >= horizon {
                break;
            }
            let e = self.far.pop().expect("peeked entry");
            let slot = (self.head + (w - self.base) as usize) % NEAR_WINDOW;
            self.near[slot].push_front((e.key.0 .1, e.item));
            self.occupied |= 1 << slot;
            self.dirty |= 1 << slot;
        }
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn delivers_in_time_order() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(10), "b");
        q.push_at(Cycle::new(5), "a");
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("a"));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("b"));
        assert_eq!(q.pop_ready(Cycle::new(10)), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = DelayQueue::new();
        for i in 0..5 {
            q.push_at(Cycle::new(3), i);
        }
        for i in 0..5 {
            assert_eq!(q.pop_ready(Cycle::new(3)), Some(i));
        }
    }

    #[test]
    fn not_ready_until_time() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(7), ());
        assert!(q.pop_ready(Cycle::new(6)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_ready(Cycle::new(7)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = DelayQueue::new();
        assert!(q.peek_time().is_none());
        q.push_at(Cycle::new(9), 1);
        q.push_at(Cycle::new(2), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
    }

    #[test]
    fn peek_next_ready_preserves_fifo_tie_order() {
        // Three items scheduled for the same cycle: peeking the horizon
        // (repeatedly, interleaved with pops) must not perturb the FIFO
        // order of the tie.
        let mut q = DelayQueue::new();
        for i in 0..3 {
            q.push_at(Cycle::new(4), i);
            assert_eq!(q.peek_next_ready(), Some(Cycle::new(4)));
        }
        for expect in 0..3 {
            assert_eq!(q.peek_next_ready(), Some(Cycle::new(4)));
            assert_eq!(q.peek_next_ready(), q.peek_time());
            assert_eq!(q.pop_ready(Cycle::new(4)), Some(expect));
        }
        assert_eq!(q.peek_next_ready(), None);
    }

    #[test]
    fn peek_next_ready_tracks_earliest_across_mixed_times() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(9), "late");
        q.push_at(Cycle::new(2), "early-a");
        q.push_at(Cycle::new(2), "early-b");
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(2)));
        assert_eq!(q.pop_ready(Cycle::new(2)), Some("early-a"));
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(2)));
        assert_eq!(q.pop_ready(Cycle::new(2)), Some("early-b"));
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(9)));
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(1), 1);
        q.clear();
        assert!(q.is_empty());
        // A cleared queue keeps working, including across tiers.
        q.push_at(Cycle::new(500), 2);
        q.push_at(Cycle::new(3), 3);
        assert_eq!(q.pop_ready(Cycle::new(1_000)), Some(3));
        assert_eq!(q.pop_ready(Cycle::new(1_000)), Some(2));
    }

    #[test]
    fn far_tier_migrates_in_push_order() {
        // Everything lands far beyond the 64-cycle ring, some of it on the
        // same cycle: migration back into the ring must preserve global
        // (time, push-order) delivery.
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(0), -1);
        for i in 0..4 {
            q.push_at(Cycle::new(1_000), i);
        }
        q.push_at(Cycle::new(999), 100);
        assert_eq!(q.pop_ready(Cycle::new(2_000)), Some(-1));
        assert_eq!(q.pop_ready(Cycle::new(2_000)), Some(100));
        for i in 0..4 {
            assert_eq!(q.pop_ready(Cycle::new(2_000)), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn pushes_behind_the_window_still_deliver_first() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(50), "future");
        q.push_at(Cycle::new(100), "later");
        assert_eq!(q.pop_ready(Cycle::new(60)), Some("future"));
        // The window has advanced past cycle 10; a late push for it must
        // still beat everything scheduled afterwards.
        q.push_at(Cycle::new(10), "stale");
        assert_eq!(q.peek_time(), Some(Cycle::new(10)));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some("stale"));
        assert_eq!(q.pop_ready(Cycle::new(100)), Some("later"));
    }

    #[test]
    fn window_wraps_without_losing_or_reordering() {
        // March the window forward far enough to wrap the 64-slot ring
        // several times while items straddle the boundary.
        let mut q = DelayQueue::new();
        let mut expected = VecDeque::new();
        for i in 0u64..200 {
            q.push_at(Cycle::new(i * 3), i);
            expected.push_back(i);
        }
        for now in 0u64..=600 {
            while let Some(v) = q.pop_ready(Cycle::new(now)) {
                assert_eq!(Some(v), expected.pop_front());
            }
        }
        assert!(q.is_empty());
        assert!(expected.is_empty());
    }

    /// Randomized differential test against the original single-heap
    /// implementation's semantics: pop the globally smallest
    /// `(when, push order)` entry whenever its time has come, under
    /// non-monotone `now` probes that exercise all three tiers.
    #[test]
    fn matches_single_heap_reference() {
        let mut rng = SimRng::seed_from(0xDE1A_90E5);
        for round in 0..20 {
            let mut q = DelayQueue::new();
            let mut model: Vec<(u64, u64)> = Vec::new(); // (when, seq) -> seq is the payload
            let mut seq = 0u64;
            let mut clock = 0u64;
            for _ in 0..400 {
                if rng.chance(0.55) {
                    // Mix near, far, and (relative to a moving clock) past pushes.
                    let when = match rng.next_u64() % 4 {
                        0 => clock + rng.next_u64() % 8,
                        1 => clock + rng.next_u64() % 60,
                        2 => clock + 64 + rng.next_u64() % 500,
                        _ => (clock).saturating_sub(rng.next_u64() % 40),
                    };
                    q.push_at(Cycle::new(when), seq);
                    model.push((when, seq));
                    seq += 1;
                } else {
                    // Occasionally probe earlier than the current clock.
                    let now = if rng.chance(0.2) {
                        clock.saturating_sub(rng.next_u64() % 20)
                    } else {
                        clock + rng.next_u64() % 30
                    };
                    clock = clock.max(now);
                    let expect_peek = model.iter().min().map(|&(w, _)| w);
                    assert_eq!(q.peek_time(), expect_peek.map(Cycle::new), "round {round}");
                    let got = q.pop_ready(Cycle::new(now));
                    let expect = match model.iter().enumerate().min_by_key(|(_, &e)| e) {
                        Some((idx, &(w, s))) if w <= now => {
                            model.swap_remove(idx);
                            Some(s)
                        }
                        _ => None,
                    };
                    assert_eq!(got, expect, "round {round} now {now}");
                    assert_eq!(q.len(), model.len());
                }
            }
            // Drain fully and compare the tail order.
            let mut tail = Vec::new();
            while let Some(v) = q.pop_ready(Cycle::new(u64::MAX - 64)) {
                tail.push(v);
            }
            let mut expect_tail: Vec<(u64, u64)> = model.clone();
            expect_tail.sort_unstable();
            assert_eq!(
                tail,
                expect_tail.iter().map(|&(_, s)| s).collect::<Vec<_>>()
            );
            assert!(q.is_empty());
        }
    }
}

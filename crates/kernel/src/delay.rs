//! Cycle-indexed delivery queues.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A queue that delivers items at (or after) a chosen simulation cycle.
///
/// `DelayQueue` models every fixed-latency channel in the simulator: the
/// fingerprint swap between the vocal and mute cores, crossbar hops, memory
/// replies. Items pushed for the same delivery cycle pop in FIFO order, which
/// keeps the simulator deterministic.
///
/// # Examples
///
/// ```
/// use reunion_kernel::{Cycle, DelayQueue};
///
/// let mut q = DelayQueue::new();
/// q.push_at(Cycle::new(5), "fingerprint");
/// assert!(q.pop_ready(Cycle::new(4)).is_none());
/// assert_eq!(q.pop_ready(Cycle::new(5)), Some("fingerprint"));
/// ```
#[derive(Clone, Debug)]
pub struct DelayQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    key: Reverse<(u64, u64)>,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` for delivery at cycle `when`.
    pub fn push_at(&mut self, when: Cycle, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((when.as_u64(), seq)),
            item,
        });
    }

    /// Pops the next item whose delivery time is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.peek_time()? <= now {
            self.heap.pop().map(|e| e.item)
        } else {
            None
        }
    }

    /// Returns the delivery time of the earliest pending item.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| Cycle::new(e.key.0 .0))
    }

    /// Returns the earliest cycle at which [`pop_ready`](Self::pop_ready)
    /// can deliver an item — the queue's contribution to an event-driven
    /// engine's *next-ready* horizon.
    ///
    /// Equivalent to [`peek_time`](Self::peek_time); peeking never disturbs
    /// the FIFO order of same-cycle items, so a time-skipping engine may
    /// interleave `peek_next_ready` probes with pops freely and still
    /// deliver same-cycle items in push order.
    pub fn peek_next_ready(&self) -> Option<Cycle> {
        self.peek_time()
    }

    /// Number of pending items (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending items.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(10), "b");
        q.push_at(Cycle::new(5), "a");
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("a"));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some("b"));
        assert_eq!(q.pop_ready(Cycle::new(10)), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = DelayQueue::new();
        for i in 0..5 {
            q.push_at(Cycle::new(3), i);
        }
        for i in 0..5 {
            assert_eq!(q.pop_ready(Cycle::new(3)), Some(i));
        }
    }

    #[test]
    fn not_ready_until_time() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(7), ());
        assert!(q.pop_ready(Cycle::new(6)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_ready(Cycle::new(7)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = DelayQueue::new();
        assert!(q.peek_time().is_none());
        q.push_at(Cycle::new(9), 1);
        q.push_at(Cycle::new(2), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
    }

    #[test]
    fn peek_next_ready_preserves_fifo_tie_order() {
        // Three items scheduled for the same cycle: peeking the horizon
        // (repeatedly, interleaved with pops) must not perturb the FIFO
        // order of the tie.
        let mut q = DelayQueue::new();
        for i in 0..3 {
            q.push_at(Cycle::new(4), i);
            assert_eq!(q.peek_next_ready(), Some(Cycle::new(4)));
        }
        for expect in 0..3 {
            assert_eq!(q.peek_next_ready(), Some(Cycle::new(4)));
            assert_eq!(q.peek_next_ready(), q.peek_time());
            assert_eq!(q.pop_ready(Cycle::new(4)), Some(expect));
        }
        assert_eq!(q.peek_next_ready(), None);
    }

    #[test]
    fn peek_next_ready_tracks_earliest_across_mixed_times() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(9), "late");
        q.push_at(Cycle::new(2), "early-a");
        q.push_at(Cycle::new(2), "early-b");
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(2)));
        assert_eq!(q.pop_ready(Cycle::new(2)), Some("early-a"));
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(2)));
        assert_eq!(q.pop_ready(Cycle::new(2)), Some("early-b"));
        assert_eq!(q.peek_next_ready(), Some(Cycle::new(9)));
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = DelayQueue::new();
        q.push_at(Cycle::new(1), 1);
        q.clear();
        assert!(q.is_empty());
    }
}

//! An indexed event horizon: a tournament tree over per-component bounds.

use crate::Cycle;

/// Sentinel for "silent" slots; a real bound of `u64::MAX` cycles is
/// unreachable in any practical simulation, so the tree treats it as silent.
const SILENT: u64 = u64::MAX;

/// A tournament (min) tree over a fixed set of per-component activity
/// bounds — the indexed counterpart of folding [`EventHorizon`] candidates
/// linearly.
///
/// A time-skipping engine with `P` components pays `O(P)` per step to
/// recompute the minimum bound with a linear fold, even when only one
/// component changed. `HorizonTree` keeps one slot per component and a
/// binary tournament above them, so:
///
/// * [`set`](Self::set) — updating one component's bound — is `O(log P)`
///   (and exits early on the first unchanged ancestor),
/// * [`min`](Self::min) — the earliest bound over all components — is
///   `O(1)`,
/// * [`ready_slots`](Self::ready_slots) — every component whose bound has
///   arrived — is `O(k log P)` for `k` ready slots, pruning whole subtrees
///   whose minimum lies in the future.
///
/// Slots follow the same two rules as [`EventHorizon`] candidates: a bound
/// is a conservative *lower* bound on the component's next state change,
/// and `None` means "never, absent external input".
///
/// # Examples
///
/// ```
/// use reunion_kernel::{Cycle, HorizonTree};
///
/// let mut tree = HorizonTree::new(4);
/// tree.set(0, Some(Cycle::new(40)));
/// tree.set(2, Some(Cycle::new(25)));
/// tree.set(3, None); // permanently idle
/// assert_eq!(tree.min(), Some(Cycle::new(25)));
///
/// let mut ready = Vec::new();
/// tree.ready_slots(Cycle::new(30), &mut ready);
/// assert_eq!(ready, vec![2]);
/// ```
///
/// [`EventHorizon`]: crate::EventHorizon
#[derive(Clone, Debug)]
pub struct HorizonTree {
    /// Flat 1-indexed binary min-tree; the leaf for slot `i` lives at
    /// `cap + i` and internal node `n` holds `min(nodes[2n], nodes[2n+1])`.
    nodes: Vec<u64>,
    /// Leaf capacity (number of slots rounded up to a power of two).
    cap: usize,
    /// Number of addressable component slots.
    slots: usize,
}

impl HorizonTree {
    /// Creates a tree of `slots` components, all initially silent.
    pub fn new(slots: usize) -> Self {
        let cap = slots.max(1).next_power_of_two();
        HorizonTree {
            nodes: vec![SILENT; 2 * cap],
            cap,
            slots,
        }
    }

    /// Number of component slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Sets slot `slot`'s activity bound (`None` = silent), repairing the
    /// tournament path above it. `O(log P)`, exiting at the first ancestor
    /// whose minimum is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()`.
    pub fn set(&mut self, slot: usize, bound: Option<Cycle>) {
        assert!(slot < self.slots, "slot {slot} out of {}", self.slots);
        let value = bound.map_or(SILENT, |c| c.as_u64());
        let mut node = self.cap + slot;
        if self.nodes[node] == value {
            return;
        }
        self.nodes[node] = value;
        while node > 1 {
            node /= 2;
            let min = self.nodes[2 * node].min(self.nodes[2 * node + 1]);
            if self.nodes[node] == min {
                break;
            }
            self.nodes[node] = min;
        }
    }

    /// The bound currently stored for `slot`.
    pub fn get(&self, slot: usize) -> Option<Cycle> {
        match self.nodes[self.cap + slot] {
            SILENT => None,
            v => Some(Cycle::new(v)),
        }
    }

    /// The earliest bound over all slots, or `None` when every slot is
    /// silent. `O(1)`: the tournament root.
    pub fn min(&self) -> Option<Cycle> {
        match self.nodes[1] {
            SILENT => None,
            v => Some(Cycle::new(v)),
        }
    }

    /// Whether every slot is silent.
    pub fn is_silent(&self) -> bool {
        self.nodes[1] == SILENT
    }

    /// Appends (in ascending slot order) every slot whose bound is
    /// `<= now` onto `out`, pruning subtrees whose minimum lies beyond
    /// `now`.
    pub fn ready_slots(&self, now: Cycle, out: &mut Vec<usize>) {
        self.walk(1, now.as_u64(), out);
    }

    fn walk(&self, node: usize, bound: u64, out: &mut Vec<usize>) {
        if self.nodes[node] > bound {
            return;
        }
        if node >= self.cap {
            let slot = node - self.cap;
            // Padding leaves (slot >= self.slots) are always SILENT and
            // never pass the bound check above.
            out.push(slot);
            return;
        }
        // Left child first: ready slots come out in ascending index order,
        // which is what keeps downstream arbitration deterministic.
        self.walk(2 * node, bound, out);
        self.walk(2 * node + 1, bound, out);
    }

    /// Silences every slot (between runs, before a full bound rebuild).
    pub fn clear(&mut self) {
        self.nodes.fill(SILENT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn c(v: u64) -> Cycle {
        Cycle::new(v)
    }

    #[test]
    fn empty_tree_is_silent() {
        let tree = HorizonTree::new(0);
        assert!(tree.is_silent());
        assert_eq!(tree.min(), None);
        let mut out = Vec::new();
        tree.ready_slots(c(1_000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn min_tracks_updates_and_silence() {
        let mut tree = HorizonTree::new(5);
        assert_eq!(tree.min(), None);
        tree.set(3, Some(c(30)));
        tree.set(1, Some(c(10)));
        tree.set(4, Some(c(20)));
        assert_eq!(tree.min(), Some(c(10)));
        tree.set(1, Some(c(50)));
        assert_eq!(tree.min(), Some(c(20)));
        tree.set(4, None);
        assert_eq!(tree.min(), Some(c(30)));
        tree.set(3, None);
        assert_eq!(tree.min(), Some(c(50)));
        tree.set(1, None);
        assert!(tree.is_silent());
    }

    #[test]
    fn ready_slots_come_out_in_ascending_order() {
        let mut tree = HorizonTree::new(7);
        for (slot, at) in [(6, 5), (0, 5), (3, 9), (2, 5), (5, 4)] {
            tree.set(slot, Some(c(at)));
        }
        let mut out = Vec::new();
        tree.ready_slots(c(5), &mut out);
        assert_eq!(out, vec![0, 2, 5, 6]);
        out.clear();
        tree.ready_slots(c(3), &mut out);
        assert!(out.is_empty());
        out.clear();
        tree.ready_slots(c(100), &mut out);
        assert_eq!(out, vec![0, 2, 3, 5, 6]);
    }

    #[test]
    fn clear_silences_everything() {
        let mut tree = HorizonTree::new(3);
        tree.set(0, Some(c(1)));
        tree.set(2, Some(c(2)));
        tree.clear();
        assert!(tree.is_silent());
        assert_eq!(tree.get(0), None);
        // The tree stays usable after a clear.
        tree.set(1, Some(c(7)));
        assert_eq!(tree.min(), Some(c(7)));
    }

    /// Randomized differential test against a plain linear fold.
    #[test]
    fn matches_linear_fold_under_random_updates() {
        let mut rng = SimRng::seed_from(0x7125_EED5);
        for &slots in &[1usize, 2, 3, 8, 13, 16, 33] {
            let mut tree = HorizonTree::new(slots);
            let mut model: Vec<Option<u64>> = vec![None; slots];
            for _ in 0..500 {
                let slot = (rng.next_u64() % slots as u64) as usize;
                let bound = if rng.chance(0.2) {
                    None
                } else {
                    Some(rng.next_u64() % 1_000)
                };
                tree.set(slot, bound.map(Cycle::new));
                model[slot] = bound;

                let expect_min = model.iter().flatten().min().copied();
                assert_eq!(tree.min(), expect_min.map(Cycle::new));
                assert_eq!(tree.is_silent(), expect_min.is_none());

                let probe = rng.next_u64() % 1_200;
                let mut got = Vec::new();
                tree.ready_slots(Cycle::new(probe), &mut got);
                let expect: Vec<usize> = model
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_some_and(|v| v <= probe))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, expect, "slots={slots} probe={probe}");
            }
        }
    }
}

//! Simulation kernel for the Reunion CMP simulator.
//!
//! This crate provides the deterministic, dependency-free infrastructure that
//! every other crate in the workspace builds on:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp.
//! * [`SimRng`] — a seeded, reproducible pseudo-random number generator
//!   (xoshiro256\*\*). Determinism matters here: the Reunion evaluation relies
//!   on matched-pair sampling, and reproducing an input-incoherence event
//!   requires replaying the exact interleaving that produced it.
//! * [`stats`] — counters, histograms and ratio statistics used to report the
//!   paper's metrics (IPC, incoherence events per million instructions, …).
//! * [`DelayQueue`] — a cycle-indexed delivery queue used to model fixed
//!   latencies (fingerprint channels, memory replies, crossbar hops), with a
//!   [`peek_next_ready`](DelayQueue::peek_next_ready) accessor for
//!   event-driven engines. Internally a three-tier calendar queue: `O(1)`
//!   push/pop for near-future deliveries, heap tiers for the overflow.
//! * [`EventHorizon`] — the fold a time-skipping engine uses to combine
//!   per-component "earliest activity" reports into the next cycle worth
//!   simulating.
//! * [`HorizonTree`] — the indexed form of the same horizon: a tournament
//!   tree over per-component bounds with `O(log P)` update, `O(1)` minimum,
//!   and pruned ready-set extraction, for engines that tick many components
//!   selectively.
//! * [`hash`] — a fixed-seed fast hasher ([`FastHashMap`]) for the
//!   simulator's hot point-lookup maps, where SipHash's DoS resistance is
//!   pure overhead.
//! * [`InlineVec`] — small-buffer storage that keeps the common ≤`N`-entry
//!   case of per-cycle collections off the allocator.
//!
//! # Examples
//!
//! ```
//! use reunion_kernel::{Cycle, SimRng, stats::Counter};
//!
//! let mut rng = SimRng::seed_from(0xC0FFEE);
//! let mut retired = Counter::new("retired_instructions");
//! let now = Cycle::ZERO;
//! if rng.chance(0.5) {
//!     retired.add(4);
//! }
//! assert!(now + 10 > now);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cycle;
mod delay;
pub mod hash;
mod horizon;
mod rng;
mod smallbuf;
pub mod stats;
mod tree;

pub use cycle::Cycle;
pub use delay::DelayQueue;
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use horizon::EventHorizon;
pub use rng::SimRng;
pub use smallbuf::InlineVec;
pub use tree::HorizonTree;

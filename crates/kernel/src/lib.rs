//! Simulation kernel for the Reunion CMP simulator.
//!
//! This crate provides the deterministic, dependency-free infrastructure that
//! every other crate in the workspace builds on:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp.
//! * [`SimRng`] — a seeded, reproducible pseudo-random number generator
//!   (xoshiro256\*\*). Determinism matters here: the Reunion evaluation relies
//!   on matched-pair sampling, and reproducing an input-incoherence event
//!   requires replaying the exact interleaving that produced it.
//! * [`stats`] — counters, histograms and ratio statistics used to report the
//!   paper's metrics (IPC, incoherence events per million instructions, …).
//! * [`DelayQueue`] — a cycle-indexed delivery queue used to model fixed
//!   latencies (fingerprint channels, memory replies, crossbar hops).
//!
//! # Examples
//!
//! ```
//! use reunion_kernel::{Cycle, SimRng, stats::Counter};
//!
//! let mut rng = SimRng::seed_from(0xC0FFEE);
//! let mut retired = Counter::new("retired_instructions");
//! let now = Cycle::ZERO;
//! if rng.chance(0.5) {
//!     retired.add(4);
//! }
//! assert!(now + 10 > now);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod delay;
mod rng;
pub mod stats;

pub use cycle::Cycle;
pub use delay::DelayQueue;
pub use rng::SimRng;

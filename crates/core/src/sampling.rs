//! Measurement methodology: warm-up, windows, matched-pair normalization.
//!
//! The paper samples many brief measurements (SimFlex matched-pair
//! sampling): checkpoints with warm caches, 100k cycles of pipeline/queue
//! warming, then 50k-cycle measurement windows targeting 95% confidence
//! intervals. We reproduce the same structure at laptop scale: one long
//! run per configuration, split into windows after a warm-up phase, with
//! per-window matched-pair IPC ratios against the baseline.

use std::fmt;
use std::str::FromStr;

use reunion_kernel::stats::RunningStats;
use reunion_obs::{ObsReport, TraceEvent};
use reunion_workloads::Workload;

use crate::{CmpSystem, ExecutionMode, Measurement, NormalizedResult, SystemConfig, SystemStats};

/// The two sampling profiles of the evaluation.
///
/// Every experiment binary accepts `--profile full|fast` (and the
/// `REUNION_FAST=1` / `REUNION_PROFILE` environment overrides) and maps the
/// choice onto a [`SampleConfig`] via [`Profile::sample`]:
///
/// * [`Profile::Full`] — the paper's methodology (100k-cycle warm-up,
///   four 50k-cycle windows). This is the profile the fidelity bands in
///   ROADMAP.md must ultimately hold under, and the run that is worth
///   sharding across machines (`REUNION_SHARD`).
/// * [`Profile::Fast`] — a shortened profile for smoke runs and the CI
///   trajectory gate (20k-cycle warm-up, two 20k-cycle windows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Profile {
    /// The paper's full sampling methodology.
    #[default]
    Full,
    /// Shortened sampling for smoke runs and CI.
    Fast,
}

impl Profile {
    /// The sampling parameters this profile selects.
    pub fn sample(self) -> SampleConfig {
        match self {
            Profile::Full => SampleConfig::full(),
            Profile::Fast => SampleConfig::fast(),
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Profile::Full => "full",
            Profile::Fast => "fast",
        })
    }
}

impl FromStr for Profile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(Profile::Full),
            "fast" => Ok(Profile::Fast),
            other => Err(format!("unknown profile {other:?} (expected full|fast)")),
        }
    }
}

/// Sampling parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Cycles of warm-up before the first window (caches, predictors,
    /// pipelines).
    pub warmup: u64,
    /// Cycles per measurement window.
    pub window: u64,
    /// Number of measurement windows.
    pub windows: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        // The paper warms for 100k cycles and measures 50k; we take several
        // windows to build confidence intervals.
        SampleConfig {
            warmup: 100_000,
            window: 50_000,
            windows: 4,
        }
    }
}

impl SampleConfig {
    /// A fast profile for tests and smoke runs.
    pub fn quick() -> Self {
        SampleConfig {
            warmup: 10_000,
            window: 10_000,
            windows: 2,
        }
    }

    /// The paper's full profile: 100k-cycle warm-up, four 50k-cycle
    /// measurement windows (same as [`Default`]).
    pub fn full() -> Self {
        SampleConfig::default()
    }

    /// The shortened profile used by `REUNION_FAST=1` smoke runs and the CI
    /// trajectory gate: 20k-cycle warm-up, two 20k-cycle windows.
    pub fn fast() -> Self {
        SampleConfig {
            warmup: 20_000,
            window: 20_000,
            windows: 2,
        }
    }

    /// This profile with the measured portion widened `factor`-fold (more
    /// windows, same window length), leaving the warm-up untouched.
    ///
    /// Used where a workload's event rate is below the single-event
    /// resolution of the shared profile — e.g. `table3` widens em3d until
    /// one input-incoherence event resolves inside the paper's band.
    pub fn widened(&self, factor: usize) -> Self {
        SampleConfig {
            warmup: self.warmup,
            window: self.window,
            windows: self.windows * factor.max(1),
        }
    }

    /// This profile [`widened`](Self::widened) until the measured portion
    /// covers at least `cycles` simulated cycles.
    ///
    /// Event-rate floors are naturally cycle counts, not factors: the same
    /// target yields an equivalent measured window under the full and fast
    /// profiles, so a rare event that resolves under one resolves under
    /// both.
    pub fn widened_to_cycles(&self, cycles: u64) -> Self {
        let per_factor = (self.window * self.windows as u64).max(1);
        self.widened(cycles.div_ceil(per_factor) as usize)
    }
}

/// Measures one (configuration, workload) point.
pub fn measure(cfg: &SystemConfig, workload: &Workload, sample: &SampleConfig) -> Measurement {
    let mut sys = CmpSystem::new(cfg, workload);
    sys.run(sample.warmup);

    let mut ipc = RunningStats::new();
    let mut totals = SystemStats::default();
    let mut obs = ObsReport::new();
    for _ in 0..sample.windows {
        sys.begin_window();
        sys.run(sample.window);
        let w = sys.window_stats();
        ipc.push(w.ipc());
        accumulate(&mut totals, &w);
        if cfg.obs.enabled {
            obs.merge(&sys.window_obs());
        }
    }
    let (obs, trace) = finish_obs(&mut sys, cfg.obs.enabled, obs);

    Measurement {
        workload: workload.name(),
        ipc: ipc.mean(),
        ipc_ci95: ipc.ci95_half_width(),
        totals,
        windows: sample.windows,
        skipped_cycles: sys.skipped_cycles(),
        obs,
        trace,
    }
}

/// Completes a measurement's observability state: fills the cumulative
/// fields (`skipped_cycles`, trace counters) the per-window merges can't
/// see, and drains the pairs' bounded traces. `(None, [])` when disabled.
fn finish_obs(
    sys: &mut CmpSystem,
    enabled: bool,
    mut obs: ObsReport,
) -> (Option<ObsReport>, Vec<TraceEvent>) {
    if !enabled {
        return (None, Vec::new());
    }
    obs.skipped_cycles = sys.skipped_cycles();
    let (pushed, evicted, trace) = sys.take_trace();
    obs.trace_events = pushed;
    obs.trace_evicted = evicted;
    (Some(obs), trace)
}

/// Measures a model configuration and the matching non-redundant baseline
/// on the same workload and seeds, and reports the per-window matched-pair
/// normalized IPC.
pub fn normalized_ipc(
    model_cfg: &SystemConfig,
    workload: &Workload,
    sample: &SampleConfig,
) -> NormalizedResult {
    let mut base_cfg = model_cfg.clone();
    base_cfg.mode = ExecutionMode::NonRedundant;

    let mut model_sys = CmpSystem::new(model_cfg, workload);
    let mut base_sys = CmpSystem::new(&base_cfg, workload);
    model_sys.run(sample.warmup);
    base_sys.run(sample.warmup);

    let mut ratios = RunningStats::new();
    let mut model_ipc = RunningStats::new();
    let mut base_ipc = RunningStats::new();
    let mut model_totals = SystemStats::default();
    let mut base_totals = SystemStats::default();
    let mut model_obs = ObsReport::new();
    let mut base_obs = ObsReport::new();

    for _ in 0..sample.windows {
        model_sys.begin_window();
        base_sys.begin_window();
        model_sys.run(sample.window);
        base_sys.run(sample.window);
        let mw = model_sys.window_stats();
        let bw = base_sys.window_stats();
        if bw.ipc() > 0.0 {
            ratios.push(mw.ipc() / bw.ipc());
        }
        model_ipc.push(mw.ipc());
        base_ipc.push(bw.ipc());
        accumulate(&mut model_totals, &mw);
        accumulate(&mut base_totals, &bw);
        if model_cfg.obs.enabled {
            model_obs.merge(&model_sys.window_obs());
            base_obs.merge(&base_sys.window_obs());
        }
    }
    let (model_obs, model_trace) = finish_obs(&mut model_sys, model_cfg.obs.enabled, model_obs);
    let (base_obs, base_trace) = finish_obs(&mut base_sys, base_cfg.obs.enabled, base_obs);

    NormalizedResult {
        workload: workload.name(),
        normalized_ipc: ratios.mean(),
        ci95: ratios.ci95_half_width(),
        model: Measurement {
            workload: workload.name(),
            ipc: model_ipc.mean(),
            ipc_ci95: model_ipc.ci95_half_width(),
            totals: model_totals,
            windows: sample.windows,
            skipped_cycles: model_sys.skipped_cycles(),
            obs: model_obs,
            trace: model_trace,
        },
        baseline: Measurement {
            workload: workload.name(),
            ipc: base_ipc.mean(),
            ipc_ci95: base_ipc.ci95_half_width(),
            totals: base_totals,
            windows: sample.windows,
            skipped_cycles: base_sys.skipped_cycles(),
            obs: base_obs,
            trace: base_trace,
        },
    }
}

fn accumulate(into: &mut SystemStats, w: &SystemStats) {
    into.user_instructions += w.user_instructions;
    into.cycles += w.cycles;
    into.mismatches += w.mismatches;
    into.input_incoherence += w.input_incoherence;
    into.recoveries += w.recoveries;
    into.phase2 += w.phase2;
    into.failures += w.failures;
    into.sync_requests += w.sync_requests;
    into.tlb_misses += w.tlb_misses;
    into.phantom_garbage_fills += w.phantom_garbage_fills;
    into.serializing_stall_cycles += w.serializing_stall_cycles;
    into.reexec_penalty_cycles += w.reexec_penalty_cycles;
    into.peak_check_events = into.peak_check_events.max(w.peak_check_events);
    into.peak_store_chain = into.peak_store_chain.max(w.peak_store_chain);
    into.store_chain_spills += w.store_chain_spills;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_positive_ipc() {
        let workload = Workload::by_name("sparse").unwrap();
        let cfg = SystemConfig::small_test(ExecutionMode::NonRedundant);
        let m = measure(&cfg, &workload, &SampleConfig::quick());
        assert!(m.ipc > 0.1, "ipc {}", m.ipc);
        assert_eq!(m.windows, 2);
    }

    #[test]
    fn normalized_reunion_is_at_most_one_ish() {
        let workload = Workload::by_name("sparse").unwrap();
        let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
        let n = normalized_ipc(&cfg, &workload, &SampleConfig::quick());
        assert!(n.normalized_ipc > 0.2, "normalized {}", n.normalized_ipc);
        assert!(n.normalized_ipc < 1.15, "normalized {}", n.normalized_ipc);
        assert!(n.baseline.ipc >= n.model.ipc * 0.8);
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = SampleConfig::quick();
        let d = SampleConfig::default();
        assert!(q.warmup < d.warmup);
        assert!(q.windows <= d.windows);
    }
}

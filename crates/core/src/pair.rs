//! Logical processor pairs: output comparison, recovery and re-execution.

use std::collections::VecDeque;

use reunion_cpu::{CheckEvent, Core, ReleaseGrant};
use reunion_kernel::stats::Counter;
use reunion_kernel::{Cycle, EventHorizon};
use reunion_mem::MemorySystem;
use reunion_obs::{EventTrace, LatencyHistogram, TraceEvent, TraceKind};

use crate::CheckBus;

/// Which phase of the re-execution protocol a recovering pair is in
/// (Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Normal paired execution.
    Normal,
    /// Phase one: rollback + single-step + synchronizing request.
    Phase1,
    /// Phase two: vocal ARF copied to the mute, then as phase one.
    Phase2,
}

/// Statistics maintained per logical processor pair.
#[derive(Clone, Debug)]
pub struct PairStats {
    /// Fingerprint mismatches detected, including escalations raised while
    /// a recovery is already in flight.
    pub mismatches: Counter,
    /// Input-incoherence events: mismatches first detected during normal
    /// paired execution (Table 3's measured metric). Escalations within an
    /// ongoing recovery belong to the same event and are not re-counted.
    pub input_incoherence: Counter,
    /// Recoveries begun (rollback + re-execution protocol).
    pub recoveries: Counter,
    /// Recoveries that escalated to the phase-two ARF copy.
    pub phase2_recoveries: Counter,
    /// Detected-unrecoverable failures (fingerprint aliasing swallowed a
    /// divergence that re-execution could not repair).
    pub failures: Counter,
    /// Synchronizing requests issued.
    pub sync_requests: Counter,
    /// Fingerprint intervals successfully compared.
    pub intervals_compared: Counter,
    /// Cycles this pair's fingerprint messages spent queued behind the
    /// shared check bus (always zero when the bus is unmodeled).
    pub check_bus_waits: Counter,
    /// Check round-trip latencies (vocal interval reaching the check stage
    /// to its release grant), recorded only when observability is enabled.
    pub check_latency: LatencyHistogram,
    /// Inter-arrival gaps between input-incoherence events, recorded only
    /// when observability is enabled.
    pub incoherence_gaps: LatencyHistogram,
}

impl PairStats {
    fn new() -> Self {
        PairStats {
            mismatches: Counter::new("mismatches"),
            input_incoherence: Counter::new("input_incoherence"),
            recoveries: Counter::new("recoveries"),
            phase2_recoveries: Counter::new("phase2_recoveries"),
            failures: Counter::new("failures"),
            sync_requests: Counter::new("sync_requests"),
            intervals_compared: Counter::new("intervals_compared"),
            check_bus_waits: Counter::new("check_bus_waits"),
            check_latency: LatencyHistogram::new(),
            incoherence_gaps: LatencyHistogram::new(),
        }
    }

    /// Resets every counter (between measurement windows).
    pub fn reset(&mut self) {
        self.mismatches.reset();
        self.input_incoherence.reset();
        self.recoveries.reset();
        self.phase2_recoveries.reset();
        self.failures.reset();
        self.sync_requests.reset();
        self.intervals_compared.reset();
        self.check_bus_waits.reset();
        self.check_latency = LatencyHistogram::new();
        self.incoherence_gaps = LatencyHistogram::new();
    }
}

/// A vocal/mute pair with its comparison channel and recovery logic.
///
/// The driver owns both cores, forwards fingerprints between them with the
/// configured one-way comparison latency, grants retirement releases on
/// matches, and runs the two-phase re-execution protocol on mismatches.
///
/// For the Strict model the same driver additionally streams the vocal
/// core's load values into the mute core's load-value queue.
#[derive(Debug)]
pub struct PairDriver {
    vocal: Core,
    mute: Core,
    comparison_latency: u64,
    strict: bool,
    vocal_events: VecDeque<CheckEvent>,
    mute_events: VecDeque<CheckEvent>,
    /// Reused transfer buffer for the strict oracle's per-tick LVQ copy —
    /// drained every tick, so its capacity amortizes to zero allocations.
    lvq_xfer: Vec<u64>,
    phase: RecoveryPhase,
    sync_interval: Option<u64>,
    /// A detected fingerprint difference whose *physical* comparison time
    /// (both fingerprints exchanged) has not yet arrived. Recovery must not
    /// begin before the later fingerprint has crossed the channel.
    pending_mismatch: Option<Cycle>,
    recovery_started: u64,
    stats: PairStats,
    /// Cycles after which a stuck recovery escalates (defensive bound; the
    /// protocol itself guarantees forward progress, Lemma 2).
    recovery_timeout: u64,
    /// Gate for all per-tick observability recording; kept as one bool so
    /// the hot path pays a single predictable branch when off.
    obs_enabled: bool,
    /// Logical-processor index stamped into trace events.
    lp: u32,
    /// Cycle of the previous input-incoherence event (never reset across
    /// windows: inter-arrival gaps span window boundaries).
    last_incoherence: Option<u64>,
    /// Bounded check-protocol event trace, present only under
    /// observability (boxed: it never burdens the default-off layout).
    trace: Option<Box<EventTrace>>,
}

impl PairDriver {
    /// Pairs a vocal and a mute core.
    ///
    /// Both cores must run the same program and have been constructed with
    /// the same pair seed; `strict` selects the strict-input-replication
    /// oracle (the mute core must then have `strict_lvq` set).
    pub fn new(vocal: Core, mute: Core, comparison_latency: u64, strict: bool) -> Self {
        PairDriver {
            vocal,
            mute,
            comparison_latency,
            strict,
            vocal_events: VecDeque::new(),
            mute_events: VecDeque::new(),
            lvq_xfer: Vec::new(),
            phase: RecoveryPhase::Normal,
            sync_interval: None,
            pending_mismatch: None,
            recovery_started: 0,
            stats: PairStats::new(),
            recovery_timeout: 100_000,
            obs_enabled: false,
            lp: 0,
            last_incoherence: None,
            trace: None,
        }
    }

    /// Turns on observability recording for this pair: check-latency and
    /// incoherence-gap histograms plus a bounded event trace of `trace_cap`
    /// events, stamped with logical-processor index `lp`.
    pub fn enable_observability(&mut self, lp: u32, trace_cap: usize) {
        self.obs_enabled = true;
        self.lp = lp;
        self.trace = Some(Box::new(EventTrace::with_capacity(trace_cap)));
    }

    /// The pair's event trace, if observability is enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_deref()
    }

    /// Mutable access to the event trace (draining for a per-cell dump).
    pub fn trace_mut(&mut self) -> Option<&mut EventTrace> {
        self.trace.as_deref_mut()
    }

    fn trace_event(&mut self, cycle: u64, kind: TraceKind, interval_id: u64) {
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TraceEvent {
                cycle,
                lp: self.lp,
                kind,
                interval_id,
            });
        }
    }

    /// The vocal core.
    pub fn vocal(&self) -> &Core {
        &self.vocal
    }

    /// The mute core (mutable access supports fault-injection tests).
    pub fn mute_mut(&mut self) -> &mut Core {
        &mut self.mute
    }

    /// The vocal core, mutably (fault injection, interrupt scheduling).
    pub fn vocal_mut(&mut self) -> &mut Core {
        &mut self.vocal
    }

    /// The mute core.
    pub fn mute(&self) -> &Core {
        &self.mute
    }

    /// Pair statistics.
    pub fn stats(&self) -> &PairStats {
        &self.stats
    }

    /// Mutable pair statistics (window resets).
    pub fn stats_mut(&mut self) -> &mut PairStats {
        &mut self.stats
    }

    /// Current recovery phase.
    pub fn phase(&self) -> RecoveryPhase {
        self.phase
    }

    /// Retired user instructions, counted on the vocal core (the single
    /// output of the sphere of replication).
    pub fn retired_user(&self) -> u64 {
        self.vocal.retired_user()
    }

    /// Replicates an external interrupt to both cores: the vocal chooses
    /// the fingerprint interval, both service it at the same instruction
    /// boundary (§4.3).
    pub fn deliver_interrupt(&mut self) {
        let interval = self.vocal.next_interval_id() + 1;
        self.vocal.schedule_interrupt_at(interval);
        self.mute.schedule_interrupt_at(interval);
    }

    /// Advances the pair by one cycle.
    ///
    /// `bus` is the CMP's shared check bus; with the default unmodeled bus
    /// (occupancy 0) every grant is the identity and the pair behaves as if
    /// it owned a private comparison channel.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemorySystem, bus: &mut CheckBus) {
        self.tick_compute(now);
        self.tick_commit(now, mem, bus);
    }

    /// The pure compute half of [`tick`](Self::tick): transfers the
    /// leader's load values into the trailing LVQ (pair-private state) and
    /// runs both cores' [`Core::tick_compute`]. Touches nothing outside
    /// this pair, so many pairs' compute phases may run concurrently — on
    /// worker threads — in any order.
    pub fn tick_compute(&mut self, now: Cycle) {
        if self.strict {
            self.vocal.drain_load_values_into(&mut self.lvq_xfer);
            self.mute.push_lvq(self.lvq_xfer.drain(..));
        }
        self.vocal.tick_compute(now);
        self.mute.tick_compute(now);
    }

    /// The serial half of [`tick`](Self::tick): finishes both cores'
    /// ticks (every memory access, in vocal-then-mute order), then runs
    /// comparison, release-grant arbitration on the shared check bus, and
    /// recovery — exactly the shared-resource work whose order defines the
    /// simulation's counters. Must run for each pair in logical-processor
    /// order after every pair's [`tick_compute`](Self::tick_compute) at
    /// the same cycle; that schedule is byte-identical to serial
    /// execution because a memory-free core tick commutes with everything
    /// outside its own core.
    pub fn tick_commit(&mut self, now: Cycle, mem: &mut MemorySystem, bus: &mut CheckBus) {
        self.vocal.tick_commit(now, mem);
        self.mute.tick_commit(now, mem);

        self.collect_events();
        if let Some(detect_at) = self.pending_mismatch {
            // Recovery begins when the later fingerprint has arrived and
            // the comparator has seen the difference.
            if now >= detect_at {
                self.pending_mismatch = None;
                self.begin_mismatch_recovery(now, mem);
            }
        } else {
            self.compare_and_release(now, mem, bus);
        }
        if self.phase != RecoveryPhase::Normal {
            self.drive_recovery(now, mem);
        }
    }

    /// The earliest cycle `>= from` at which this pair could make forward
    /// progress — its contribution to the time-skipping engine's
    /// [`EventHorizon`].
    ///
    /// Folds both cores' [`Core::next_activity_at`] bounds with the
    /// driver-level deadlines only the pair knows about:
    ///
    /// * a detected fingerprint difference whose physical comparison time
    ///   has not yet arrived (`pending_mismatch`),
    /// * the defensive recovery-escalation timeout while a re-execution is
    ///   in flight,
    /// * uncompared events sitting in both comparison queues (possible only
    ///   transiently; the comparator must run on the next cycle).
    ///
    /// `None` means the pair is permanently idle absent external input.
    pub fn next_activity_at(&self, from: Cycle) -> Option<Cycle> {
        // Fast path: a core that can act on the very next cycle bounds the
        // whole pair — nothing can be earlier than `from`.
        let vocal = self.vocal.next_activity_at(from);
        if vocal == Some(from) {
            return vocal;
        }
        let mute = self.mute.next_activity_at(from);
        if mute == Some(from) {
            return mute;
        }
        let mut horizon = EventHorizon::new();
        horizon.note_opt(vocal);
        horizon.note_opt(mute);
        if let Some(detect_at) = self.pending_mismatch {
            horizon.note(detect_at.max(from));
        }
        if self.phase != RecoveryPhase::Normal {
            let escalate = self.recovery_started + self.recovery_timeout + 1;
            horizon.note(Cycle::new(escalate).max(from));
        }
        if !self.vocal_events.is_empty() && !self.mute_events.is_empty() {
            horizon.note(from);
        }
        horizon.next_ready()
    }

    /// Whether the pair can never act again without external input: both
    /// cores [quiescent](Core::is_quiescent), no recovery in flight, and no
    /// deferred mismatch pending. Leftover events on *one* comparison queue
    /// are irrelevant — the comparator needs both.
    pub fn is_quiescent(&self) -> bool {
        self.vocal.is_quiescent()
            && self.mute.is_quiescent()
            && self.phase == RecoveryPhase::Normal
            && self.pending_mismatch.is_none()
            && (self.vocal_events.is_empty() || self.mute_events.is_empty())
    }

    /// Escalation bookkeeping shared by deferred-mismatch recovery.
    fn begin_mismatch_recovery(&mut self, now: Cycle, mem: &mut MemorySystem) {
        self.stats.mismatches.incr();
        if self.obs_enabled {
            let interval = self
                .vocal_events
                .front()
                .map(|e| e.fingerprint.interval_id)
                .unwrap_or(0);
            self.trace_event(now.as_u64(), TraceKind::Mismatch, interval);
        }
        match self.phase {
            RecoveryPhase::Normal => {
                self.stats.input_incoherence.incr();
                if self.obs_enabled {
                    // Inter-arrival gap to the previous incoherence event.
                    // `last_incoherence` survives window resets: a gap
                    // straddling a boundary is credited to the window in
                    // which the later event lands.
                    if let Some(prev) = self.last_incoherence {
                        self.stats
                            .incoherence_gaps
                            .record(now.as_u64().saturating_sub(prev));
                    }
                    self.last_incoherence = Some(now.as_u64());
                }
                self.start_recovery(now, mem, RecoveryPhase::Phase1)
            }
            RecoveryPhase::Phase1 => {
                self.stats.phase2_recoveries.incr();
                self.start_recovery(now, mem, RecoveryPhase::Phase2);
            }
            RecoveryPhase::Phase2 => self.declare_failure(now, mem),
        }
    }

    fn collect_events(&mut self) {
        let ve = self.vocal.epoch();
        let me = self.mute.epoch();
        self.vocal
            .drain_check_events_into(ve, &mut self.vocal_events);
        self.mute.drain_check_events_into(me, &mut self.mute_events);
    }

    fn compare_and_release(&mut self, now: Cycle, mem: &mut MemorySystem, bus: &mut CheckBus) {
        loop {
            let (Some(v), Some(m)) = (self.vocal_events.front(), self.mute_events.front()) else {
                return;
            };
            // Drop stale-epoch events defensively.
            if v.epoch != self.vocal.epoch() {
                self.vocal_events.pop_front();
                continue;
            }
            if m.epoch != self.mute.epoch() {
                self.mute_events.pop_front();
                continue;
            }

            let structural_divergence = v.fingerprint.interval_id != m.fingerprint.interval_id;
            let matched = !structural_divergence
                && v.fingerprint.hash == m.fingerprint.hash
                && v.fingerprint.count == m.fingerprint.count;

            // Both fingerprints cross the shared check bus regardless of
            // whether they match; each departure waits for a bus slot
            // (identity when the bus is unmodeled) and then propagates for
            // `comparison_latency`.
            let v_sent = bus.grant(v.ready_at);
            let m_sent = bus.grant(m.ready_at);
            if bus.is_modeled() {
                let queued =
                    v_sent.saturating_since(v.ready_at) + m_sent.saturating_since(m.ready_at);
                self.stats.check_bus_waits.add(queued);
            }

            if matched {
                let interval_id = v.fingerprint.interval_id;
                // The cores swap fingerprints: each can retire once its
                // partner's fingerprint has crossed the channel.
                let mut release_v = v.ready_at.max(m_sent + self.comparison_latency);
                let mut release_m = m.ready_at.max(v_sent + self.comparison_latency);
                // A serializing instruction's release grant makes a return
                // trip to the waiting core; that message shares the same
                // bus. (The strict oracle keeps checking off the
                // serializing path, so only Reunion pays here.)
                if !self.strict && bus.is_modeled() {
                    if v.serializing {
                        let sent = bus.grant(release_v);
                        self.stats
                            .check_bus_waits
                            .add(sent.saturating_since(release_v));
                        release_v = sent;
                    }
                    if m.serializing {
                        let sent = bus.grant(release_m);
                        self.stats
                            .check_bus_waits
                            .add(sent.saturating_since(release_m));
                        release_m = sent;
                    }
                }
                self.vocal.grant(ReleaseGrant {
                    epoch: v.epoch,
                    interval_id,
                    at: release_v,
                });
                self.mute.grant(ReleaseGrant {
                    epoch: m.epoch,
                    interval_id,
                    at: release_m,
                });
                self.stats.intervals_compared.incr();
                if self.obs_enabled {
                    // Round trip as the vocal core experiences it: interval
                    // ready at the check stage -> release grant back.
                    self.stats
                        .check_latency
                        .record(release_v.saturating_since(v.ready_at));
                    let issued_at = v.ready_at.as_u64();
                    self.trace_event(issued_at, TraceKind::Issue, interval_id);
                    self.trace_event(release_v.as_u64(), TraceKind::Grant, interval_id);
                }
                self.vocal_events.pop_front();
                self.mute_events.pop_front();

                // A successful comparison of the synchronized instruction
                // completes the re-execution protocol.
                if self.phase != RecoveryPhase::Normal && self.sync_interval == Some(interval_id) {
                    self.finish_recovery();
                }
            } else {
                // The difference becomes observable once both fingerprints
                // have crossed the channel.
                let detect_at = v_sent.max(m_sent) + self.comparison_latency;
                if now >= detect_at {
                    self.begin_mismatch_recovery(now, mem);
                } else {
                    self.pending_mismatch = Some(detect_at);
                }
                return;
            }
        }
    }

    fn start_recovery(&mut self, now: Cycle, mem: &mut MemorySystem, phase: RecoveryPhase) {
        self.stats.recoveries.incr();
        if self.obs_enabled {
            self.trace_event(now.as_u64(), TraceKind::Recovery, 0);
        }
        // Both cores first apply every already-compared interval so their
        // rollback lands on identical safe states (the common case of the
        // protocol; Figure 4).
        self.vocal.drain_granted(now, mem);
        self.mute.drain_granted(now, mem);
        self.vocal.rollback(now);
        self.mute.rollback(now);
        if phase == RecoveryPhase::Phase2 {
            // Definition 9 / Figure 4: initialize the mute ARF from the
            // vocal's safe state.
            let safe = self.vocal.arch_state().clone();
            self.mute.copy_arch_state_from(&safe);
        }
        self.vocal_events.clear();
        self.mute_events.clear();
        self.vocal.begin_single_step();
        self.mute.begin_single_step();
        self.phase = phase;
        self.sync_interval = None;
        self.pending_mismatch = None;
        self.recovery_started = now.as_u64();
    }

    fn drive_recovery(&mut self, now: Cycle, mem: &mut MemorySystem) {
        if let (Some(v), Some(m)) = (self.vocal.pending_sync(), self.mute.pending_sync()) {
            if v.addr != m.addr || v.rmw != m.rmw {
                // The two halves disagree about the very instruction to
                // synchronize: their architectural state diverged. Escalate.
                match self.phase {
                    RecoveryPhase::Phase1 => {
                        self.stats.mismatches.incr();
                        self.stats.phase2_recoveries.incr();
                        self.start_recovery(now, mem, RecoveryPhase::Phase2);
                    }
                    _ => self.declare_failure(now, mem),
                }
                return;
            }
            // Both halves have reached the first memory read: issue one
            // synchronizing request on behalf of the pair.
            if std::env::var("REUNION_DEBUG_SYNC").is_ok() {
                eprintln!("sync addr={:#x}", v.addr.as_u64());
            }
            self.stats.sync_requests.incr();
            let outcome = mem.sync_access(now, self.vocal.l1(), self.mute.l1(), v.addr, v.rmw);
            // The fulfilled instruction's fingerprint interval is the one
            // whose successful comparison ends the protocol.
            self.sync_interval = Some(self.vocal.next_interval_id());
            self.vocal.fulfill_sync(outcome.value, outcome.done_at);
            self.mute.fulfill_sync(outcome.value, outcome.done_at);
        } else if now.as_u64().saturating_sub(self.recovery_started) > self.recovery_timeout {
            // Defensive: the protocol guarantees progress, but a halted or
            // wedged core must not hang the simulation.
            match self.phase {
                RecoveryPhase::Phase1 => {
                    self.stats.phase2_recoveries.incr();
                    self.start_recovery(now, mem, RecoveryPhase::Phase2);
                }
                _ => self.declare_failure(now, mem),
            }
        }
    }

    fn finish_recovery(&mut self) {
        self.vocal.end_single_step();
        self.mute.end_single_step();
        self.phase = RecoveryPhase::Normal;
        self.sync_interval = None;
    }

    /// Phase two also failed: raise a detected, uncorrectable error
    /// (Figure 4's "Failure"). The simulation records it and forces the
    /// pair back into a consistent state so the run can continue.
    fn declare_failure(&mut self, now: Cycle, mem: &mut MemorySystem) {
        self.stats.failures.incr();
        if self.obs_enabled {
            self.trace_event(now.as_u64(), TraceKind::Failure, 0);
        }
        self.vocal.drain_granted(now, mem);
        self.mute.drain_granted(now, mem);
        self.vocal.rollback(now);
        self.mute.rollback(now);
        let safe = self.vocal.arch_state().clone();
        self.mute.copy_arch_state_from(&safe);
        self.vocal_events.clear();
        self.mute_events.clear();
        self.vocal.end_single_step();
        self.mute.end_single_step();
        self.phase = RecoveryPhase::Normal;
        self.sync_interval = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use reunion_cpu::CoreConfig;
    use reunion_isa::{Instruction as I, Program, RegId};
    use reunion_mem::{MemConfig, MemorySystem, Owner, PhantomStrength};

    fn r(i: u8) -> RegId {
        RegId::new(i)
    }

    /// Builds a Reunion pair plus a free-running remote vocal writer used
    /// to provoke races.
    struct Rig {
        mem: MemorySystem,
        pair: PairDriver,
        bus: CheckBus,
        now: u64,
    }

    impl Rig {
        fn new(code: Vec<I>, strict: bool) -> Rig {
            let program = Arc::new(Program::new("rig", code).unwrap());
            let mut mem = MemorySystem::new(MemConfig::small());
            let vl1 = mem.register_l1(Owner::vocal(0));
            let ml1 = mem.register_l1(Owner::mute(0));
            let mut vcfg = CoreConfig::default().checked();
            let mut mcfg = CoreConfig::default().checked();
            if strict {
                mcfg.strict_lvq = true;
            }
            vcfg.phantom = PhantomStrength::Global;
            mcfg.phantom = PhantomStrength::Global;
            let mut vocal = Core::new(vcfg, program.clone(), vl1, 42);
            if strict {
                vocal.set_lvq_producer(true);
            }
            let mut mute = Core::new(mcfg, program, ml1, 42);
            mute.set_mute(true);
            Rig {
                mem,
                pair: PairDriver::new(vocal, mute, 10, strict),
                bus: CheckBus::new(0),
                now: 0,
            }
        }

        fn run(&mut self, cycles: u64) {
            for _ in 0..cycles {
                self.pair
                    .tick(Cycle::new(self.now), &mut self.mem, &mut self.bus);
                self.now += 1;
            }
        }
    }

    fn counting_loop() -> Vec<I> {
        vec![
            I::add_imm(r(1), r(1), 1),
            I::alu_imm(reunion_isa::AluOp::Xor, r(2), r(1), 0x55),
            I::jump(0),
        ]
    }

    #[test]
    fn matched_pair_retires_in_lockstep() {
        let mut rig = Rig::new(counting_loop(), false);
        rig.run(2000);
        let v = rig.pair.vocal().retired_user();
        let m = rig.pair.mute().retired_user();
        assert!(v > 200, "vocal retired {v}");
        assert!(m > 200);
        assert_eq!(rig.pair.stats().mismatches.value(), 0);
        // Architectural states agree at every retired boundary; compare
        // the registers of the earlier core against a rerun is overkill —
        // equality of retired counts within slip bounds suffices here.
        assert!((v as i64 - m as i64).unsigned_abs() < 600);
    }

    #[test]
    fn comparison_latency_delays_retirement() {
        let mut fast = Rig::new(counting_loop(), false);
        fast.pair.comparison_latency = 0;
        fast.run(2000);
        let mut slow = Rig::new(counting_loop(), false);
        slow.pair.comparison_latency = 40;
        slow.run(2000);
        assert!(
            fast.pair.retired_user() >= slow.pair.retired_user(),
            "latency 0: {}, latency 40: {}",
            fast.pair.retired_user(),
            slow.pair.retired_user()
        );
    }

    #[test]
    fn congested_check_bus_slows_retirement() {
        let mut private = Rig::new(counting_loop(), false);
        private.run(4000);
        let mut shared = Rig::new(counting_loop(), false);
        // Severe reciprocal bandwidth: 8 bus cycles per fingerprint message,
        // two messages per compared interval.
        shared.bus = CheckBus::new(8);
        shared.run(4000);
        assert!(
            shared.pair.retired_user() < private.pair.retired_user(),
            "bus occupancy 8: {} vs private channel: {}",
            shared.pair.retired_user(),
            private.pair.retired_user()
        );
        assert!(shared.bus.messages() > 0);
        assert!(
            shared.pair.stats().check_bus_waits.value() > 0,
            "a single pair saturates an occupancy-8 bus at interval 1"
        );
        assert_eq!(private.pair.stats().check_bus_waits.value(), 0);
    }

    #[test]
    fn serializing_instructions_cost_more_with_checking() {
        let serial_loop = vec![I::add_imm(r(1), r(1), 1), I::trap(), I::jump(0)];
        let mut rig = Rig::new(serial_loop, false);
        rig.run(4000);
        let with_traps = rig.pair.retired_user();
        let mut plain = Rig::new(counting_loop(), false);
        plain.run(4000);
        assert!(
            with_traps * 2 < plain.pair.retired_user(),
            "traps {with_traps} vs plain {}",
            plain.pair.retired_user()
        );
    }

    #[test]
    fn race_causes_mismatch_and_recovery_makes_progress() {
        // Pair repeatedly loads a shared word; a remote vocal writer
        // flips it, racing the two halves (Figure 1).
        let reader = vec![
            I::load_imm(r(1), 0x4000),
            I::load(r(2), r(1), 0), // racy load
            I::alu_imm(reunion_isa::AluOp::Add, r(3), r(2), 1),
            I::jump(1),
        ];
        let program = Arc::new(Program::new("reader", reader).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        mem.poke(reunion_isa::Addr::new(0x4000), 0);
        let vl1 = mem.register_l1(Owner::vocal(0));
        let ml1 = mem.register_l1(Owner::mute(0));
        let wl1 = mem.register_l1(Owner::vocal(1));
        let cfg = CoreConfig::default().checked();
        let vocal = Core::new(cfg.clone(), program.clone(), vl1, 9);
        let mut mute = Core::new(cfg, program, ml1, 9);
        mute.set_mute(true);
        let mut pair = PairDriver::new(vocal, mute, 10, false);
        let mut bus = CheckBus::new(0);

        let mut wrote = 0u64;
        for now in 0..60_000u64 {
            // Remote writer drains a store every 500 cycles, racing the
            // pair's loads.
            if now % 500 == 250 {
                wrote += 1;
                mem.drain_store(Cycle::new(now), wl1, reunion_isa::Addr::new(0x4000), wrote);
            }
            pair.tick(Cycle::new(now), &mut mem, &mut bus);
        }
        assert!(
            pair.stats().mismatches.value() > 0,
            "the race must cause input incoherence"
        );
        assert!(pair.stats().sync_requests.value() > 0);
        assert_eq!(pair.stats().failures.value(), 0);
        assert!(
            pair.retired_user() > 1000,
            "forward progress despite recoveries: {}",
            pair.retired_user()
        );
        assert_eq!(pair.phase(), RecoveryPhase::Normal);
    }

    #[test]
    fn soft_error_on_mute_is_detected_and_recovered() {
        let mut rig = Rig::new(counting_loop(), false);
        rig.pair.mute_mut().inject_soft_error_at(50, 7);
        rig.run(5000);
        assert_eq!(rig.pair.stats().mismatches.value(), 1);
        assert_eq!(rig.pair.stats().recoveries.value(), 1);
        assert_eq!(rig.pair.stats().failures.value(), 0);
        assert!(rig.pair.retired_user() > 100);
    }

    #[test]
    fn soft_error_on_vocal_is_detected_and_recovered() {
        let mut rig = Rig::new(counting_loop(), false);
        rig.pair.vocal_mut().inject_soft_error_at(50, 3);
        rig.run(5000);
        assert_eq!(rig.pair.stats().mismatches.value(), 1);
        assert_eq!(rig.pair.stats().recoveries.value(), 1);
        // The corrupted value never retired: r1 ends equal on both cores.
        assert_eq!(
            rig.pair.vocal().arch_state().regs.read(r(1)),
            rig.pair.mute().arch_state().regs.read(r(1))
        );
    }

    #[test]
    fn retired_divergence_escalates_to_phase2() {
        // Simulate fingerprint aliasing having let divergent state retire:
        // corrupt the mute's retired ARF directly, then force detection.
        let code = vec![
            I::load_imm(r(1), 0x5000),
            I::load(r(2), r(1), 0),
            I::alu(reunion_isa::AluOp::Add, r(3), r(3), r(2)),
            I::jump(1),
        ];
        let mut rig = Rig::new(code, false);
        rig.run(1000);
        // Corrupt mute safe state: r1 (the load base) diverges, so the two
        // halves will even disagree about which address to synchronize.
        // (r1 has no in-flight writers, so the corruption survives into the
        // retired state — as if an aliased fingerprint had let it retire.)
        let mut corrupted = rig.pair.mute().arch_state().clone();
        corrupted.regs.write(r(1), 0x5008);
        rig.pair.mute_mut().copy_arch_state_from(&corrupted);
        rig.run(20_000);
        assert!(
            rig.pair.stats().phase2_recoveries.value() >= 1,
            "phase 2 must trigger"
        );
        assert_eq!(rig.pair.stats().failures.value(), 0);
        assert_eq!(rig.pair.phase(), RecoveryPhase::Normal);
        // After phase 2 the pair agrees again and keeps retiring.
        assert_eq!(
            rig.pair.vocal().arch_state().regs.read(r(3)),
            rig.pair.mute().arch_state().regs.read(r(3))
        );
    }

    #[test]
    fn strict_pair_never_mismatches_under_races() {
        let reader = vec![
            I::load_imm(r(1), 0x6000),
            I::load(r(2), r(1), 0),
            I::jump(1),
        ];
        let program = Arc::new(Program::new("sreader", reader).unwrap());
        let mut mem = MemorySystem::new(MemConfig::small());
        let vl1 = mem.register_l1(Owner::vocal(0));
        let ml1 = mem.register_l1(Owner::mute(0));
        let wl1 = mem.register_l1(Owner::vocal(1));
        let vcfg = CoreConfig::default().checked();
        let mut mcfg = CoreConfig::default().checked();
        mcfg.strict_lvq = true;
        let mut vocal = Core::new(vcfg, program.clone(), vl1, 5);
        vocal.set_lvq_producer(true);
        let mut mute = Core::new(mcfg, program, ml1, 5);
        mute.set_mute(true);
        let mut pair = PairDriver::new(vocal, mute, 10, true);
        let mut bus = CheckBus::new(0);
        for now in 0..30_000u64 {
            if now % 300 == 150 {
                mem.drain_store(Cycle::new(now), wl1, reunion_isa::Addr::new(0x6000), now);
            }
            pair.tick(Cycle::new(now), &mut mem, &mut bus);
        }
        assert_eq!(
            pair.stats().mismatches.value(),
            0,
            "strict input replication is immune to input incoherence"
        );
        assert!(pair.retired_user() > 1000);
    }

    #[test]
    fn halting_pair_goes_quiescent() {
        let code = vec![
            I::add_imm(r(1), r(1), 1),
            I::add_imm(r(2), r(1), 2),
            I::halt(),
        ];
        let mut rig = Rig::new(code, false);
        assert!(!rig.pair.is_quiescent());
        rig.run(5_000);
        assert!(rig.pair.vocal().is_halted());
        assert!(rig.pair.mute().is_halted());
        assert!(
            rig.pair.is_quiescent(),
            "halted pair with drained pipelines"
        );
        assert_eq!(rig.pair.next_activity_at(Cycle::new(rig.now)), None);
        // Quiescence is stable: further ticks change nothing.
        let retired = rig.pair.retired_user();
        rig.run(100);
        assert_eq!(rig.pair.retired_user(), retired);
        assert!(rig.pair.is_quiescent());
    }

    #[test]
    fn pending_mismatch_deadline_is_reported() {
        let mut rig = Rig::new(counting_loop(), false);
        rig.pair.mute_mut().inject_soft_error_at(50, 7);
        // Run until the mismatch is detected but its physical comparison
        // time has not yet arrived.
        let mut deadline = None;
        for _ in 0..5_000 {
            rig.pair
                .tick(Cycle::new(rig.now), &mut rig.mem, &mut rig.bus);
            rig.now += 1;
            if let Some(at) = rig.pair.pending_mismatch {
                deadline = Some(at);
                break;
            }
        }
        let at = deadline.expect("soft error must raise a deferred mismatch");
        let next = rig
            .pair
            .next_activity_at(Cycle::new(rig.now))
            .expect("pair is mid-protocol, not idle");
        assert!(
            next <= at,
            "horizon {next:?} must not overshoot the mismatch deadline {at:?}"
        );
    }

    #[test]
    fn interrupt_is_serviced_by_both_cores() {
        let mut rig = Rig::new(counting_loop(), false);
        rig.run(500);
        rig.pair.deliver_interrupt();
        rig.run(5000);
        assert_eq!(
            rig.pair.stats().mismatches.value(),
            0,
            "handlers must match"
        );
        assert!(rig.pair.vocal().stats().serializing.value() >= 2);
        assert!(rig.pair.mute().stats().serializing.value() >= 2);
    }
}

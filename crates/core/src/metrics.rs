//! Result types for the evaluation harness.

use reunion_kernel::stats::RunningStats;
use reunion_obs::{ObsReport, TraceEvent};

use crate::SystemStats;

/// The outcome of measuring one (workload, configuration) point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub workload: &'static str,
    /// Mean aggregate user IPC over measurement windows.
    pub ipc: f64,
    /// Half-width of the 95% confidence interval on the IPC.
    pub ipc_ci95: f64,
    /// Summed statistics over all windows.
    pub totals: SystemStats,
    /// Number of measurement windows.
    pub windows: usize,
    /// Cycles the timing engine fast-forwarded without ticking (warm-up
    /// included). An engine diagnostic, deliberately kept out of every
    /// default `BENCH_<id>.json` field so reports stay byte-identical
    /// across engines; surfaced by the deterministic bench counters, and —
    /// since the observability layer landed — by the opt-in
    /// `observability` schema block.
    pub skipped_cycles: u64,
    /// Merged observability summary over all measurement windows; `Some`
    /// only when the configuration enabled observability (`REUNION_OBS=1`).
    /// `check_latency`, `stall_episodes` and `incoherence_gaps` are
    /// engine-invariant; `skip_runs`/`skipped_cycles` describe the engine.
    pub obs: Option<ObsReport>,
    /// Retained check-protocol trace events (bounded per pair), drained at
    /// the end of the measurement. Empty unless observability is enabled.
    pub trace: Vec<TraceEvent>,
}

impl Measurement {
    /// Input-incoherence events per million user instructions (Table 3).
    ///
    /// Reads the pair drivers' measured `input_incoherence` counter, not
    /// the raw mismatch count (which also includes escalations raised while
    /// a recovery is already in flight).
    pub fn incoherence_per_million(&self) -> f64 {
        self.totals.per_million(self.totals.input_incoherence)
    }

    /// TLB misses per million user instructions (Table 3).
    pub fn tlb_misses_per_million(&self) -> f64 {
        self.totals.per_million(self.totals.tlb_misses)
    }
}

/// A model measurement normalized against the non-redundant baseline — the
/// y-axis of Figures 5, 6 and 7.
#[derive(Clone, Debug)]
pub struct NormalizedResult {
    /// Workload name.
    pub workload: &'static str,
    /// Mean of per-window IPC ratios (matched-pair comparison).
    pub normalized_ipc: f64,
    /// Half-width of the 95% confidence interval on the ratio.
    pub ci95: f64,
    /// The model measurement.
    pub model: Measurement,
    /// The baseline measurement.
    pub baseline: Measurement,
}

/// Running aggregation of normalized IPC over the workloads of one class
/// (the class averages quoted throughout §5).
#[derive(Clone, Debug, Default)]
pub struct ClassSummary {
    stats: RunningStats,
}

impl ClassSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one workload's normalized IPC.
    pub fn push(&mut self, normalized_ipc: f64) {
        self.stats.push(normalized_ipc);
    }

    /// Mean normalized IPC across the class.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Average performance *penalty* (1 − mean), as the paper quotes it.
    pub fn penalty(&self) -> f64 {
        1.0 - self.mean()
    }

    /// Number of workloads aggregated.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_summary_means_and_penalty() {
        let mut s = ClassSummary::new();
        s.push(0.9);
        s.push(0.95);
        assert!((s.mean() - 0.925).abs() < 1e-12);
        assert!((s.penalty() - 0.075).abs() < 1e-12);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn measurement_normalizations() {
        let m = Measurement {
            workload: "x",
            ipc: 1.0,
            ipc_ci95: 0.0,
            totals: SystemStats {
                user_instructions: 1_000_000,
                cycles: 1_000_000,
                mismatches: 4,
                input_incoherence: 3,
                tlb_misses: 1500,
                ..Default::default()
            },
            windows: 1,
            skipped_cycles: 0,
            obs: None,
            trace: Vec::new(),
        };
        assert!((m.incoherence_per_million() - 3.0).abs() < 1e-9);
        assert!((m.tlb_misses_per_million() - 1500.0).abs() < 1e-9);
    }
}

//! The shared fingerprint check bus.
//!
//! The paper's CMP gives every vocal/mute pair a private comparison channel:
//! fingerprints cross in a fixed one-way `comparison_latency` and never
//! contend. That is faithful at 2–4 pairs, but the many-core scaling study
//! asks what happens when 8 or 16 pairs funnel their fingerprint traffic —
//! two messages per compared interval, plus a return grant for serializing
//! instructions — over one shared interconnect.
//!
//! [`CheckBus`] models that interconnect as a single pipelined channel with
//! a per-message *occupancy* (reciprocal bandwidth: the number of bus
//! cycles each message holds the channel). Propagation time stays in
//! `comparison_latency`; the bus only adds queueing delay, which is zero
//! until two messages want the same bus cycles.
//!
//! An occupancy of `0` is the *unmodeled* sentinel: [`CheckBus::grant`]
//! returns its argument and mutates nothing, restoring the paper's private
//! channels exactly — that is what keeps every paper-scale artifact
//! byte-identical.
//!
//! Determinism: the bus is only touched from [`PairDriver::tick`], pairs
//! tick in logical-processor order, and comparisons happen on the same
//! ticked cycles under the dense and skip engines, so grant order — and
//! therefore every timestamp — is engine- and thread-count-invariant.
//!
//! [`PairDriver::tick`]: crate::PairDriver::tick

use reunion_kernel::Cycle;

/// A shared, pipelined check-message channel with bounded bandwidth.
///
/// Owned by the CMP; every pair's comparator requests transmission slots
/// through [`grant`](Self::grant).
#[derive(Clone, Debug)]
pub struct CheckBus {
    /// Bus cycles each message occupies the channel; `0` = unmodeled
    /// (private per-pair channels, the paper's model).
    occupancy: u64,
    /// Cycle the channel next becomes free.
    free_at: u64,
    /// Total cycles messages waited behind the channel (contention only;
    /// zero whenever the bus is unmodeled or uncontended).
    wait_cycles: u64,
    /// Messages granted a slot.
    messages: u64,
}

impl CheckBus {
    /// A bus with the given per-message occupancy (`0` = unmodeled).
    pub fn new(occupancy: u64) -> Self {
        CheckBus {
            occupancy,
            free_at: 0,
            wait_cycles: 0,
            messages: 0,
        }
    }

    /// Whether the bus actually models contention (occupancy > 0).
    pub fn is_modeled(&self) -> bool {
        self.occupancy > 0
    }

    /// Grants a transmission slot to a message that is ready to depart at
    /// `ready_at`, returning its departure cycle. With occupancy `0` this
    /// is the identity and records nothing.
    pub fn grant(&mut self, ready_at: Cycle) -> Cycle {
        if self.occupancy == 0 {
            return ready_at;
        }
        let depart = self.free_at.max(ready_at.as_u64());
        self.wait_cycles += depart - ready_at.as_u64();
        self.free_at = depart + self.occupancy;
        self.messages += 1;
        Cycle::new(depart)
    }

    /// Total cycles messages spent queued behind the shared channel.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Total messages granted slots.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmodeled_bus_is_the_identity() {
        let mut bus = CheckBus::new(0);
        assert!(!bus.is_modeled());
        for t in [0u64, 5, 3, 100, 7] {
            assert_eq!(bus.grant(Cycle::new(t)), Cycle::new(t));
        }
        assert_eq!(bus.wait_cycles(), 0);
        assert_eq!(bus.messages(), 0);
    }

    #[test]
    fn contended_messages_queue_in_grant_order() {
        let mut bus = CheckBus::new(2);
        assert_eq!(bus.grant(Cycle::new(10)), Cycle::new(10));
        // Same-ready message waits for the channel.
        assert_eq!(bus.grant(Cycle::new(10)), Cycle::new(12));
        assert_eq!(bus.grant(Cycle::new(10)), Cycle::new(14));
        // A late arrival after the queue drains departs immediately.
        assert_eq!(bus.grant(Cycle::new(50)), Cycle::new(50));
        assert_eq!(bus.wait_cycles(), 2 + 4);
        assert_eq!(bus.messages(), 4);
    }
}

//! The Reunion execution model.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates: it pairs out-of-order cores ([`reunion_cpu::Core`])
//! into **logical processor pairs** (Definition 1) over the shared-cache
//! controller of [`reunion_mem::MemorySystem`], and implements
//!
//! * **relaxed input replication** — both cores independently access their
//!   cache hierarchies; the mute core via phantom requests,
//! * **output comparison** — fingerprint exchange at the check stage with a
//!   configurable inter-core comparison latency (Definition 7, §4.3),
//! * **input-incoherence detection** — a fingerprint mismatch is
//!   indistinguishable from (and handled like) a soft error (Lemma 1),
//! * **rollback recovery and the two-phase re-execution protocol** —
//!   rollback, single-step to the first load/atomic, one **synchronizing
//!   request** delivering a single coherent value to both cores, and the
//!   rare phase-two architectural-register-file copy (Definitions 8–11,
//!   Figure 4),
//! * the **Strict** oracle baseline (ideal load-value-queue input
//!   replication) and the **non-redundant** baseline the evaluation
//!   normalizes against,
//! * soft-error injection, external-interrupt replication, TSO/SC
//!   consistency, and the matched-pair sampling methodology used by every
//!   experiment.
//!
//! # Examples
//!
//! ```
//! use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
//! use reunion_workloads::Workload;
//!
//! let workload = Workload::by_name("moldyn").expect("in suite");
//! let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
//! let mut sys = CmpSystem::new(&cfg, &workload);
//! sys.run(5_000);
//! assert!(sys.user_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checkbus;
mod config;
mod metrics;
mod pair;
mod sampling;
mod system;

pub use checkbus::CheckBus;
pub use config::{Engine, ExecutionMode, SystemConfig};
pub use metrics::{ClassSummary, Measurement, NormalizedResult};
pub use pair::{PairDriver, PairStats, RecoveryPhase};
pub use sampling::{measure, normalized_ipc, Profile, SampleConfig};
pub use system::{CmpSystem, SystemStats};

// The observability vocabulary travels with the execution model so
// downstream crates (sim, bench, dispatch) need no direct `reunion-obs`
// dependency.
pub use reunion_obs::{
    EpisodeSummary, EventTrace, LatencyHistogram, ObsConfig, ObsReport, TraceEvent, TraceKind,
    DEFAULT_TRACE_CAP, HISTOGRAM_BUCKETS,
};

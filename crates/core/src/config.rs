//! System-level configuration.

use reunion_cpu::{Consistency, TlbMode};
use reunion_mem::{MemConfig, PhantomStrength};
use reunion_obs::ObsConfig;

/// Which redundant execution model the CMP runs (§5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// The non-redundant baseline CMP every figure normalizes against.
    #[default]
    NonRedundant,
    /// Strict input replication: an oracle model of LVQ-style designs — the
    /// trailing core observes exactly the leader's load values with no
    /// input-replication penalty, but pays all checking costs.
    Strict,
    /// The Reunion execution model: relaxed input replication with
    /// fingerprint checking and the re-execution protocol.
    Reunion,
}

impl ExecutionMode {
    /// Whether this mode runs two cores per logical processor.
    pub fn is_redundant(self) -> bool {
        !matches!(self, ExecutionMode::NonRedundant)
    }

    /// All modes, in the paper's presentation order.
    pub const ALL: [ExecutionMode; 3] = [
        ExecutionMode::NonRedundant,
        ExecutionMode::Strict,
        ExecutionMode::Reunion,
    ];
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ExecutionMode::NonRedundant => "non-redundant",
            ExecutionMode::Strict => "strict",
            ExecutionMode::Reunion => "reunion",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for ExecutionMode {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) form — the spelling used by
    /// `BENCH_<id>.json` records and shard manifests.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "non-redundant" => Ok(ExecutionMode::NonRedundant),
            "strict" => Ok(ExecutionMode::Strict),
            "reunion" => Ok(ExecutionMode::Reunion),
            other => Err(format!("unknown execution mode {other:?}")),
        }
    }
}

/// Which timing engine advances the simulated CMP.
///
/// Both engines execute the identical per-cycle model ([`tick`]); they
/// differ only in which cycles they bother to tick. Every deterministic
/// output — `BENCH_<id>.json` bytes, measured counters, final architectural
/// state — is guaranteed identical between them; the dual-run
/// `engine-parity` CI job and the randomized property tests in
/// `tests/engines.rs` enforce it.
///
/// [`tick`]: crate::CmpSystem::tick
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Tick every logical processor on every cycle — the reference
    /// semantics.
    Dense,
    /// Event-driven time skipping: fast-forward simulated time to the
    /// earliest cycle any logical processor reports it can make forward
    /// progress, clipped at sampling-window boundaries. The default.
    #[default]
    Skip,
}

impl Engine {
    /// The engine selected by `REUNION_ENGINE=dense|skip` (default:
    /// [`Engine::Skip`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `REUNION_ENGINE` value — a typo must not
    /// silently run the wrong engine.
    #[deprecated(
        note = "SystemConfig constructors are env-free; resolve the engine once \
                (e.g. via reunion_sim::RunOptions) and inject it with \
                SystemConfig::with_engine"
    )]
    pub fn from_env() -> Engine {
        match std::env::var("REUNION_ENGINE") {
            Ok(v) => v.parse().unwrap_or_else(|e| panic!("REUNION_ENGINE: {e}")),
            Err(_) => Engine::default(),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Dense => "dense",
            Engine::Skip => "skip",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(Engine::Dense),
            "skip" => Ok(Engine::Skip),
            other => Err(format!("unknown engine {other:?} (expected dense|skip)")),
        }
    }
}

/// Full configuration of a simulated CMP.
///
/// [`SystemConfig::table1`] reproduces the paper's system; tests use
/// [`SystemConfig::small_test`] for speed. Every preset is a plain value —
/// constructors never read the environment — and non-preset configurations
/// are expressed by chaining the `with_*` builder methods:
///
/// ```
/// use reunion_core::{ExecutionMode, SystemConfig};
///
/// let cfg = SystemConfig::table1(ExecutionMode::Reunion)
///     .with_logical_processors(8)
///     .with_check_bandwidth(2)
///     .with_comparison_latency(20);
/// assert_eq!(cfg.physical_cores(), 16);
/// assert_eq!(cfg.check_bus_occupancy, 2);
/// ```
///
/// Run-time concerns (engine selection, observability) are injected by the
/// harness — `reunion_sim::RunOptions::apply` — or explicitly via
/// [`with_engine`](Self::with_engine) /
/// [`with_observability`](Self::with_observability).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Execution model.
    pub mode: ExecutionMode,
    /// Number of logical processors (cores in non-redundant mode, pairs in
    /// redundant modes). The paper simulates four.
    pub logical_processors: usize,
    /// One-way fingerprint comparison latency between paired cores, in
    /// cycles (the x-axis of Figure 6).
    pub comparison_latency: u64,
    /// Bus cycles each fingerprint message occupies the shared check bus
    /// (reciprocal check bandwidth). `0` — the default everywhere the paper
    /// is reproduced — is the *unmodeled* sentinel: every pair owns a
    /// private comparison channel and nothing contends. The scaling study
    /// sets it nonzero so many pairs' check traffic shares one channel.
    pub check_bus_occupancy: u64,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// TLB miss handling model.
    pub tlb: TlbMode,
    /// Memory consistency model.
    pub consistency: Consistency,
    /// Phantom request strength for mute fills (Reunion only).
    pub phantom: PhantomStrength,
    /// Instructions per fingerprint.
    pub fingerprint_interval: u32,
    /// Master seed: programs and per-pair decisions derive from it.
    pub seed: u64,
    /// Timing engine (dense cycle stepping or event-driven time skipping).
    /// Constructors default to [`Engine::Skip`]; outputs are
    /// engine-invariant. Inject a run-time choice via
    /// [`with_engine`](Self::with_engine) or `RunOptions::apply`.
    pub engine: Engine,
    /// Opt-in observability (latency histograms + bounded event traces).
    /// Constructors default to off so every deterministic output stays
    /// byte-stable; inject via [`with_observability`](Self::with_observability)
    /// or `RunOptions::apply`.
    pub obs: ObsConfig,
    /// Worker threads for the intra-cell parallel compute phase (`0` or
    /// `1` = run everything on the simulating thread, the default).
    /// Outputs are thread-count-invariant: only memory-free per-core work
    /// runs off-thread, and all shared-resource arbitration commits
    /// serially in logical-processor order. Inject via
    /// [`with_intracell_threads`](Self::with_intracell_threads) or
    /// `RunOptions::apply`.
    pub intracell_threads: usize,
}

impl SystemConfig {
    /// The paper's Table 1 baseline with the given execution mode:
    /// 4 logical processors, 10-cycle comparison latency, hardware TLB,
    /// TSO, global phantom requests, per-instruction fingerprints.
    pub fn table1(mode: ExecutionMode) -> Self {
        SystemConfig {
            mode,
            logical_processors: 4,
            comparison_latency: 10,
            check_bus_occupancy: 0,
            mem: MemConfig::default(),
            tlb: TlbMode::default(),
            consistency: Consistency::Tso,
            phantom: PhantomStrength::Global,
            fingerprint_interval: 1,
            seed: 0x5EED_0001,
            engine: Engine::default(),
            obs: ObsConfig::default(),
            intracell_threads: 0,
        }
    }

    /// A reduced configuration (2 logical processors, small caches) for
    /// unit and integration tests.
    pub fn small_test(mode: ExecutionMode) -> Self {
        SystemConfig {
            logical_processors: 2,
            mem: MemConfig::small(),
            seed: 0x5EED_0002,
            ..SystemConfig::table1(mode)
        }
    }

    /// The kernel-suite configuration: Table 1 parameters on 2 logical
    /// processors — the assembly kernels define at most two threads, so a
    /// wider CMP would only add parked processors to every cell.
    pub fn kernel_pair(mode: ExecutionMode) -> Self {
        SystemConfig {
            logical_processors: 2,
            seed: 0x5EED_0003,
            ..SystemConfig::table1(mode)
        }
    }

    /// Sets the logical-processor count (pairs in redundant modes).
    ///
    /// The memory system's directory supports at most 64 private L1s, so
    /// redundant configurations top out at 32 logical processors.
    pub fn with_logical_processors(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one logical processor");
        self.logical_processors = n;
        self
    }

    /// Sets the one-way fingerprint comparison latency in cycles.
    pub fn with_comparison_latency(mut self, cycles: u64) -> Self {
        self.comparison_latency = cycles;
        self
    }

    /// Models a shared check bus: each fingerprint message occupies the
    /// channel for `cycles_per_message` bus cycles (reciprocal bandwidth —
    /// `1` = one message per cycle, `0` = unmodeled private channels, the
    /// paper's configuration).
    pub fn with_check_bandwidth(mut self, cycles_per_message: u64) -> Self {
        self.check_bus_occupancy = cycles_per_message;
        self
    }

    /// Sets the fingerprint summarization interval in instructions.
    pub fn with_fingerprint_interval(mut self, instructions: u32) -> Self {
        assert!(instructions >= 1, "fingerprints summarize >= 1 instruction");
        self.fingerprint_interval = instructions;
        self
    }

    /// Sets the master seed (programs and per-pair decisions derive from it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the timing engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the observability configuration.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the intra-cell compute-phase worker count (`0` disables).
    pub fn with_intracell_threads(mut self, threads: usize) -> Self {
        self.intracell_threads = threads;
        self
    }

    /// Replaces the memory hierarchy parameters.
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.mem = mem;
        self
    }

    /// Total physical cores this configuration instantiates.
    pub fn physical_cores(&self) -> usize {
        if self.mode.is_redundant() {
            self.logical_processors * 2
        } else {
            self.logical_processors
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cfg = SystemConfig::table1(ExecutionMode::Reunion);
        assert_eq!(cfg.logical_processors, 4);
        assert_eq!(cfg.comparison_latency, 10);
        assert_eq!(cfg.physical_cores(), 8);
        let base = SystemConfig::table1(ExecutionMode::NonRedundant);
        assert_eq!(base.physical_cores(), 4);
    }

    #[test]
    fn kernel_pair_narrows_table1() {
        let cfg = SystemConfig::kernel_pair(ExecutionMode::Reunion);
        assert_eq!(cfg.logical_processors, 2);
        assert_eq!(cfg.mem, MemConfig::default());
        assert_ne!(cfg.seed, SystemConfig::table1(ExecutionMode::Reunion).seed);
    }

    #[test]
    fn constructors_are_env_free_and_builders_chain() {
        // Presets are plain values: no REUNION_* variable can change them.
        let cfg = SystemConfig::table1(ExecutionMode::Reunion);
        assert_eq!(cfg.engine, Engine::default());
        assert_eq!(cfg.obs, ObsConfig::default());
        assert_eq!(
            cfg.check_bus_occupancy, 0,
            "check bus unmodeled at paper scale"
        );

        let grown = cfg
            .with_logical_processors(16)
            .with_comparison_latency(40)
            .with_check_bandwidth(2)
            .with_fingerprint_interval(8)
            .with_seed(0xABCD)
            .with_engine(Engine::Dense)
            .with_mem(MemConfig::small())
            .with_intracell_threads(4);
        assert_eq!(grown.logical_processors, 16);
        assert_eq!(grown.physical_cores(), 32);
        assert_eq!(grown.intracell_threads, 4);
        assert_eq!(grown.comparison_latency, 40);
        assert_eq!(grown.check_bus_occupancy, 2);
        assert_eq!(grown.fingerprint_interval, 8);
        assert_eq!(grown.seed, 0xABCD);
        assert_eq!(grown.engine, Engine::Dense);
        assert_eq!(grown.mem, MemConfig::small());
    }

    #[test]
    fn mode_properties() {
        assert!(!ExecutionMode::NonRedundant.is_redundant());
        assert!(ExecutionMode::Strict.is_redundant());
        assert!(ExecutionMode::Reunion.is_redundant());
        assert_eq!(ExecutionMode::Reunion.to_string(), "reunion");
    }
}

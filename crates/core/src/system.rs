//! Whole-CMP assembly and simulation loop.

use std::sync::mpsc;
use std::sync::Arc;

use reunion_cpu::{Core, CoreConfig};
use reunion_kernel::{Cycle, EventHorizon, HorizonTree};
use reunion_mem::{MemorySystem, Owner};
use reunion_obs::{EpisodeSummary, ObsReport, TraceEvent};
use reunion_workloads::Workload;

use crate::{CheckBus, Engine, ExecutionMode, PairDriver, SystemConfig};

/// One logical processor: a single core, or a redundant pair.
#[derive(Debug)]
enum Proc {
    Single(Box<Core>),
    Pair(Box<PairDriver>),
    /// Placeholder left in the proc table while the real processor is on a
    /// compute-pool worker thread; restored before the compute phase ends.
    /// Never observable from any public method.
    InFlight,
}

impl Proc {
    /// Runs the pure compute phase (core-private state only).
    fn tick_compute(&mut self, now: Cycle) {
        match self {
            Proc::Single(core) => core.tick_compute(now),
            Proc::Pair(pair) => pair.tick_compute(now),
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }

    /// This processor's activity bound (see [`Core::next_activity_at`] and
    /// [`PairDriver::next_activity_at`]).
    fn next_activity_at(&self, from: Cycle) -> Option<Cycle> {
        match self {
            Proc::Single(core) => core.next_activity_at(from),
            Proc::Pair(pair) => pair.next_activity_at(from),
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }

    fn is_quiescent(&self) -> bool {
        match self {
            Proc::Single(core) => core.is_quiescent(),
            Proc::Pair(pair) => pair.is_quiescent(),
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }
}

/// A batch of processors shipped to one compute worker for a cycle.
type ComputeBatch = Vec<(usize, Proc)>;

/// Bounded busy-wait before blocking on a channel. Ticks arrive
/// back-to-back in the engines' hot loops, so a worker that just finished
/// a cycle will almost always see the next one within a few microseconds —
/// a futex sleep/wake round trip costs more than the compute phase of a
/// small batch. The bound keeps an idle (or oversubscribed) pool from
/// burning a core: after it, the thread parks in a normal blocking recv.
const RECV_POLLS: u32 = 64;

/// Whether busy-waiting can possibly help: on a single hardware thread the
/// peer cannot run while we spin, so spinning only burns the timeslice the
/// peer needs.
fn spin_pays_off() -> bool {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
        > 1
}

/// Spin-then-block receive: see [`RECV_POLLS`]. `spin` comes from
/// [`spin_pays_off`], computed once per pool.
fn spin_recv<T>(rx: &mpsc::Receiver<T>, spin: bool) -> Option<T> {
    if spin {
        for _ in 0..RECV_POLLS {
            match rx.try_recv() {
                Ok(msg) => return Some(msg),
                Err(mpsc::TryRecvError::Empty) => {
                    for _ in 0..64 {
                        std::hint::spin_loop();
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => return None,
            }
        }
    }
    rx.recv().ok()
}

/// Detached worker threads running the memory-free compute phase.
///
/// Ownership, not sharing: processors are *moved* to a worker over a
/// channel, ticked there, and moved back — no locks, no `unsafe`, and the
/// crate-wide `#![forbid(unsafe_code)]` stays intact. Workers exit when
/// the pool (and with it every sender) drops.
#[derive(Debug)]
struct ComputePool {
    senders: Vec<mpsc::Sender<(Cycle, ComputeBatch)>>,
    results: mpsc::Receiver<ComputeBatch>,
    /// Recycled batch allocations (one per lane).
    spare: Vec<ComputeBatch>,
    /// Whether receive paths busy-wait before blocking.
    spin: bool,
}

impl ComputePool {
    fn new(workers: usize) -> Self {
        let spin = spin_pays_off();
        let (result_tx, results) = mpsc::channel::<ComputeBatch>();
        let mut senders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<(Cycle, ComputeBatch)>();
            let out = result_tx.clone();
            std::thread::spawn(move || {
                while let Some((now, mut batch)) = spin_recv(&rx, spin) {
                    for (_, proc) in &mut batch {
                        proc.tick_compute(now);
                    }
                    if out.send(batch).is_err() {
                        break;
                    }
                }
            });
            senders.push(tx);
        }
        ComputePool {
            senders,
            results,
            spare: Vec::new(),
            spin,
        }
    }
}

/// Aggregated system statistics over a measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemStats {
    /// Retired user instructions summed over logical processors.
    pub user_instructions: u64,
    /// Elapsed cycles in the window.
    pub cycles: u64,
    /// Fingerprint mismatches, including escalations within recoveries.
    pub mismatches: u64,
    /// Input-incoherence events measured by the pair drivers: mismatches
    /// first detected during normal paired execution (Table 3's metric).
    pub input_incoherence: u64,
    /// Recoveries begun.
    pub recoveries: u64,
    /// Phase-two recoveries.
    pub phase2: u64,
    /// Detected-unrecoverable failures.
    pub failures: u64,
    /// Synchronizing requests issued.
    pub sync_requests: u64,
    /// TLB misses (ITLB + DTLB) summed over vocal cores.
    pub tlb_misses: u64,
    /// Phantom requests that filled mute caches with arbitrary data.
    pub phantom_garbage_fills: u64,
    /// Cycles retirement stalled on serializing check round trips, summed
    /// over both halves of every pair.
    pub serializing_stall_cycles: u64,
    /// Check round-trip cycles charged during input-incoherence
    /// re-executions, summed over both halves of every pair.
    pub reexec_penalty_cycles: u64,
    /// Peak check-event buffer occupancy over all cores — allocation
    /// sensitivity: the buffers recycle their capacity, so this bounds the
    /// steady-state footprint of the event path.
    pub peak_check_events: u64,
    /// Peak store-buffer chain length over all cores (entries pending
    /// behind one word).
    pub peak_store_chain: u64,
    /// Store-buffer pushes that spilled past the inline small-buffer
    /// capacity onto the heap, summed over all cores.
    pub store_chain_spills: u64,
}

impl SystemStats {
    /// Aggregate user IPC — the paper's performance metric ("aggregate user
    /// instructions committed per cycle").
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.user_instructions as f64 / self.cycles as f64
        }
    }

    /// Events per million user instructions (Table 3 normalization).
    pub fn per_million(&self, events: u64) -> f64 {
        if self.user_instructions == 0 {
            0.0
        } else {
            events as f64 * 1.0e6 / self.user_instructions as f64
        }
    }

    /// Folds one core's allocation-sensitivity probes into the aggregate:
    /// peaks combine by max, spill counts by sum.
    pub fn note_allocation_probes(&mut self, core: &reunion_cpu::CoreStats) {
        self.peak_check_events = self.peak_check_events.max(core.peak_check_events);
        self.peak_store_chain = self.peak_store_chain.max(core.peak_store_chain);
        self.store_chain_spills += core.store_chain_spills.value();
    }
}

/// A simulated CMP running one workload under one execution model.
///
/// [`run`](Self::run) advances simulated time under the configured
/// [`Engine`]: dense cycle stepping, or the default event-driven skip
/// engine, which fast-forwards across cycles where no logical processor
/// can make forward progress. Both engines produce byte-identical
/// deterministic output; the skip engine additionally accounts the cycles
/// it never ticked in [`skipped_cycles`](Self::skipped_cycles).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct CmpSystem {
    mem: MemorySystem,
    procs: Vec<Proc>,
    /// Shared fingerprint check bus; unmodeled (identity) at paper scale.
    check_bus: CheckBus,
    now: Cycle,
    window_start: Cycle,
    user_at_window_start: u64,
    engine: Engine,
    skipped: u64,
    /// Gate for skip-run episode recording (mirrors `SystemConfig::obs`).
    obs_enabled: bool,
    /// Lengths of cycle runs the engine fast-forwarded over this window.
    /// Engine-dependent by design: the dense engine only skips quiescent
    /// tails, the skip engine also jumps stall windows.
    skip_runs: EpisodeSummary,
    /// Indexed event horizon: one slot per logical processor, holding the
    /// bound last reported by that processor. Rebuilt at every `run` entry
    /// (external mutation may invalidate cached bounds between runs) and
    /// maintained incrementally inside the skip engine: only ticked
    /// processors re-report.
    horizon: HorizonTree,
    /// Scratch list of ready processor slots (recycled across ticks).
    ready: Vec<usize>,
    /// Intra-cell compute-phase workers (`< 2` = compute inline).
    intracell: usize,
    /// Worker pool, spawned lazily on the first parallel compute phase.
    pool: Option<ComputePool>,
}

impl CmpSystem {
    /// Builds the system: memory hierarchy, cores, pairing, workload
    /// programs and initial memory contents.
    pub fn new(cfg: &SystemConfig, workload: &Workload) -> Self {
        let mem_cfg = cfg.mem.clone().scaled_for_cores(cfg.physical_cores());
        let l1_hit_latency = mem_cfg.l1_hit_latency;
        let mut mem = MemorySystem::new(mem_cfg);
        for &(addr, value) in workload.initial_memory().iter() {
            mem.poke(addr, value);
        }

        let core_cfg_base = CoreConfig {
            checking: cfg.mode.is_redundant(),
            phantom: cfg.phantom,
            tlb: cfg.tlb,
            consistency: cfg.consistency,
            fingerprint_interval: cfg.fingerprint_interval,
            itlb_miss_per_million: workload.spec().itlb_miss_per_million,
            check_latency: cfg.comparison_latency,
            // Cached so store-forwarded and strict-LVQ loads bind without
            // touching the memory system (the compute phase depends on it).
            l1_hit_latency,
            ..CoreConfig::default()
        };

        let mut procs = Vec::with_capacity(cfg.logical_processors);
        for lp in 0..cfg.logical_processors {
            let program = Arc::new(workload.program(lp));
            let pair_seed = cfg.seed ^ (lp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match cfg.mode {
                ExecutionMode::NonRedundant => {
                    let l1 = mem.register_l1(Owner::vocal(lp as u8));
                    let core = Core::new(core_cfg_base.clone(), program, l1, pair_seed);
                    procs.push(Proc::Single(Box::new(core)));
                }
                ExecutionMode::Strict => {
                    let vl1 = mem.register_l1(Owner::vocal(lp as u8));
                    let ml1 = mem.register_l1(Owner::mute(lp as u8));
                    // The strict oracle's LVQ slack execution keeps the
                    // fingerprint comparison off the serializing critical
                    // path; only Reunion pays the grant's return trip.
                    let mut vcfg = core_cfg_base.clone();
                    vcfg.serializing_round_trip = false;
                    let mut vocal = Core::new(vcfg.clone(), program.clone(), vl1, pair_seed);
                    vocal.set_lvq_producer(true);
                    let mut mcfg = vcfg;
                    mcfg.strict_lvq = true;
                    let mut mute = Core::new(mcfg, program, ml1, pair_seed);
                    mute.set_mute(true);
                    procs.push(Proc::Pair(Box::new(PairDriver::new(
                        vocal,
                        mute,
                        cfg.comparison_latency,
                        true,
                    ))));
                }
                ExecutionMode::Reunion => {
                    let vl1 = mem.register_l1(Owner::vocal(lp as u8));
                    let ml1 = mem.register_l1(Owner::mute(lp as u8));
                    let vocal = Core::new(core_cfg_base.clone(), program.clone(), vl1, pair_seed);
                    let mut mute = Core::new(core_cfg_base.clone(), program, ml1, pair_seed);
                    mute.set_mute(true);
                    procs.push(Proc::Pair(Box::new(PairDriver::new(
                        vocal,
                        mute,
                        cfg.comparison_latency,
                        false,
                    ))));
                }
            }
        }

        if cfg.obs.enabled {
            for (lp, proc) in procs.iter_mut().enumerate() {
                if let Proc::Pair(pair) = proc {
                    pair.enable_observability(lp as u32, cfg.obs.trace_cap);
                }
            }
        }

        let slots = procs.len();
        CmpSystem {
            mem,
            procs,
            check_bus: CheckBus::new(cfg.check_bus_occupancy),
            now: Cycle::ZERO,
            window_start: Cycle::ZERO,
            user_at_window_start: 0,
            engine: cfg.engine,
            skipped: 0,
            obs_enabled: cfg.obs.enabled,
            skip_runs: EpisodeSummary::new(),
            horizon: HorizonTree::new(slots),
            ready: Vec::with_capacity(slots),
            intracell: cfg.intracell_threads,
            pool: None,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The memory system (stats inspection).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The shared check bus (contention-stats inspection).
    pub fn check_bus(&self) -> &CheckBus {
        &self.check_bus
    }

    /// Number of logical processors.
    pub fn logical_processors(&self) -> usize {
        self.procs.len()
    }

    /// Direct access to a pair driver (fault injection, protocol tests).
    ///
    /// Returns `None` for non-redundant configurations.
    pub fn pair_mut(&mut self, lp: usize) -> Option<&mut PairDriver> {
        match &mut self.procs[lp] {
            Proc::Pair(p) => Some(p),
            Proc::Single(_) => None,
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }

    /// Direct access to a non-redundant core.
    pub fn core_mut(&mut self, lp: usize) -> Option<&mut Core> {
        match &mut self.procs[lp] {
            Proc::Single(c) => Some(c),
            Proc::Pair(_) => None,
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }

    /// The timing engine this system runs under.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Cycles fast-forwarded without ticking any logical processor: the
    /// skip engine's work savings (plus all-halted early exits, which both
    /// engines take). Always zero for a dense run that never goes fully
    /// quiescent; never part of a `BENCH_<id>.json` artifact.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Advances the whole CMP by one cycle, ticking every logical
    /// processor. Shared-resource arbitration happens in the serial commit
    /// phase, in fixed logical-processor order — which also fixes the
    /// order in which comparators are granted shared-check-bus slots —
    /// deterministic and identical under both engines and any intra-cell
    /// thread count.
    pub fn tick(&mut self) {
        let mut all = std::mem::take(&mut self.ready);
        all.clear();
        all.extend(0..self.procs.len());
        self.tick_procs(&all);
        self.ready = all;
        self.now += 1;
    }

    /// Ticks the processors in `slots` (ascending) at the current cycle:
    /// first every compute phase — inline, or fanned out to the worker
    /// pool — then every commit phase serially in slot order. Memory-free
    /// compute work commutes with everything outside its own processor, so
    /// this two-phase schedule is byte-identical to ticking each processor
    /// fully in slot order.
    fn tick_procs(&mut self, slots: &[usize]) {
        if self.intracell >= 2 && slots.len() >= 2 {
            self.parallel_compute(slots);
        } else {
            for &i in slots {
                self.procs[i].tick_compute(self.now);
            }
        }
        for &i in slots {
            match &mut self.procs[i] {
                Proc::Single(core) => core.tick_commit(self.now, &mut self.mem),
                Proc::Pair(pair) => pair.tick_commit(self.now, &mut self.mem, &mut self.check_bus),
                Proc::InFlight => unreachable!("proc is on a compute worker"),
            }
        }
    }

    /// Fans the compute phase out to the worker pool: processors are moved
    /// to workers round-robin, ticked, and moved back, with the calling
    /// thread computing the final share itself while the workers run. The
    /// assignment is irrelevant to the output (compute phases are
    /// independent); only the serial commit order matters, and `tick_procs`
    /// fixes it.
    fn parallel_compute(&mut self, slots: &[usize]) {
        // `intracell` counts compute lanes *including* this thread, so a
        // knob of N costs N-1 extra threads and N-way compute.
        let lanes = self.intracell.min(slots.len());
        let pool = self
            .pool
            .get_or_insert_with(|| ComputePool::new(self.intracell - 1));
        let mut batches: Vec<ComputeBatch> = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let mut b = pool.spare.pop().unwrap_or_default();
            b.clear();
            batches.push(b);
        }
        for (k, &i) in slots.iter().enumerate() {
            let proc = std::mem::replace(&mut self.procs[i], Proc::InFlight);
            batches[k % lanes].push((i, proc));
        }
        // The last lane is this thread's own share; the rest ship out.
        let mut own = batches.pop().expect("at least one lane");
        let mut outstanding = 0;
        for (lane, batch) in batches.into_iter().enumerate() {
            debug_assert!(!batch.is_empty(), "lanes are capped at slot count");
            pool.senders[lane]
                .send((self.now, batch))
                .expect("compute worker alive");
            outstanding += 1;
        }
        for (_, proc) in &mut own {
            proc.tick_compute(self.now);
        }
        for (i, proc) in own.drain(..) {
            self.procs[i] = proc;
        }
        let pool = self.pool.as_mut().expect("pool in use");
        pool.spare.push(own);
        for _ in 0..outstanding {
            let mut batch = spin_recv(&pool.results, pool.spin).expect("compute worker alive");
            for (i, proc) in batch.drain(..) {
                self.procs[i] = proc;
            }
            pool.spare.push(batch);
        }
    }

    /// The earliest cycle `>= now` at which any logical processor reports
    /// it could make forward progress, or `None` when every processor is
    /// permanently idle absent external input — the CMP-level
    /// [`EventHorizon`] the skip engine fast-forwards to.
    pub fn next_ready(&self) -> Option<Cycle> {
        let mut horizon = EventHorizon::new();
        for proc in &self.procs {
            let at = proc.next_activity_at(self.now);
            // Nothing beats "right now": stop probing the other procs.
            if at == Some(self.now) {
                return at;
            }
            horizon.note_opt(at);
        }
        horizon.next_ready()
    }

    /// Whether every logical processor is quiescent: halted with empty
    /// pipelines, no recovery in flight, nothing left to compare. Ticking a
    /// quiescent CMP is a no-op, so `run` under either engine jumps
    /// straight to the end of its budget.
    pub fn all_quiescent(&self) -> bool {
        self.procs.iter().all(|p| p.is_quiescent())
    }

    /// Runs for `cycles` cycles under the configured [`Engine`].
    ///
    /// Simulated time always advances by exactly `cycles` (sampling-window
    /// accounting depends on it); the engines differ only in which of those
    /// cycles are ticked. Both early-exit once every logical processor has
    /// halted.
    pub fn run(&mut self, cycles: u64) {
        match self.engine {
            Engine::Dense => self.run_dense(cycles),
            Engine::Skip => self.run_skip(cycles),
        }
    }

    /// Dense reference engine: tick every cycle (early-exiting a fully
    /// quiescent system).
    fn run_dense(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end {
            if self.all_quiescent() {
                self.note_skip(end.saturating_since(self.now));
                self.now = end;
                break;
            }
            self.tick();
        }
    }

    /// Accounts a fast-forward of `run` cycles (quiescent tail or skip-engine
    /// jump): always bumps the total, records an episode under observability.
    fn note_skip(&mut self, run: u64) {
        self.skipped += run;
        if self.obs_enabled {
            self.skip_runs.record(run);
        }
    }

    /// Event-driven skip engine: tick only the processors whose reported
    /// bound has arrived, then fast-forward to the earliest remaining
    /// bound, clipped at the end of this run's budget (the caller's
    /// sampling-window boundary), so `begin_window`/measurement semantics
    /// are untouched.
    ///
    /// Parity argument: every per-processor bound is a conservative lower
    /// bound on that processor's next state change (see
    /// [`PairDriver::next_activity_at`] and `Core::next_activity_at`), so
    /// every cycle jumped over — and every un-ticked processor within a
    /// ticked cycle — would have been a no-op tick in the dense engine;
    /// the two engines visit identical state sequences and produce
    /// byte-identical outputs. Cached bounds stay fresh between ticks: a
    /// bound computed at `t0` with value `c` equals the bound the
    /// processor would report at any cycle in `(t0, c]` (every candidate
    /// stamp is absolute), the engine never advances past a cached bound
    /// without ticking its processor, and only ticked processors can
    /// change state. `skipped_cycles` accounting matches the previous
    /// whole-system skip engine cycle-for-cycle: the entry cycle of every
    /// iteration is ticked (possibly with an empty ready set) unless the
    /// CMP is fully quiescent, and jumps happen only after that tick.
    fn run_skip(&mut self, cycles: u64) {
        let end = self.now + cycles;
        self.rebuild_bounds();
        while self.now < end {
            if self.horizon.is_silent() {
                // Every bound is `None`: no processor can act without
                // external input. Fully quiescent → jump the whole budget.
                // Otherwise (waiting on input that cannot arrive this run)
                // tick the entry cycle as an empty ready set — a no-op for
                // every processor, matching the dense-structure engine's
                // accounting — then jump.
                if self.all_quiescent() {
                    self.note_skip(end.saturating_since(self.now));
                    self.now = end;
                    break;
                }
                self.now += 1;
            } else {
                self.tick_ready();
            }
            if self.now >= end {
                break;
            }
            let target = match self.horizon.min() {
                Some(t) if t < end => t,
                _ => end,
            };
            if target > self.now {
                self.note_skip(target.saturating_since(self.now));
                self.now = target;
            }
        }
    }

    /// Ticks every processor whose bound has arrived at the current cycle
    /// and re-indexes their bounds for the next one.
    fn tick_ready(&mut self) {
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        self.horizon.ready_slots(self.now, &mut ready);
        self.tick_procs(&ready);
        self.now += 1;
        for &i in &ready {
            self.horizon
                .set(i, self.procs[i].next_activity_at(self.now));
        }
        self.ready = ready;
    }

    /// Reports every processor's bound into the indexed horizon. Run-entry
    /// only: between runs the caller may mutate processors directly
    /// (interrupt delivery, fault injection, protocol tests), invalidating
    /// whatever the tree last saw.
    fn rebuild_bounds(&mut self) {
        for i in 0..self.procs.len() {
            self.horizon
                .set(i, self.procs[i].next_activity_at(self.now));
        }
    }

    /// Total retired user instructions across logical processors.
    pub fn user_instructions(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| match p {
                Proc::Single(core) => core.retired_user(),
                Proc::Pair(pair) => pair.retired_user(),
                Proc::InFlight => unreachable!("proc is on a compute worker"),
            })
            .sum()
    }

    /// Delivers an external interrupt to logical processor `lp`, replicated
    /// to both halves of a pair.
    pub fn deliver_interrupt(&mut self, lp: usize) {
        match &mut self.procs[lp] {
            Proc::Single(core) => {
                let at = core.next_interval_id() + 1;
                core.schedule_interrupt_at(at);
            }
            Proc::Pair(pair) => pair.deliver_interrupt(),
            Proc::InFlight => unreachable!("proc is on a compute worker"),
        }
    }

    /// Starts a measurement window: window-relative statistics are measured
    /// from this point.
    pub fn begin_window(&mut self) {
        self.window_start = self.now;
        self.user_at_window_start = 0;
        for proc in &mut self.procs {
            match proc {
                Proc::Single(core) => {
                    core.stats_mut().reset();
                }
                Proc::Pair(pair) => {
                    pair.stats_mut().reset();
                    pair.vocal_mut().stats_mut().reset();
                    pair.mute_mut().stats_mut().reset();
                }
                Proc::InFlight => unreachable!("proc is on a compute worker"),
            }
        }
        self.mem.stats_mut().reset();
        self.skip_runs = EpisodeSummary::new();
    }

    /// Collects the observability summary for the current window: the
    /// per-pair histograms (window-relative, reset by
    /// [`begin_window`](Self::begin_window)), every core's stall-episode
    /// summary, and this window's skip runs.
    ///
    /// `skipped_cycles` and the trace counters are *not* filled here — they
    /// are cumulative over the whole measurement and are assigned once by
    /// the sampling layer. Returns an empty report when observability is
    /// disabled.
    pub fn window_obs(&self) -> ObsReport {
        let mut obs = ObsReport::new();
        if !self.obs_enabled {
            return obs;
        }
        for proc in &self.procs {
            match proc {
                Proc::Single(core) => {
                    obs.stall_episodes.merge(&core.stats().stall_episodes);
                }
                Proc::Pair(pair) => {
                    obs.check_latency.merge(&pair.stats().check_latency);
                    obs.incoherence_gaps.merge(&pair.stats().incoherence_gaps);
                    for core in [pair.vocal(), pair.mute()] {
                        obs.stall_episodes.merge(&core.stats().stall_episodes);
                    }
                }
                Proc::InFlight => unreachable!("proc is on a compute worker"),
            }
        }
        obs.skip_runs.merge(&self.skip_runs);
        obs
    }

    /// Drains every pair's bounded event trace, in logical-processor order,
    /// returning `(pushed, evicted, events)` totals. Events stay grouped by
    /// pair (each stamped with its `lp`), oldest-first within a pair.
    /// Empty when observability is disabled.
    pub fn take_trace(&mut self) -> (u64, u64, Vec<TraceEvent>) {
        let mut pushed = 0;
        let mut evicted = 0;
        let mut events = Vec::new();
        for proc in &mut self.procs {
            if let Proc::Pair(pair) = proc {
                if let Some(trace) = pair.trace_mut() {
                    pushed += trace.pushed();
                    evicted += trace.evicted();
                    events.extend(trace.take_events());
                }
            }
        }
        (pushed, evicted, events)
    }

    /// Collects statistics for the current window.
    ///
    /// Note: `user_instructions` here is window-relative, computed against
    /// [`begin_window`](Self::begin_window).
    pub fn window_stats(&self) -> SystemStats {
        // `begin_window` resets the per-core counters, so the counters are
        // already window-relative; the snapshot guards the case where no
        // window was ever begun.
        let mut stats = SystemStats {
            user_instructions: self
                .user_instructions()
                .saturating_sub(self.user_at_window_start),
            cycles: self.now.saturating_since(self.window_start),
            ..SystemStats::default()
        };
        for proc in &self.procs {
            match proc {
                Proc::Single(core) => {
                    stats.tlb_misses += core.stats().tlb_misses();
                    stats.note_allocation_probes(core.stats());
                }
                Proc::Pair(pair) => {
                    stats.mismatches += pair.stats().mismatches.value();
                    stats.input_incoherence += pair.stats().input_incoherence.value();
                    stats.recoveries += pair.stats().recoveries.value();
                    stats.phase2 += pair.stats().phase2_recoveries.value();
                    stats.failures += pair.stats().failures.value();
                    stats.sync_requests += pair.stats().sync_requests.value();
                    stats.tlb_misses += pair.vocal().stats().tlb_misses();
                    for core in [pair.vocal(), pair.mute()] {
                        stats.serializing_stall_cycles +=
                            core.stats().serializing_stall_cycles.value();
                        stats.reexec_penalty_cycles += core.stats().reexec_penalty_cycles.value();
                        stats.note_allocation_probes(core.stats());
                    }
                }
                Proc::InFlight => unreachable!("proc is on a compute worker"),
            }
        }
        stats.phantom_garbage_fills = self.mem.stats().phantom_garbage_fills.value();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecutionMode;
    use reunion_workloads::Workload;

    fn moldyn() -> Workload {
        Workload::by_name("moldyn").expect("suite workload")
    }

    #[test]
    fn nonredundant_system_makes_progress() {
        let cfg = SystemConfig::small_test(ExecutionMode::NonRedundant);
        let mut sys = CmpSystem::new(&cfg, &moldyn());
        sys.run(5_000);
        assert!(sys.user_instructions() > 1_000);
        assert!(sys.pair_mut(0).is_none());
        assert!(sys.core_mut(0).is_some());
    }

    #[test]
    fn reunion_system_makes_progress_and_recovers() {
        let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
        let mut sys = CmpSystem::new(&cfg, &moldyn());
        sys.run(20_000);
        let stats = sys.window_stats();
        assert!(stats.user_instructions > 1_000);
        assert_eq!(stats.failures, 0, "no failures expected without errors");
        assert!(sys.pair_mut(0).is_some());
    }

    #[test]
    fn strict_system_never_observes_incoherence() {
        let cfg = SystemConfig::small_test(ExecutionMode::Strict);
        let mut sys = CmpSystem::new(&cfg, &moldyn());
        sys.run(20_000);
        let stats = sys.window_stats();
        assert!(stats.user_instructions > 1_000);
        assert_eq!(stats.mismatches, 0);
    }

    #[test]
    fn redundant_modes_are_slower_than_baseline() {
        let workload = moldyn();
        let mut base = CmpSystem::new(
            &SystemConfig::small_test(ExecutionMode::NonRedundant),
            &workload,
        );
        let mut reunion =
            CmpSystem::new(&SystemConfig::small_test(ExecutionMode::Reunion), &workload);
        base.run(15_000);
        reunion.run(15_000);
        assert!(
            reunion.user_instructions() <= base.user_instructions(),
            "reunion {} vs baseline {}",
            reunion.user_instructions(),
            base.user_instructions()
        );
    }

    #[test]
    fn window_accounting_is_relative() {
        let cfg = SystemConfig::small_test(ExecutionMode::NonRedundant);
        let mut sys = CmpSystem::new(&cfg, &moldyn());
        sys.run(2_000);
        sys.begin_window();
        sys.run(1_000);
        let stats = sys.window_stats();
        assert_eq!(stats.cycles, 1_000);
        assert!(stats.user_instructions > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn interrupt_delivery_does_not_derail_pairs() {
        let cfg = SystemConfig::small_test(ExecutionMode::Reunion);
        let mut sys = CmpSystem::new(&cfg, &moldyn());
        sys.run(2_000);
        sys.deliver_interrupt(0);
        sys.deliver_interrupt(1);
        sys.run(10_000);
        let stats = sys.window_stats();
        assert_eq!(stats.failures, 0);
        assert!(stats.user_instructions > 1_000);
    }

    /// Builds a system around a single hand-written halting program — the
    /// suite's generated workloads loop forever, so all-halted early exit
    /// needs a bespoke proc.
    fn halting_system(engine: crate::Engine) -> CmpSystem {
        use reunion_isa::{Instruction as I, Program, RegId};
        let code = vec![
            I::add_imm(RegId::new(1), RegId::new(1), 5),
            I::alu_imm(reunion_isa::AluOp::Mul, RegId::new(2), RegId::new(1), 3),
            I::halt(),
        ];
        let program = Arc::new(Program::new("halting", code).expect("valid program"));
        let mut mem = MemorySystem::new(reunion_mem::MemConfig::small());
        let l1 = mem.register_l1(Owner::vocal(0));
        let core = Core::new(CoreConfig::default(), program, l1, 3);
        CmpSystem {
            mem,
            procs: vec![Proc::Single(Box::new(core))],
            check_bus: CheckBus::new(0),
            now: Cycle::ZERO,
            window_start: Cycle::ZERO,
            user_at_window_start: 0,
            engine,
            skipped: 0,
            obs_enabled: false,
            skip_runs: EpisodeSummary::new(),
            horizon: HorizonTree::new(1),
            ready: Vec::new(),
            intracell: 0,
            pool: None,
        }
    }

    #[test]
    fn all_halted_system_early_exits_under_both_engines() {
        for engine in [crate::Engine::Dense, crate::Engine::Skip] {
            let mut sys = halting_system(engine);
            assert!(!sys.all_quiescent());
            sys.run(1_000_000);
            // Time still advances the full budget (window accounting), but
            // almost none of it was ticked.
            assert_eq!(sys.now().as_u64(), 1_000_000);
            assert!(sys.all_quiescent());
            assert!(sys.next_ready().is_none());
            assert_eq!(sys.user_instructions(), 2, "{engine}");
            assert!(
                sys.skipped_cycles() > 999_000,
                "{engine}: skipped only {}",
                sys.skipped_cycles()
            );
            // Re-running a quiescent system is a pure fast-forward.
            sys.run(500);
            assert_eq!(sys.now().as_u64(), 1_000_500);
            assert_eq!(sys.user_instructions(), 2);
        }
    }

    #[test]
    fn engine_accessors_reflect_configuration() {
        let mut cfg = SystemConfig::small_test(ExecutionMode::Reunion);
        cfg.engine = crate::Engine::Dense;
        let sys = CmpSystem::new(&cfg, &moldyn());
        assert_eq!(sys.engine(), crate::Engine::Dense);
        assert_eq!(sys.skipped_cycles(), 0);
    }

    #[test]
    fn stats_helpers() {
        let stats = SystemStats {
            user_instructions: 2_000_000,
            cycles: 1_000_000,
            mismatches: 4,
            ..Default::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.per_million(stats.mismatches) - 2.0).abs() < 1e-12);
    }
}

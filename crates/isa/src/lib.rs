//! A compact RISC instruction set with exact functional semantics.
//!
//! The Reunion paper evaluates an UltraSPARC III system. Reproducing the
//! execution model does not require SPARC encodings — it requires an ISA
//! whose *observable behaviours* drive the phenomena the paper measures:
//!
//! * loads and stores with real data values (so input incoherence produces
//!   genuinely divergent register state and fingerprints),
//! * atomic read-modify-write operations and memory barriers (spin locks,
//!   critical sections, TSO ordering),
//! * serializing instructions — traps, membars, atomics and non-idempotent
//!   MMU accesses — which dominate redundant-execution overhead (§4.4, §5.5),
//! * data-dependent control flow (spinning on a lock word is precisely the
//!   paper's Figure 1 input-incoherence scenario).
//!
//! The crate provides the instruction type ([`Instruction`], [`Opcode`]), the
//! architectural state ([`ArchState`], [`RegFile`]), program images
//! ([`Program`]), and a golden-model interpreter ([`FunctionalCore`]) used by
//! the out-of-order core for result checking and by the test suite as an
//! oracle.
//!
//! # Examples
//!
//! ```
//! use reunion_isa::{Addr, FunctionalCore, Instruction, Program, RegId, SparseMemory};
//!
//! // r1 = 40; r2 = r1 + 2; M[0x100] = r2
//! let prog = Program::new(
//!     "demo",
//!     vec![
//!         Instruction::load_imm(RegId::new(1), 40),
//!         Instruction::add_imm(RegId::new(2), RegId::new(1), 2),
//!         Instruction::store(RegId::new(3), RegId::new(2), 0x100),
//!         Instruction::halt(),
//!     ],
//! )
//! .expect("valid program");
//!
//! let mut mem = SparseMemory::new();
//! let mut core = FunctionalCore::new();
//! while core.step(&prog, &mut mem).is_some() {}
//! assert_eq!(mem.peek(Addr::new(0x100)), 42);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod addr;
pub mod asm;
mod exec;
mod inst;
mod program;
mod reg;
mod state;

pub use addr::{Addr, LINE_BYTES, PAGE_BYTES};
pub use asm::{AsmError, AsmErrorKind, KernelImage, Span};
pub use exec::{
    alu_compute, atomic_update, branch_decides, effective_address, execute, DataMemory,
    FunctionalCore, SparseMemory, StepEffect,
};
pub use inst::{AluOp, AtomicOp, BranchCond, Instruction, Opcode};
pub use program::{Program, ProgramError};
pub use reg::{RegFile, RegId, NUM_REGS};
pub use state::ArchState;

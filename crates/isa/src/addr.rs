//! Memory addresses and geometry constants.

use std::fmt;

/// Cache line size in bytes (Table 1: 64-byte lines).
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes (Table 1: 8 KB pages).
pub const PAGE_BYTES: u64 = 8192;

/// A byte address in the simulated flat address space.
///
/// The simulator uses an identity virtual-to-physical mapping — the TLB
/// models translation *timing* (hits, misses, software handlers), which is
/// what the paper's results depend on, not address remapping.
///
/// # Examples
///
/// ```
/// use reunion_isa::{Addr, LINE_BYTES};
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line().as_u64() % LINE_BYTES, 0);
/// assert_eq!(Addr::new(0x40).line_index(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw byte offset.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The address rounded down to its cache-line base.
    #[inline]
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES - 1))
    }

    /// The cache-line index (address divided by the line size).
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Byte offset within the cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// The page number (address divided by the page size).
    #[inline]
    pub const fn page(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// The address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }

    /// The 8-byte-aligned word base containing this address.
    #[inline]
    pub const fn word(self) -> Addr {
        Addr(self.0 & !7)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounds_down() {
        assert_eq!(Addr::new(0x7F).line(), Addr::new(0x40));
        assert_eq!(Addr::new(0x40).line(), Addr::new(0x40));
        assert_eq!(Addr::new(0x3F).line(), Addr::new(0));
    }

    #[test]
    fn line_index_and_offset_decompose() {
        let a = Addr::new(3 * LINE_BYTES + 5);
        assert_eq!(a.line_index(), 3);
        assert_eq!(a.line_offset(), 5);
    }

    #[test]
    fn page_uses_8k_pages() {
        assert_eq!(Addr::new(PAGE_BYTES - 1).page(), 0);
        assert_eq!(Addr::new(PAGE_BYTES).page(), 1);
    }

    #[test]
    fn word_aligns_to_8_bytes() {
        assert_eq!(Addr::new(0x17).word(), Addr::new(0x10));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x40).to_string(), "0x0000000040");
    }
}

//! Program images.

use std::fmt;
use std::sync::Arc;

use crate::{Instruction, Opcode};

/// An error found while validating a program image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The code image is empty.
    Empty,
    /// A branch at `pc` targets `target`, which is outside the image.
    BranchOutOfRange {
        /// PC of the offending branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The entry point is outside the image.
    EntryOutOfRange {
        /// The offending entry point.
        entry: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ProgramError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry} is out of range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// An immutable code image: instructions addressed by PC index.
///
/// Both cores of a logical processor pair fetch from the *same* program
/// image; divergence can only come from data values (input incoherence) or
/// injected soft errors, exactly as in the paper's model.
///
/// The instruction storage is `Arc`-backed, so `Clone` is a reference-count
/// bump rather than a copy of the image: every core of every system built
/// from the same workload shares one allocation.
///
/// # Examples
///
/// ```
/// use reunion_isa::{Instruction, Program, RegId};
///
/// let prog = Program::new(
///     "loop",
///     vec![
///         Instruction::add_imm(RegId::new(1), RegId::new(1), 1),
///         Instruction::jump(0),
///     ],
/// )?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), reunion_isa::ProgramError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    name: Arc<str>,
    code: Arc<[Instruction]>,
    entry: usize,
}

impl Program {
    /// Creates and validates a program starting at PC 0.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the image is empty or any branch targets
    /// a PC outside the image.
    pub fn new(name: impl Into<String>, code: Vec<Instruction>) -> Result<Self, ProgramError> {
        Self::with_entry(name, code, 0)
    }

    /// Creates and validates a program with an explicit entry point.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] on an empty image, an out-of-range entry, or
    /// an out-of-range branch target.
    pub fn with_entry(
        name: impl Into<String>,
        code: Vec<Instruction>,
        entry: usize,
    ) -> Result<Self, ProgramError> {
        if code.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entry >= code.len() {
            return Err(ProgramError::EntryOutOfRange { entry });
        }
        for (pc, inst) in code.iter().enumerate() {
            if let Some(target) = inst.branch_target() {
                if target >= code.len() {
                    return Err(ProgramError::BranchOutOfRange { pc, target });
                }
            }
        }
        Ok(Program {
            name: name.into().into(),
            code: code.into(),
            entry,
        })
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the image is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The entry PC.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// The instruction at `pc`, or `None` past the end of the image.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<&Instruction> {
        self.code.get(pc)
    }

    /// Iterates over `(pc, instruction)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Instruction)> {
        self.code.iter().enumerate()
    }

    /// Counts static instructions matching `pred` (used by workload tests to
    /// verify serialization rates).
    pub fn count_matching(&self, pred: impl Fn(&Opcode) -> bool) -> usize {
        self.code.iter().filter(|i| pred(&i.op)).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; program {} ({} instructions)",
            self.name,
            self.code.len()
        )?;
        for (pc, inst) in self.code.iter().enumerate() {
            writeln!(f, "{pc:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchCond, RegId};

    #[test]
    fn rejects_empty_program() {
        assert_eq!(Program::new("e", vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let err = Program::new("b", vec![Instruction::jump(5)]).unwrap_err();
        assert_eq!(err, ProgramError::BranchOutOfRange { pc: 0, target: 5 });
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let err = Program::with_entry("e", vec![Instruction::nop()], 3).unwrap_err();
        assert_eq!(err, ProgramError::EntryOutOfRange { entry: 3 });
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let prog = Program::new("f", vec![Instruction::nop(), Instruction::halt()]).unwrap();
        assert!(prog.fetch(1).is_some());
        assert!(prog.fetch(2).is_none());
    }

    #[test]
    fn count_matching_finds_serializing() {
        let prog = Program::new(
            "c",
            vec![
                Instruction::membar(),
                Instruction::trap(),
                Instruction::nop(),
                Instruction::branch(BranchCond::Eqz, RegId::new(1), 0),
            ],
        )
        .unwrap();
        assert_eq!(prog.count_matching(|op| op.is_serializing()), 2);
    }

    #[test]
    fn display_lists_instructions() {
        let prog = Program::new("d", vec![Instruction::nop()]).unwrap();
        let text = prog.to_string();
        assert!(text.contains("program d"));
        assert!(text.contains("nop"));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!ProgramError::Empty.to_string().is_empty());
        assert!(!ProgramError::BranchOutOfRange { pc: 1, target: 9 }
            .to_string()
            .is_empty());
    }
}

//! Exact functional semantics and the golden-model interpreter.

use reunion_kernel::FastHashMap;

use crate::{Addr, AluOp, ArchState, AtomicOp, BranchCond, Instruction, Opcode, Program, RegId};

/// Computes an ALU result. All arithmetic wraps; shifts use the low six bits
/// of the shift amount.
#[inline]
pub fn alu_compute(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Xor => a ^ b,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Shl => a << (b & 63),
        AluOp::Shr => a >> (b & 63),
        AluOp::Mul => a.wrapping_mul(b),
    }
}

/// Evaluates a branch condition on a register value.
#[inline]
pub fn branch_decides(cond: BranchCond, value: u64) -> bool {
    match cond {
        BranchCond::Eqz => value == 0,
        BranchCond::Nez => value != 0,
        BranchCond::Ltz => (value as i64) < 0,
        BranchCond::Always => true,
    }
}

/// Computes the new memory value for an atomic read-modify-write.
#[inline]
pub fn atomic_update(op: AtomicOp, old: u64, operand: u64) -> u64 {
    match op {
        AtomicOp::Swap => operand,
        AtomicOp::FetchAdd => old.wrapping_add(operand),
    }
}

/// The memory interface used by the functional interpreter.
///
/// All accesses are 8-byte words; the address is word-aligned by the
/// implementation. A `&mut M` can be passed wherever `M: DataMemory` is
/// expected.
pub trait DataMemory {
    /// Reads the 8-byte word containing `addr`.
    fn load(&mut self, addr: Addr) -> u64;
    /// Writes the 8-byte word containing `addr`.
    fn store(&mut self, addr: Addr, value: u64);
}

impl<M: DataMemory + ?Sized> DataMemory for &mut M {
    fn load(&mut self, addr: Addr) -> u64 {
        (**self).load(addr)
    }
    fn store(&mut self, addr: Addr, value: u64) {
        (**self).store(addr, value)
    }
}

/// A sparse word-granular memory image.
///
/// Unwritten locations read as a deterministic hash of their address (rather
/// than zero) so that accidental dependence on uninitialized memory shows up
/// in tests instead of silently matching across cores.
///
/// # Examples
///
/// ```
/// use reunion_isa::{Addr, DataMemory, SparseMemory};
///
/// let mut mem = SparseMemory::new();
/// mem.store(Addr::new(0x40), 7);
/// assert_eq!(mem.load(Addr::new(0x40)), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseMemory {
    // FastHashMap rather than SipHash: `peek`/`poke` run once per simulated
    // memory access, and this map is never iterated, so hashing is pure
    // point-lookup cost.
    words: FastHashMap<u64, u64>,
}

impl SparseMemory {
    /// Creates an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads without mutating (same value a `load` would return).
    pub fn peek(&self, addr: Addr) -> u64 {
        let w = addr.word().as_u64();
        self.words
            .get(&w)
            .copied()
            .unwrap_or_else(|| Self::uninit_value(w))
    }

    /// Writes a word directly (test setup).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.word().as_u64(), value);
    }

    /// Number of words ever written.
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// The deterministic value returned for never-written words.
    pub fn uninit_value(word_addr: u64) -> u64 {
        // splitmix-style mixer; see `SimRng::hash_value`.
        let mut z = word_addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl DataMemory for SparseMemory {
    fn load(&mut self, addr: Addr) -> u64 {
        self.peek(addr)
    }

    fn store(&mut self, addr: Addr, value: u64) {
        self.poke(addr, value);
    }
}

/// The architecturally visible effect of retiring one instruction.
///
/// The out-of-order core and the fingerprint unit both consume these: a
/// fingerprint logically captures "all register updates, branch targets,
/// store addresses, and store values" (§4.3), which is exactly the payload
/// carried here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEffect {
    /// A register write with its value.
    Reg {
        /// Destination register.
        dst: RegId,
        /// The written value.
        value: u64,
    },
    /// A load: register write plus the accessed address.
    Load {
        /// Destination register.
        dst: RegId,
        /// Word-aligned effective address.
        addr: Addr,
        /// The loaded value.
        value: u64,
    },
    /// A store of `value` to `addr`.
    Store {
        /// Word-aligned effective address.
        addr: Addr,
        /// The stored value.
        value: u64,
    },
    /// An atomic read-modify-write.
    Atomic {
        /// Destination register (receives the old value).
        dst: RegId,
        /// Word-aligned effective address.
        addr: Addr,
        /// Value read from memory.
        old: u64,
        /// Value written back.
        new: u64,
    },
    /// A control transfer with its resolved direction and target.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// The next PC.
        next_pc: usize,
    },
    /// A memory barrier retired.
    Membar,
    /// A trap retired.
    Trap,
    /// A non-idempotent MMU access at an MMU-space offset.
    MmuOp {
        /// MMU register offset.
        offset: u64,
    },
    /// No architecturally visible effect.
    Nop,
}

/// A single-stepping golden-model interpreter.
///
/// `FunctionalCore` executes a [`Program`] against a [`DataMemory`] with the
/// exact semantics the out-of-order core must reproduce. Integration tests
/// run it beside the timing core and require identical architectural state.
///
/// # Examples
///
/// ```
/// use reunion_isa::{FunctionalCore, Instruction, Program, RegId, SparseMemory};
///
/// let prog = Program::new(
///     "inc",
///     vec![Instruction::add_imm(RegId::new(1), RegId::new(1), 1), Instruction::halt()],
/// )?;
/// let mut mem = SparseMemory::new();
/// let mut core = FunctionalCore::new();
/// assert!(core.step(&prog, &mut mem).is_some());
/// assert!(core.step(&prog, &mut mem).is_none()); // halt
/// assert_eq!(core.state.regs.read(RegId::new(1)), 1);
/// # Ok::<(), reunion_isa::ProgramError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionalCore {
    /// Architectural state (registers + PC).
    pub state: ArchState,
    /// Number of retired instructions.
    pub retired: u64,
    halted: bool,
}

impl FunctionalCore {
    /// Creates a core at PC 0 with zeroed registers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a core starting from an existing architectural state.
    pub fn from_state(state: ArchState) -> Self {
        FunctionalCore {
            state,
            retired: 0,
            halted: false,
        }
    }

    /// Whether the core has executed a `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction; returns its effect, or `None` once halted
    /// or if the PC runs off the end of the image.
    pub fn step(&mut self, program: &Program, mem: &mut impl DataMemory) -> Option<StepEffect> {
        if self.halted {
            return None;
        }
        let pc = self.state.pc;
        let inst = *program.fetch(pc)?;
        if inst.op == Opcode::Halt {
            self.halted = true;
            return None;
        }
        let effect = execute(&inst, &mut self.state, pc, mem);
        self.retired += 1;
        Some(effect)
    }

    /// Runs until halt or `max_steps`, returning the number of instructions
    /// retired by this call.
    pub fn run(&mut self, program: &Program, mem: &mut impl DataMemory, max_steps: u64) -> u64 {
        let before = self.retired;
        for _ in 0..max_steps {
            if self.step(program, mem).is_none() {
                break;
            }
        }
        self.retired - before
    }
}

/// Executes `inst` at `pc`, updating `state` (registers and next PC) and
/// `mem`, and returns the architectural effect.
///
/// This is the single source of truth for instruction semantics; the
/// out-of-order pipeline calls it when instructions execute.
pub fn execute(
    inst: &Instruction,
    state: &mut ArchState,
    pc: usize,
    mem: &mut impl DataMemory,
) -> StepEffect {
    let mut next_pc = pc + 1;
    let effect = match inst.op {
        Opcode::Nop | Opcode::Halt => StepEffect::Nop,
        Opcode::LoadImm => {
            let dst = inst.dst.expect("load_imm has dst");
            let value = inst.imm as u64;
            state.regs.write(dst, value);
            StepEffect::Reg { dst, value }
        }
        Opcode::Alu(op) => {
            let dst = inst.dst.expect("alu has dst");
            let a = state.regs.read(inst.src1.expect("alu has src1"));
            let b = match inst.src2 {
                Some(reg) => state.regs.read(reg),
                None => inst.imm as u64,
            };
            let value = alu_compute(op, a, b);
            state.regs.write(dst, value);
            StepEffect::Reg { dst, value }
        }
        Opcode::Load => {
            let dst = inst.dst.expect("load has dst");
            let addr = effective_address(inst, state);
            let value = mem.load(addr);
            state.regs.write(dst, value);
            StepEffect::Load { dst, addr, value }
        }
        Opcode::Store => {
            let addr = effective_address(inst, state);
            let value = state.regs.read(inst.src2.expect("store has src2"));
            mem.store(addr, value);
            StepEffect::Store { addr, value }
        }
        Opcode::Atomic(op) => {
            let dst = inst.dst.expect("atomic has dst");
            let addr = effective_address(inst, state);
            let operand = state.regs.read(inst.src2.expect("atomic has src2"));
            let old = mem.load(addr);
            let new = atomic_update(op, old, operand);
            mem.store(addr, new);
            state.regs.write(dst, old);
            StepEffect::Atomic {
                dst,
                addr,
                old,
                new,
            }
        }
        Opcode::Branch(cond) => {
            let value = match inst.src1 {
                Some(reg) => state.regs.read(reg),
                None => 0,
            };
            let taken = branch_decides(cond, value);
            if taken {
                next_pc = inst.imm as usize;
            }
            StepEffect::Branch { taken, next_pc }
        }
        Opcode::Membar => StepEffect::Membar,
        Opcode::Trap => StepEffect::Trap,
        Opcode::MmuOp => StepEffect::MmuOp {
            offset: inst.imm as u64,
        },
    };
    state.pc = next_pc;
    effect
}

/// Word-aligned effective address of a memory instruction.
#[inline]
pub fn effective_address(inst: &Instruction, state: &ArchState) -> Addr {
    let base = state
        .regs
        .read(inst.src1.expect("memory op has base register"));
    Addr::new((base as i64).wrapping_add(inst.imm) as u64).word()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction as I;

    fn r(i: u8) -> RegId {
        RegId::new(i)
    }

    #[test]
    fn alu_compute_matrix() {
        assert_eq!(alu_compute(AluOp::Add, 2, 3), 5);
        assert_eq!(alu_compute(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(alu_compute(AluOp::Sub, 2, 3), u64::MAX);
        assert_eq!(alu_compute(AluOp::Xor, 0b110, 0b011), 0b101);
        assert_eq!(alu_compute(AluOp::And, 0b110, 0b011), 0b010);
        assert_eq!(alu_compute(AluOp::Or, 0b100, 0b011), 0b111);
        assert_eq!(alu_compute(AluOp::Shl, 1, 65), 2); // shift mod 64
        assert_eq!(alu_compute(AluOp::Shr, 8, 2), 2);
        assert_eq!(alu_compute(AluOp::Mul, 3, 5), 15);
    }

    #[test]
    fn branch_condition_matrix() {
        assert!(branch_decides(BranchCond::Eqz, 0));
        assert!(!branch_decides(BranchCond::Eqz, 1));
        assert!(branch_decides(BranchCond::Nez, 5));
        assert!(branch_decides(BranchCond::Ltz, (-1i64) as u64));
        assert!(!branch_decides(BranchCond::Ltz, 1));
        assert!(branch_decides(BranchCond::Always, 0));
    }

    #[test]
    fn atomic_update_matrix() {
        assert_eq!(atomic_update(AtomicOp::Swap, 9, 1), 1);
        assert_eq!(atomic_update(AtomicOp::FetchAdd, 9, 2), 11);
    }

    #[test]
    fn sparse_memory_uninit_is_deterministic_and_nonzero_mostly() {
        let mut m = SparseMemory::new();
        let a = Addr::new(0x1000);
        assert_eq!(m.load(a), m.load(a));
        assert_eq!(m.load(a), SparseMemory::uninit_value(0x1000));
        m.store(a, 0);
        assert_eq!(m.load(a), 0);
    }

    #[test]
    fn load_store_round_trip_through_interpreter() {
        let prog = Program::new(
            "ls",
            vec![
                I::load_imm(r(1), 0x200),
                I::load_imm(r(2), 77),
                I::store(r(1), r(2), 0),
                I::load(r(3), r(1), 0),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 100);
        assert_eq!(core.state.regs.read(r(3)), 77);
        assert_eq!(core.retired, 4);
        assert!(core.is_halted());
    }

    #[test]
    fn spin_lock_with_swap_acquires_once() {
        // r1 = &lock; r2 = 1; spin: r3 = swap(lock, 1); bnez r3 -> spin; halt
        let prog = Program::new(
            "lock",
            vec![
                I::load_imm(r(1), 0x80),
                I::load_imm(r(2), 1),
                I::atomic(AtomicOp::Swap, r(3), r(1), r(2), 0),
                I::branch(BranchCond::Nez, r(3), 2),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        mem.poke(Addr::new(0x80), 0); // unlocked
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 100);
        assert!(core.is_halted());
        assert_eq!(mem.peek(Addr::new(0x80)), 1); // now held
        assert_eq!(core.state.regs.read(r(3)), 0); // observed unlocked
    }

    #[test]
    fn spin_lock_busy_waits_when_held() {
        let prog = Program::new(
            "spin",
            vec![
                I::load_imm(r(1), 0x80),
                I::load_imm(r(2), 1),
                I::atomic(AtomicOp::Swap, r(3), r(1), r(2), 0),
                I::branch(BranchCond::Nez, r(3), 2),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        mem.poke(Addr::new(0x80), 1); // held by someone else
        let mut core = FunctionalCore::new();
        let steps = core.run(&prog, &mut mem, 50);
        assert!(!core.is_halted());
        assert_eq!(steps, 50); // still spinning
    }

    #[test]
    fn branch_effects_report_next_pc() {
        let prog = Program::new(
            "br",
            vec![
                I::load_imm(r(1), 0),
                I::branch(BranchCond::Eqz, r(1), 0),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        core.step(&prog, &mut mem);
        let eff = core.step(&prog, &mut mem).unwrap();
        assert_eq!(
            eff,
            StepEffect::Branch {
                taken: true,
                next_pc: 0
            }
        );
        assert_eq!(core.state.pc, 0);
    }

    #[test]
    fn fetch_add_accumulates() {
        let prog = Program::new(
            "fa",
            vec![
                I::load_imm(r(1), 0x40),
                I::load_imm(r(2), 5),
                I::atomic(AtomicOp::FetchAdd, r(3), r(1), r(2), 0),
                I::atomic(AtomicOp::FetchAdd, r(4), r(1), r(2), 0),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        mem.poke(Addr::new(0x40), 100);
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 10);
        assert_eq!(core.state.regs.read(r(3)), 100);
        assert_eq!(core.state.regs.read(r(4)), 105);
        assert_eq!(mem.peek(Addr::new(0x40)), 110);
    }

    #[test]
    fn effective_address_word_aligns_and_wraps() {
        let mut st = ArchState::new(0);
        st.regs.write(r(1), 0x107);
        let ld = I::load(r(2), r(1), 2);
        assert_eq!(effective_address(&ld, &st), Addr::new(0x108));
        st.regs.write(r(1), 4);
        let ld2 = I::load(r(2), r(1), -4);
        assert_eq!(effective_address(&ld2, &st), Addr::new(0));
    }

    #[test]
    fn mmu_and_barrier_effects() {
        let prog = Program::new(
            "sys",
            vec![I::membar(), I::trap(), I::mmu_op(0x18), I::halt()],
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        assert_eq!(core.step(&prog, &mut mem), Some(StepEffect::Membar));
        assert_eq!(core.step(&prog, &mut mem), Some(StepEffect::Trap));
        assert_eq!(
            core.step(&prog, &mut mem),
            Some(StepEffect::MmuOp { offset: 0x18 })
        );
        assert_eq!(core.step(&prog, &mut mem), None);
    }

    #[test]
    fn two_cores_same_program_same_memory_image_agree() {
        // The relaxed-input-replication core of the paper: absent races and
        // errors, redundant executions produce identical state.
        let prog = Program::new(
            "pair",
            vec![
                I::load_imm(r(1), 0x400),
                I::load(r(2), r(1), 0),
                I::alu_imm(AluOp::Mul, r(3), r(2), 3),
                I::store(r(1), r(3), 8),
                I::halt(),
            ],
        )
        .unwrap();
        let mut mem_a = SparseMemory::new();
        let mut mem_b = SparseMemory::new();
        let mut vocal = FunctionalCore::new();
        let mut mute = FunctionalCore::new();
        vocal.run(&prog, &mut mem_a, 100);
        mute.run(&prog, &mut mem_b, 100);
        assert_eq!(vocal.state, mute.state);
        assert_eq!(mem_a, mem_b);
    }
}

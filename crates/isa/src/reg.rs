//! Architectural registers.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_REGS: usize = 32;

/// An architectural register name.
///
/// Register 0 is a normal register (unlike MIPS/RISC-V there is no hardwired
/// zero; generators simply avoid relying on one).
///
/// # Examples
///
/// ```
/// use reunion_isa::RegId;
///
/// let r = RegId::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(u8);

impl RegId {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range"
        );
        RegId(index)
    }

    /// The register number.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The architectural register file: 32 64-bit integer registers.
///
/// In the Reunion microarchitecture the ARF holds *safe state*: it is only
/// updated at retirement, after output comparison succeeds, and it is the
/// state restored by rollback recovery.
///
/// # Examples
///
/// ```
/// use reunion_isa::{RegFile, RegId};
///
/// let mut rf = RegFile::new();
/// rf.write(RegId::new(3), 99);
/// assert_eq!(rf.read(RegId::new(3)), 99);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegFile {
    regs: [u64; NUM_REGS],
}

impl RegFile {
    /// Creates a zero-initialized register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register.
    #[inline]
    pub fn read(&self, reg: RegId) -> u64 {
        self.regs[reg.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn write(&mut self, reg: RegId, value: u64) {
        self.regs[reg.index()] = value;
    }

    /// Copies every register from `other`, the operation performed by
    /// phase two of the re-execution protocol (vocal ARF → mute ARF).
    pub fn copy_from(&mut self, other: &RegFile) {
        self.regs = other.regs;
    }

    /// Iterates over `(register, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, u64)> + '_ {
        self.regs
            .iter()
            .enumerate()
            .map(|(i, &v)| (RegId::new(i as u8), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let rf = RegFile::new();
        for i in 0..NUM_REGS {
            assert_eq!(rf.read(RegId::new(i as u8)), 0);
        }
    }

    #[test]
    fn write_then_read() {
        let mut rf = RegFile::new();
        rf.write(RegId::new(31), u64::MAX);
        assert_eq!(rf.read(RegId::new(31)), u64::MAX);
        assert_eq!(rf.read(RegId::new(30)), 0);
    }

    #[test]
    fn copy_from_duplicates_everything() {
        let mut a = RegFile::new();
        let mut b = RegFile::new();
        for i in 0..NUM_REGS {
            a.write(RegId::new(i as u8), i as u64 * 3 + 1);
        }
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let _ = RegId::new(NUM_REGS as u8);
    }

    #[test]
    fn iter_visits_all_registers() {
        let rf = RegFile::new();
        assert_eq!(rf.iter().count(), NUM_REGS);
    }
}

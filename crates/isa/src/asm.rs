//! Assembly frontend: text ↔ [`Program`].
//!
//! The parser turns a line-oriented `.asm` text into the same `Arc`-backed
//! [`Program`] images the synthetic generator emits, so real kernels flow
//! through every downstream layer (workload cache, grid, engines) without a
//! special case. The printer emits text the parser accepts, making
//! round-tripping a testable property: for any program built from the
//! canonical [`Instruction`] constructors, `parse(print(p)) == p`.
//!
//! # Syntax
//!
//! One statement per line; `;` or `#` starts a comment. A *kernel image*
//! file is:
//!
//! ```text
//! .program spin_histogram      ; image name (required, first)
//! .data 0x01000000             ; set the data cursor (8-byte aligned)
//! .word 0                      ; M[cursor] = 0, cursor += 8
//! .word 1, 2, -3               ; several words at once
//!
//! .thread 0                    ; per-thread code sections, numbered from 0
//! .entry main                  ; optional entry label (default: first pc)
//! main:
//!     li   r1, 0x01000000      ; dst = imm
//! spin:
//!     swap r9, 0(r1), r8       ; atomic swap: dst, disp(base), operand
//!     bnez r9, spin            ; branch to label (or absolute pc)
//!     halt
//! .thread 1
//!     ...
//! ```
//!
//! A file with no `.thread` directive defines a single-threaded image whose
//! one program carries the image name verbatim; with `.thread` sections the
//! programs are named `<image>.t<thread>`, matching the generator's
//! convention. Labels are section-local and resolve to absolute PCs (the
//! ISA's branch encoding). Initial-memory directives (`.data`/`.word`) are
//! image-global and preserve file order, so later words may deliberately
//! overwrite earlier ones.
//!
//! ## Mnemonics
//!
//! | form | instruction |
//! |---|---|
//! | `nop`, `halt`, `membar`, `trap` | the nullary opcodes |
//! | `mmu <imm>` | [`Instruction::mmu_op`] |
//! | `li rD, <imm>` | [`Instruction::load_imm`] |
//! | `add/sub/xor/and/or/shl/shr/mul rD, rA, rB` | [`Instruction::alu`] |
//! | `addi/subi/xori/andi/ori/shli/shri/muli rD, rA, <imm>` | [`Instruction::alu_imm`] |
//! | `ld rD, <disp>(rA)` | [`Instruction::load`] |
//! | `st <disp>(rA), rS` | [`Instruction::store`] |
//! | `beqz/bnez/bltz rA, <target>` | [`Instruction::branch`] |
//! | `j <target>` | [`Instruction::jump`] |
//! | `swap/fetchadd rD, <disp>(rA), rS` | [`Instruction::atomic`] |
//!
//! Immediates are decimal (optionally negative) or `0x` hexadecimal; a
//! branch `<target>` is a label or an absolute PC; `<disp>` may be omitted
//! (`(rA)` means displacement 0).
//!
//! # Examples
//!
//! ```
//! use reunion_isa::asm;
//!
//! let prog = asm::parse_program(
//!     ".program counter\n\
//!      top:\n\
//!          addi r1, r1, 1\n\
//!          j top\n",
//! )
//! .expect("valid asm");
//! assert_eq!(prog.name(), "counter");
//! assert_eq!(prog.len(), 2);
//! assert_eq!(asm::parse_program(&asm::print_program(&prog)).unwrap(), prog);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::{Addr, AluOp, AtomicOp, BranchCond, Instruction, Opcode, Program, RegId, NUM_REGS};

/// A position in the source text: 1-based line and column (byte offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

impl Default for Span {
    /// The start of the text (line 1, column 1).
    fn default() -> Self {
        Span::new(1, 1)
    }
}

/// What went wrong while parsing assembly text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A mnemonic the ISA does not define.
    UnknownMnemonic(String),
    /// A `.directive` the frontend does not define.
    UnknownDirective(String),
    /// The same label defined twice within one thread section.
    DuplicateLabel(String),
    /// A branch (or `.entry`) references a label never defined in its
    /// section.
    DanglingLabel(String),
    /// An operand that should be a register (`r0`–`r31`) is not one.
    BadRegister(String),
    /// An operand that should be an immediate failed to parse.
    BadImmediate(String),
    /// A branch target (label or absolute PC) points outside the section's
    /// code image.
    TargetOutOfRange {
        /// The resolved target PC.
        target: usize,
        /// The section's instruction count.
        len: usize,
    },
    /// A thread section contains no instructions.
    EmptyProgram,
    /// Any other shape error (wrong operand count, misplaced directive,
    /// out-of-order `.thread`, …), with a human-readable message.
    Syntax(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive {d:?}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmErrorKind::DanglingLabel(l) => write!(f, "dangling label {l:?} (never defined)"),
            AsmErrorKind::BadRegister(t) => {
                write!(f, "bad register {t:?} (expected r0..r{})", NUM_REGS - 1)
            }
            AsmErrorKind::BadImmediate(t) => write!(f, "bad immediate {t:?}"),
            AsmErrorKind::TargetOutOfRange { target, len } => {
                write!(f, "branch target pc {target} outside image of {len}")
            }
            AsmErrorKind::EmptyProgram => write!(f, "thread section has no instructions"),
            AsmErrorKind::Syntax(msg) => f.write_str(msg),
        }
    }
}

/// A parse error with a precise source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// Where in the source the error points.
    pub span: Span,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    fn new(span: Span, kind: AsmErrorKind) -> Self {
        AsmError { span, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.kind)
    }
}

impl std::error::Error for AsmError {}

/// A parsed kernel image: one program per thread plus the initial memory
/// words its `.data`/`.word` directives declared.
///
/// This is the unit `reunion-workloads` consumes: `program(thread)` maps to
/// [`KernelImage::program`], the memory image to [`KernelImage::memory`].
#[derive(Clone, Debug, PartialEq)]
pub struct KernelImage {
    name: String,
    programs: Vec<Program>,
    memory: Vec<(Addr, u64)>,
}

impl KernelImage {
    /// The image name (the `.program` directive).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread programs the image defines.
    pub fn threads(&self) -> usize {
        self.programs.len()
    }

    /// The program for one thread, if the image defines it.
    pub fn program(&self, thread: usize) -> Option<&Program> {
        self.programs.get(thread)
    }

    /// All thread programs, in thread order.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The initial memory words, in file order (later entries overwrite
    /// earlier ones when applied in order).
    pub fn memory(&self) -> &[(Addr, u64)] {
        &self.memory
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A branch/entry target as written: a label or an absolute PC.
#[derive(Clone, Debug)]
enum Target {
    Label(String),
    Pc(usize),
}

/// A branch whose immediate is patched once the section's labels are known.
struct Fixup {
    pc: usize,
    target: Target,
    span: Span,
}

#[derive(Default)]
struct Section {
    code: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    entry: Option<(Target, Span)>,
    start: Span,
}

struct Parser {
    name: Option<String>,
    sections: Vec<Section>,
    explicit_threads: bool,
    memory: Vec<(Addr, u64)>,
    data_cursor: Option<u64>,
    first_thread_span: Option<Span>,
    first_data_span: Option<Span>,
}

/// Parses a kernel image (multi-thread programs plus initial memory).
///
/// # Errors
///
/// Returns an [`AsmError`] with a precise [`Span`] on any malformed input:
/// unknown mnemonics or directives, bad registers/immediates, duplicate or
/// dangling labels, out-of-range targets, empty sections, or misuse of the
/// directives.
pub fn parse_image(text: &str) -> Result<KernelImage, AsmError> {
    parse_internal(text).map(|(image, _)| image)
}

/// Parses a single-threaded program (no `.thread` or `.data` directives).
///
/// This is the inverse of [`print_program`]; images with per-thread
/// sections or initial memory go through [`parse_image`].
///
/// # Errors
///
/// Like [`parse_image`], plus a [`AsmErrorKind::Syntax`] error if the text
/// uses `.thread` or `.data`/`.word`.
pub fn parse_program(text: &str) -> Result<Program, AsmError> {
    let (image, parser_meta) = parse_internal(text)?;
    if let Some(span) = parser_meta.first_thread_span {
        return Err(AsmError::new(
            span,
            AsmErrorKind::Syntax(".thread directive in a single-program context".into()),
        ));
    }
    if let Some(span) = parser_meta.first_data_span {
        return Err(AsmError::new(
            span,
            AsmErrorKind::Syntax(".data/.word directives in a single-program context".into()),
        ));
    }
    let mut programs = image.programs;
    Ok(programs.swap_remove(0))
}

struct ParseMeta {
    first_thread_span: Option<Span>,
    first_data_span: Option<Span>,
}

fn parse_internal(text: &str) -> Result<(KernelImage, ParseMeta), AsmError> {
    let mut p = Parser {
        name: None,
        sections: vec![Section::default()],
        explicit_threads: false,
        memory: Vec::new(),
        data_cursor: None,
        first_thread_span: None,
        first_data_span: None,
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Comments run to end of line; the language has no string literals,
        // so a bare scan is exact.
        let content = match raw.find([';', '#']) {
            Some(cut) => &raw[..cut],
            None => raw,
        };
        let Some(first) = content.find(|c: char| !c.is_whitespace()) else {
            continue;
        };
        let span = Span::new(line_no, first + 1);
        let stmt = content[first..].trim_end();
        if let Some(directive) = stmt.strip_prefix('.') {
            p.directive(directive, span, stmt)?;
        } else {
            p.statement(stmt, span)?;
        }
    }

    let Some(name) = p.name else {
        return Err(AsmError::new(
            Span::new(1, 1),
            AsmErrorKind::Syntax("missing .program directive".into()),
        ));
    };

    let mut programs = Vec::with_capacity(p.sections.len());
    for (thread, section) in p.sections.into_iter().enumerate() {
        let prog_name = if p.explicit_threads {
            format!("{name}.t{thread}")
        } else {
            name.clone()
        };
        programs.push(finish_section(section, prog_name)?);
    }

    Ok((
        KernelImage {
            name,
            programs,
            memory: p.memory,
        },
        ParseMeta {
            first_thread_span: p.first_thread_span,
            first_data_span: p.first_data_span,
        },
    ))
}

fn finish_section(mut section: Section, name: String) -> Result<Program, AsmError> {
    if section.code.is_empty() {
        return Err(AsmError::new(section.start, AsmErrorKind::EmptyProgram));
    }
    let len = section.code.len();
    let resolve = |target: &Target, span: Span| -> Result<usize, AsmError> {
        let pc = match target {
            Target::Label(label) => *section
                .labels
                .get(label)
                .ok_or_else(|| AsmError::new(span, AsmErrorKind::DanglingLabel(label.clone())))?,
            Target::Pc(pc) => *pc,
        };
        if pc >= len {
            return Err(AsmError::new(
                span,
                AsmErrorKind::TargetOutOfRange { target: pc, len },
            ));
        }
        Ok(pc)
    };
    let mut patches = Vec::with_capacity(section.fixups.len());
    for fixup in &section.fixups {
        patches.push((fixup.pc, resolve(&fixup.target, fixup.span)?));
    }
    for (pc, target) in patches {
        section.code[pc].imm = target as i64;
    }
    let entry = match &section.entry {
        Some((target, span)) => resolve(target, *span)?,
        None => 0,
    };
    Program::with_entry(name, section.code, entry).map_err(|e| {
        // Unreachable in practice: emptiness, entry and target ranges were
        // all validated above. Kept as a span-carrying error, not a panic.
        AsmError::new(section.start, AsmErrorKind::Syntax(e.to_string()))
    })
}

impl Parser {
    fn section(&mut self) -> &mut Section {
        self.sections.last_mut().expect("at least one section")
    }

    fn directive(&mut self, directive: &str, span: Span, stmt: &str) -> Result<(), AsmError> {
        let (word, rest) = match directive.find(char::is_whitespace) {
            Some(cut) => (&directive[..cut], directive[cut..].trim()),
            None => (directive, ""),
        };
        let rest_span = Span::new(
            span.line,
            // Column of the argument list: after the directive word and the
            // whitespace separating it (exact because `rest` is a slice of
            // the same line).
            match rest.is_empty() {
                true => span.col + word.len() + 1,
                false => span.col + (rest.as_ptr() as usize - stmt[1..].as_ptr() as usize) + 1,
            },
        );
        match word {
            "program" => {
                if self.name.is_some() {
                    return Err(AsmError::new(
                        span,
                        AsmErrorKind::Syntax("duplicate .program directive".into()),
                    ));
                }
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(".program takes one whitespace-free name".into()),
                    ));
                }
                self.name = Some(rest.to_string());
            }
            "entry" => {
                if rest.is_empty() {
                    return Err(AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(".entry takes a label or pc".into()),
                    ));
                }
                let section = self.section();
                if section.entry.is_some() {
                    return Err(AsmError::new(
                        span,
                        AsmErrorKind::Syntax("duplicate .entry in this section".into()),
                    ));
                }
                let target = parse_target(rest, rest_span)?;
                section.entry = Some((target, rest_span));
            }
            "thread" => {
                let found: usize = rest.parse().map_err(|_| {
                    AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(".thread takes a decimal thread index".into()),
                    )
                })?;
                if !self.explicit_threads {
                    // The implicit leading section must still be untouched;
                    // code above the first `.thread` would have no home.
                    let implicit = self.section();
                    if !implicit.code.is_empty()
                        || !implicit.labels.is_empty()
                        || implicit.entry.is_some()
                    {
                        return Err(AsmError::new(
                            span,
                            AsmErrorKind::Syntax("code before the first .thread directive".into()),
                        ));
                    }
                    self.explicit_threads = true;
                    self.first_thread_span = Some(span);
                    self.sections.clear();
                }
                if found != self.sections.len() {
                    return Err(AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(format!(
                            ".thread {found} out of order (expected .thread {})",
                            self.sections.len()
                        )),
                    ));
                }
                self.sections.push(Section {
                    start: span,
                    ..Section::default()
                });
            }
            "data" => {
                let addr = parse_imm(rest).ok_or_else(|| {
                    AsmError::new(rest_span, AsmErrorKind::BadImmediate(rest.to_string()))
                })? as u64;
                if addr % 8 != 0 {
                    return Err(AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(".data address must be 8-byte aligned".into()),
                    ));
                }
                self.data_cursor = Some(addr);
                self.first_data_span.get_or_insert(span);
            }
            "word" => {
                let Some(cursor) = self.data_cursor.as_mut() else {
                    return Err(AsmError::new(
                        span,
                        AsmErrorKind::Syntax(".word before any .data directive".into()),
                    ));
                };
                if rest.is_empty() {
                    return Err(AsmError::new(
                        rest_span,
                        AsmErrorKind::Syntax(".word takes one or more values".into()),
                    ));
                }
                for tok in rest.split(',') {
                    let tok = tok.trim();
                    let value = parse_imm(tok).ok_or_else(|| {
                        AsmError::new(rest_span, AsmErrorKind::BadImmediate(tok.to_string()))
                    })?;
                    self.memory.push((Addr::new(*cursor), value as u64));
                    *cursor += 8;
                }
                self.first_data_span.get_or_insert(span);
            }
            other => {
                return Err(AsmError::new(
                    span,
                    AsmErrorKind::UnknownDirective(format!(".{other}")),
                ))
            }
        }
        Ok(())
    }

    /// A non-directive statement: zero or more `label:` prefixes, then
    /// optionally one instruction.
    fn statement(&mut self, stmt: &str, span: Span) -> Result<(), AsmError> {
        let mut rest = stmt;
        let mut col = span.col;
        loop {
            let token_len = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let token = &rest[..token_len];
            if let Some(label) = token.strip_suffix(':') {
                if label.is_empty() || !is_label(label) {
                    return Err(AsmError::new(
                        Span::new(span.line, col),
                        AsmErrorKind::Syntax(format!("bad label {label:?}")),
                    ));
                }
                let pc = self.section().code.len();
                if self
                    .section()
                    .labels
                    .insert(label.to_string(), pc)
                    .is_some()
                {
                    return Err(AsmError::new(
                        Span::new(span.line, col),
                        AsmErrorKind::DuplicateLabel(label.to_string()),
                    ));
                }
                let after = &rest[token_len..];
                let Some(next) = after.find(|c: char| !c.is_whitespace()) else {
                    return Ok(());
                };
                col += token_len + next;
                rest = &after[next..];
            } else {
                return self.instruction(rest, Span::new(span.line, col));
            }
        }
    }

    fn instruction(&mut self, stmt: &str, span: Span) -> Result<(), AsmError> {
        let (mnemonic, rest) = match stmt.find(char::is_whitespace) {
            Some(cut) => (&stmt[..cut], stmt[cut..].trim_start()),
            None => (stmt, ""),
        };
        let operand_col = span.col + (stmt.len() - rest.len());
        let ops = split_operands(rest, Span::new(span.line, operand_col));
        let pc = self.section().code.len();

        let inst = match mnemonic {
            "nop" => nullary(Instruction::nop(), &ops, mnemonic, span)?,
            "halt" => nullary(Instruction::halt(), &ops, mnemonic, span)?,
            "membar" => nullary(Instruction::membar(), &ops, mnemonic, span)?,
            "trap" => nullary(Instruction::trap(), &ops, mnemonic, span)?,
            "mmu" => {
                let [imm] = shape(&ops, mnemonic, "mmu <imm>", span)?;
                Instruction::mmu_op(imm.imm()? as u64)
            }
            "li" => {
                let [d, imm] = shape(&ops, mnemonic, "li rD, <imm>", span)?;
                Instruction::load_imm(d.reg()?, imm.imm()?)
            }
            "ld" => {
                let [d, mem] = shape(&ops, mnemonic, "ld rD, <disp>(rA)", span)?;
                let (base, disp) = mem.mem()?;
                Instruction::load(d.reg()?, base, disp)
            }
            "st" => {
                let [mem, s] = shape(&ops, mnemonic, "st <disp>(rA), rS", span)?;
                let (base, disp) = mem.mem()?;
                Instruction::store(base, s.reg()?, disp)
            }
            "j" => {
                let [t] = shape(&ops, mnemonic, "j <target>", span)?;
                self.branch_fixup(pc, t)?;
                Instruction::jump(0)
            }
            "beqz" | "bnez" | "bltz" => {
                let cond = match mnemonic {
                    "beqz" => BranchCond::Eqz,
                    "bnez" => BranchCond::Nez,
                    _ => BranchCond::Ltz,
                };
                let [r, t] = shape(&ops, mnemonic, "bXXz rA, <target>", span)?;
                let reg = r.reg()?;
                self.branch_fixup(pc, t)?;
                Instruction::branch(cond, reg, 0)
            }
            "swap" | "fetchadd" => {
                let op = if mnemonic == "swap" {
                    AtomicOp::Swap
                } else {
                    AtomicOp::FetchAdd
                };
                let [d, mem, s] = shape(&ops, mnemonic, "amo rD, <disp>(rA), rS", span)?;
                let (base, disp) = mem.mem()?;
                Instruction::atomic(op, d.reg()?, base, s.reg()?, disp)
            }
            _ => {
                if let Some(alu) = alu_mnemonic(mnemonic) {
                    match alu {
                        (op, false) => {
                            let [d, a, b] = shape(&ops, mnemonic, "op rD, rA, rB", span)?;
                            Instruction::alu(op, d.reg()?, a.reg()?, b.reg()?)
                        }
                        (op, true) => {
                            let [d, a, imm] = shape(&ops, mnemonic, "opi rD, rA, <imm>", span)?;
                            Instruction::alu_imm(op, d.reg()?, a.reg()?, imm.imm()?)
                        }
                    }
                } else {
                    return Err(AsmError::new(
                        span,
                        AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
                    ));
                }
            }
        };
        self.section().code.push(inst);
        Ok(())
    }

    /// Records a target fixup for the branch being assembled at `pc`.
    fn branch_fixup(&mut self, pc: usize, t: &Operand<'_>) -> Result<(), AsmError> {
        let target = parse_target(t.text, t.span)?;
        self.section().fixups.push(Fixup {
            pc,
            target,
            span: t.span,
        });
        Ok(())
    }
}

fn is_label(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_target(tok: &str, span: Span) -> Result<Target, AsmError> {
    if is_label(tok) {
        return Ok(Target::Label(tok.to_string()));
    }
    match parse_imm(tok) {
        Some(pc) if pc >= 0 => Ok(Target::Pc(pc as usize)),
        _ => Err(AsmError::new(
            span,
            AsmErrorKind::BadImmediate(tok.to_string()),
        )),
    }
}

/// Parses a decimal (optionally negative) or `0x` hexadecimal immediate.
fn parse_imm(tok: &str) -> Option<i64> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u64>().ok()?
    };
    // Two's-complement wrap: `0xffff_ffff_ffff_ffff` means -1, matching the
    // printer's signed-decimal output for large unsigned words.
    let value = magnitude as i64;
    Some(if neg { value.wrapping_neg() } else { value })
}

/// One comma-separated operand with its source position.
struct Operand<'a> {
    text: &'a str,
    span: Span,
}

impl Operand<'_> {
    fn reg_at(tok: &str, span: Span) -> Result<RegId, AsmError> {
        let bad = || AsmError::new(span, AsmErrorKind::BadRegister(tok.to_string()));
        let digits = tok.strip_prefix('r').ok_or_else(bad)?;
        let index: usize = digits.parse().map_err(|_| bad())?;
        if index >= NUM_REGS {
            return Err(bad());
        }
        Ok(RegId::new(index as u8))
    }

    fn reg(&self) -> Result<RegId, AsmError> {
        Self::reg_at(self.text, self.span)
    }

    fn imm(&self) -> Result<i64, AsmError> {
        parse_imm(self.text).ok_or_else(|| {
            AsmError::new(self.span, AsmErrorKind::BadImmediate(self.text.to_string()))
        })
    }

    /// `<disp>(rA)` or `(rA)`.
    fn mem(&self) -> Result<(RegId, i64), AsmError> {
        let shape_err = || {
            AsmError::new(
                self.span,
                AsmErrorKind::Syntax(format!(
                    "bad memory operand {:?} (expected <disp>(rA))",
                    self.text
                )),
            )
        };
        let open = self.text.find('(').ok_or_else(shape_err)?;
        let inner = self
            .text
            .get(
                open + 1
                    ..self
                        .text
                        .len()
                        .checked_sub(1)
                        .filter(|_| self.text.ends_with(')'))
                        .ok_or_else(shape_err)?,
            )
            .ok_or_else(shape_err)?;
        let disp_text = &self.text[..open];
        let disp = if disp_text.is_empty() {
            0
        } else {
            parse_imm(disp_text).ok_or_else(|| {
                AsmError::new(self.span, AsmErrorKind::BadImmediate(disp_text.to_string()))
            })?
        };
        let reg = Self::reg_at(inner, Span::new(self.span.line, self.span.col + open + 1))?;
        Ok((reg, disp))
    }
}

/// Splits an operand list on top-level commas, tracking each operand's
/// column.
fn split_operands<'a>(rest: &'a str, span: Span) -> Vec<Operand<'a>> {
    let mut ops = Vec::new();
    if rest.is_empty() {
        return ops;
    }
    let mut start = 0;
    for (i, c) in rest.char_indices().chain([(rest.len(), ',')]) {
        if c != ',' {
            continue;
        }
        let raw = &rest[start..i];
        let lead = raw.len() - raw.trim_start().len();
        ops.push(Operand {
            text: raw.trim(),
            span: Span::new(span.line, span.col + start + lead),
        });
        start = i + 1;
    }
    ops
}

fn nullary(
    inst: Instruction,
    ops: &[Operand<'_>],
    mnemonic: &str,
    span: Span,
) -> Result<Instruction, AsmError> {
    if ops.is_empty() {
        Ok(inst)
    } else {
        Err(AsmError::new(
            span,
            AsmErrorKind::Syntax(format!("{mnemonic} takes no operands")),
        ))
    }
}

fn shape<'a, 'b, const N: usize>(
    ops: &'b [Operand<'a>],
    mnemonic: &str,
    usage: &str,
    span: Span,
) -> Result<[&'b Operand<'a>; N], AsmError> {
    if ops.len() != N {
        return Err(AsmError::new(
            span,
            AsmErrorKind::Syntax(format!(
                "{mnemonic} takes {N} operand(s): {usage} (got {})",
                ops.len()
            )),
        ));
    }
    let mut it = ops.iter();
    Ok(std::array::from_fn(|_| it.next().expect("length checked")))
}

fn alu_mnemonic(m: &str) -> Option<(AluOp, bool)> {
    let (base, imm) = match m.strip_suffix('i') {
        // `i`-suffixed immediate forms — but `shli`/`shri`/`muli` strip to
        // `shl`/`shr`/`mul`, and plain `shl` etc. stay register forms.
        Some(base) => (base, true),
        None => (m, false),
    };
    let op = match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "xor" => AluOp::Xor,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "mul" => AluOp::Mul,
        _ => return None,
    };
    Some((op, imm))
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// Prints a program as parseable assembly: `parse_program(print_program(p))`
/// reconstructs `p` exactly, including its name and entry point.
///
/// # Panics
///
/// Panics if the program contains an instruction whose operand fields do not
/// match its opcode's canonical shape (impossible for programs built from the
/// [`Instruction`] constructors or produced by [`parse_program`]).
pub fn print_program(p: &Program) -> String {
    let mut out = format!(".program {}\n", p.name());
    render_body(p, &mut out);
    out
}

/// Prints a kernel image as parseable assembly:
/// `parse_image(print_image(img))` reconstructs `img` exactly for images
/// produced by [`parse_image`].
///
/// # Panics
///
/// Like [`print_program`], panics on non-canonical instruction shapes.
pub fn print_image(img: &KernelImage) -> String {
    let mut out = format!(".program {}\n", img.name());
    let mut next_addr = None;
    for &(addr, value) in img.memory() {
        if next_addr != Some(addr) {
            out.push_str(&format!(".data {:#x}\n", addr.as_u64()));
        }
        out.push_str(&format!(".word {}\n", value as i64));
        next_addr = Some(addr.offset(8));
    }
    let single = img.programs().len() == 1 && img.programs()[0].name() == img.name();
    for (thread, p) in img.programs().iter().enumerate() {
        if !single {
            out.push_str(&format!(".thread {thread}\n"));
        }
        render_body(p, &mut out);
    }
    out
}

fn render_body(p: &Program, out: &mut String) {
    let mut targets: BTreeSet<usize> = p.iter().filter_map(|(_, i)| i.branch_target()).collect();
    if p.entry() != 0 {
        targets.insert(p.entry());
        out.push_str(&format!(".entry L{}\n", p.entry()));
    }
    for (pc, inst) in p.iter() {
        if targets.contains(&pc) {
            out.push_str(&format!("L{pc}:\n"));
        }
        out.push_str("    ");
        out.push_str(&render_inst(inst));
        out.push('\n');
    }
}

fn render_inst(inst: &Instruction) -> String {
    let dst = || inst.dst.expect("canonical: dst present");
    let src1 = || inst.src1.expect("canonical: src1 present");
    let src2 = || inst.src2.expect("canonical: src2 present");
    match inst.op {
        Opcode::Nop => "nop".into(),
        Opcode::Halt => "halt".into(),
        Opcode::Membar => "membar".into(),
        Opcode::Trap => "trap".into(),
        Opcode::MmuOp => format!("mmu {}", inst.imm),
        Opcode::LoadImm => format!("li {}, {}", dst(), inst.imm),
        Opcode::Alu(op) => {
            let name = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Xor => "xor",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Shl => "shl",
                AluOp::Shr => "shr",
                AluOp::Mul => "mul",
            };
            match inst.src2 {
                Some(b) => format!("{name} {}, {}, {}", dst(), src1(), b),
                None => format!("{name}i {}, {}, {}", dst(), src1(), inst.imm),
            }
        }
        Opcode::Load => format!("ld {}, {}({})", dst(), inst.imm, src1()),
        Opcode::Store => format!("st {}({}), {}", inst.imm, src1(), src2()),
        Opcode::Branch(cond) => {
            let target = inst.imm as usize;
            match cond {
                BranchCond::Eqz => format!("beqz {}, L{target}", src1()),
                BranchCond::Nez => format!("bnez {}, L{target}", src1()),
                BranchCond::Ltz => format!("bltz {}, L{target}", src1()),
                BranchCond::Always => {
                    assert!(
                        inst.src1.is_none(),
                        "canonical: unconditional jumps carry no register"
                    );
                    format!("j L{target}")
                }
            }
        }
        Opcode::Atomic(op) => {
            let name = match op {
                AtomicOp::Swap => "swap",
                AtomicOp::FetchAdd => "fetchadd",
            };
            format!("{name} {}, {}({}), {}", dst(), inst.imm, src1(), src2())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(text: &str) -> AsmError {
        parse_image(text).expect_err("must fail")
    }

    #[test]
    fn parses_every_mnemonic_shape() {
        let prog = parse_program(
            ".program all\n\
             top:\n\
             \tnop\n\
             \tli r1, -5\n\
             \tadd r2, r1, r1\n\
             \taddi r2, r2, 0x10\n\
             \tshli r3, r2, 3\n\
             \tld r4, 8(r1)\n\
             \tld r4, (r1)\n\
             \tst -8(r1), r4\n\
             \tswap r5, 0(r1), r4\n\
             \tfetchadd r5, 16(r1), r4\n\
             \tmembar\n\
             \ttrap\n\
             \tmmu 24\n\
             \tbeqz r5, top\n\
             \tbnez r5, 0\n\
             \tbltz r5, top\n\
             \tj top\n\
             \thalt\n",
        )
        .expect("valid");
        assert_eq!(prog.len(), 18);
        assert_eq!(
            prog.fetch(1),
            Some(&Instruction::load_imm(RegId::new(1), -5))
        );
        assert_eq!(
            prog.fetch(5),
            Some(&Instruction::load(RegId::new(4), RegId::new(1), 8))
        );
        assert_eq!(
            prog.fetch(6),
            Some(&Instruction::load(RegId::new(4), RegId::new(1), 0))
        );
        assert_eq!(prog.fetch(14).and_then(|i| i.branch_target()), Some(0));
        assert_eq!(prog.fetch(15).and_then(|i| i.branch_target()), Some(0));
    }

    #[test]
    fn round_trips_a_representative_program() {
        let prog = Program::with_entry(
            "rt",
            vec![
                Instruction::nop(),
                Instruction::load_imm(RegId::new(1), i64::MIN),
                Instruction::branch(BranchCond::Nez, RegId::new(1), 1),
                Instruction::jump(0),
            ],
            1,
        )
        .unwrap();
        let text = print_program(&prog);
        assert_eq!(parse_program(&text).expect("parses"), prog);
    }

    #[test]
    fn image_round_trips_threads_and_memory() {
        let text = ".program pair\n\
                    .data 0x100\n\
                    .word 1, -2, 0x3\n\
                    .data 0x1000\n\
                    .word 7\n\
                    .thread 0\n\
                    a:\n\
                    \taddi r1, r1, 1\n\
                    \tj a\n\
                    .thread 1\n\
                    \tld r2, 0(r1)\n\
                    \tj 0\n";
        let image = parse_image(text).expect("valid");
        assert_eq!(image.threads(), 2);
        assert_eq!(image.program(0).unwrap().name(), "pair.t0");
        assert_eq!(image.memory().len(), 4);
        assert_eq!(image.memory()[1], (Addr::new(0x108), (-2i64) as u64));
        assert_eq!(parse_image(&print_image(&image)).expect("reparses"), image);
    }

    #[test]
    fn unknown_mnemonic_has_precise_span() {
        let e = err(".program x\n    frobnicate r1, r2\n");
        assert_eq!(e.span, Span::new(2, 5));
        assert_eq!(e.kind, AsmErrorKind::UnknownMnemonic("frobnicate".into()));
    }

    #[test]
    fn dangling_label_points_at_the_reference() {
        let e = err(".program x\n    nop\n    j nowhere\n");
        assert_eq!(e.span, Span::new(3, 7));
        assert_eq!(e.kind, AsmErrorKind::DanglingLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_points_at_the_redefinition() {
        let e = err(".program x\nhere:\n    nop\nhere:\n    nop\n");
        assert_eq!(e.span, Span::new(4, 1));
        assert_eq!(e.kind, AsmErrorKind::DuplicateLabel("here".into()));
    }

    #[test]
    fn bad_register_and_immediate_spans() {
        let e = err(".program x\n    li r99, 5\n");
        assert_eq!(e.kind, AsmErrorKind::BadRegister("r99".into()));
        assert_eq!(e.span, Span::new(2, 8));
        let e = err(".program x\n    li r1, fivety\n");
        assert_eq!(e.kind, AsmErrorKind::BadImmediate("fivety".into()));
        assert_eq!(e.span, Span::new(2, 12));
    }

    #[test]
    fn numeric_target_out_of_range() {
        let e = err(".program x\n    j 7\n");
        assert_eq!(e.kind, AsmErrorKind::TargetOutOfRange { target: 7, len: 1 });
        assert_eq!(e.span, Span::new(2, 7));
    }

    #[test]
    fn label_at_end_of_section_is_out_of_range_when_referenced() {
        let e = err(".program x\n    j fin\nfin:\n");
        assert_eq!(e.kind, AsmErrorKind::TargetOutOfRange { target: 1, len: 1 });
    }

    #[test]
    fn structural_errors() {
        assert_eq!(
            err("    nop\n").kind,
            AsmErrorKind::Syntax("missing .program directive".into())
        );
        assert_eq!(err(".program x\n").kind, AsmErrorKind::EmptyProgram);
        assert!(matches!(
            err(".program x\n.thread 1\n    nop\n").kind,
            AsmErrorKind::Syntax(_)
        ));
        assert!(matches!(
            err(".program x\n    nop\n.thread 0\n    nop\n").kind,
            AsmErrorKind::Syntax(_)
        ));
        assert!(matches!(
            err(".program x\n.word 3\n    nop\n").kind,
            AsmErrorKind::Syntax(_)
        ));
        assert!(matches!(
            err(".program x\n.bss 12\n    nop\n").kind,
            AsmErrorKind::UnknownDirective(_)
        ));
        assert!(matches!(
            err(".program x\n    st 0(r1)\n").kind,
            AsmErrorKind::Syntax(_)
        ));
    }

    #[test]
    fn parse_program_rejects_image_directives() {
        assert!(matches!(
            parse_program(".program x\n.thread 0\n    nop\n")
                .expect_err("thread sections")
                .kind,
            AsmErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse_program(".program x\n.data 0x0\n.word 1\n    nop\n")
                .expect_err("data image")
                .kind,
            AsmErrorKind::Syntax(_)
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let prog = parse_program(
            "; leading comment\n\
             .program c  # trailing\n\
             \n\
             loop: nop ; same-line label + comment\n\
             \tj loop\n",
        )
        .expect("valid");
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn error_display_carries_span() {
        let e = err(".program x\n    wat\n");
        let text = e.to_string();
        assert!(text.contains("line 2"), "{text}");
        assert!(text.contains("wat"), "{text}");
    }
}

//! Instruction definitions.

use std::fmt;

use crate::RegId;

/// Arithmetic/logic operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise exclusive or.
    Xor,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Logical left shift (modulo 64).
    Shl,
    /// Logical right shift (modulo 64).
    Shr,
    /// Wrapping multiplication (longer execution latency).
    Mul,
}

/// Branch conditions, evaluated on the first source register as a signed
/// 64-bit value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when the register equals zero.
    Eqz,
    /// Taken when the register differs from zero.
    Nez,
    /// Taken when the register is negative.
    Ltz,
    /// Unconditional jump.
    Always,
}

/// Atomic read-modify-write flavours.
///
/// These have both load and store semantics and are *serializing* in the
/// Reunion check stage (§4.4). `Swap` is the building block for spin locks —
/// the paper's canonical input-incoherence scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// `dst = M[addr]; M[addr] = src2`.
    Swap,
    /// `dst = M[addr]; M[addr] = dst + src2`.
    FetchAdd,
}

/// Operation kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// No operation.
    Nop,
    /// Stop the hart (used by tests and examples; generated workloads loop).
    Halt,
    /// Register/immediate ALU operation.
    Alu(AluOp),
    /// `dst = imm`.
    LoadImm,
    /// `dst = M[src1 + imm]` (8-byte load).
    Load,
    /// `M[src1 + imm] = src2` (8-byte store).
    Store,
    /// Conditional or unconditional control transfer to absolute PC `imm`.
    Branch(BranchCond),
    /// Atomic read-modify-write on `M[src1 + imm]`.
    Atomic(AtomicOp),
    /// Memory barrier: orders all earlier memory operations before all later
    /// ones (drains the store buffer under TSO). Serializing.
    Membar,
    /// System trap (syscall entry/exit, TLB handler entry/exit). Serializing.
    Trap,
    /// Non-idempotent MMU register access (software TLB handler body).
    /// Serializing and must execute exactly once.
    MmuOp,
}

impl Opcode {
    /// Whether the instruction has serializing semantics — it must be the
    /// only unretired instruction while it executes and checks (§4.4: traps,
    /// memory barriers, atomics, non-idempotent accesses).
    pub fn is_serializing(self) -> bool {
        matches!(
            self,
            Opcode::Membar | Opcode::Trap | Opcode::MmuOp | Opcode::Atomic(_)
        )
    }

    /// Whether the instruction reads data memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Atomic(_))
    }

    /// Whether the instruction writes data memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store | Opcode::Atomic(_))
    }

    /// Whether the instruction accesses data memory at all.
    pub fn is_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether the instruction is a control transfer.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Branch(_))
    }

    /// Default execution latency in cycles once issued to a functional unit.
    ///
    /// Memory latencies are *not* included here; they come from the cache
    /// hierarchy.
    pub fn exec_latency(self) -> u64 {
        match self {
            Opcode::Alu(AluOp::Mul) => 4,
            Opcode::Trap => 6,
            Opcode::MmuOp => 4,
            _ => 1,
        }
    }
}

/// A decoded instruction.
///
/// The second ALU operand is `src2` when present, otherwise the immediate —
/// the usual RISC reg/reg vs reg/imm split without separate opcodes.
///
/// # Examples
///
/// ```
/// use reunion_isa::{Instruction, Opcode, RegId};
///
/// let inst = Instruction::add_imm(RegId::new(1), RegId::new(2), 8);
/// assert!(!inst.op.is_serializing());
/// assert_eq!(inst.dst, Some(RegId::new(1)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation kind.
    pub op: Opcode,
    /// Destination register, if the instruction produces a register result.
    pub dst: Option<RegId>,
    /// First source register (address base for memory operations).
    pub src1: Option<RegId>,
    /// Second source register (store data / ALU operand / atomic operand).
    pub src2: Option<RegId>,
    /// Immediate: ALU operand, memory displacement, or absolute branch target.
    pub imm: i64,
}

impl Instruction {
    /// A no-op.
    pub fn nop() -> Self {
        Instruction {
            op: Opcode::Nop,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// Stops execution (functional interpreter returns `None`).
    pub fn halt() -> Self {
        Instruction {
            op: Opcode::Halt,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// `dst = imm`.
    pub fn load_imm(dst: RegId, imm: i64) -> Self {
        Instruction {
            op: Opcode::LoadImm,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm,
        }
    }

    /// Register/register ALU operation: `dst = a <op> b`.
    pub fn alu(op: AluOp, dst: RegId, a: RegId, b: RegId) -> Self {
        Instruction {
            op: Opcode::Alu(op),
            dst: Some(dst),
            src1: Some(a),
            src2: Some(b),
            imm: 0,
        }
    }

    /// Register/immediate ALU operation: `dst = a <op> imm`.
    pub fn alu_imm(op: AluOp, dst: RegId, a: RegId, imm: i64) -> Self {
        Instruction {
            op: Opcode::Alu(op),
            dst: Some(dst),
            src1: Some(a),
            src2: None,
            imm,
        }
    }

    /// `dst = a + imm`, the most common generator idiom.
    pub fn add_imm(dst: RegId, a: RegId, imm: i64) -> Self {
        Self::alu_imm(AluOp::Add, dst, a, imm)
    }

    /// 8-byte load: `dst = M[base + disp]`.
    pub fn load(dst: RegId, base: RegId, disp: i64) -> Self {
        Instruction {
            op: Opcode::Load,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: disp,
        }
    }

    /// 8-byte store: `M[base + disp] = value`.
    pub fn store(base: RegId, value: RegId, disp: i64) -> Self {
        Instruction {
            op: Opcode::Store,
            dst: None,
            src1: Some(base),
            src2: Some(value),
            imm: disp,
        }
    }

    /// Conditional branch on `cond(reg)` to absolute PC `target`.
    pub fn branch(cond: BranchCond, reg: RegId, target: usize) -> Self {
        Instruction {
            op: Opcode::Branch(cond),
            dst: None,
            src1: Some(reg),
            src2: None,
            imm: target as i64,
        }
    }

    /// Unconditional jump to absolute PC `target`.
    pub fn jump(target: usize) -> Self {
        Instruction {
            op: Opcode::Branch(BranchCond::Always),
            dst: None,
            src1: None,
            src2: None,
            imm: target as i64,
        }
    }

    /// Atomic read-modify-write: `dst = old M[base + disp]`, new value per
    /// [`AtomicOp`] with operand `operand`.
    pub fn atomic(op: AtomicOp, dst: RegId, base: RegId, operand: RegId, disp: i64) -> Self {
        Instruction {
            op: Opcode::Atomic(op),
            dst: Some(dst),
            src1: Some(base),
            src2: Some(operand),
            imm: disp,
        }
    }

    /// Memory barrier.
    pub fn membar() -> Self {
        Instruction {
            op: Opcode::Membar,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// System trap.
    pub fn trap() -> Self {
        Instruction {
            op: Opcode::Trap,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// Non-idempotent MMU access at MMU-space offset `reg_offset`.
    pub fn mmu_op(reg_offset: u64) -> Self {
        Instruction {
            op: Opcode::MmuOp,
            dst: None,
            src1: None,
            src2: None,
            imm: reg_offset as i64,
        }
    }

    /// Registers read by this instruction.
    pub fn sources(&self) -> impl Iterator<Item = RegId> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// The branch target for control-transfer instructions.
    pub fn branch_target(&self) -> Option<usize> {
        if self.op.is_branch() {
            Some(self.imm as usize)
        } else {
            None
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn r(reg: Option<RegId>) -> String {
            reg.map_or("-".to_string(), |x| x.to_string())
        }
        match self.op {
            Opcode::Nop => write!(f, "nop"),
            Opcode::Halt => write!(f, "halt"),
            Opcode::LoadImm => write!(f, "li {}, {}", r(self.dst), self.imm),
            Opcode::Alu(op) => {
                if let Some(b) = self.src2 {
                    write!(f, "{:?} {}, {}, {}", op, r(self.dst), r(self.src1), b)
                } else {
                    write!(
                        f,
                        "{:?}i {}, {}, {}",
                        op,
                        r(self.dst),
                        r(self.src1),
                        self.imm
                    )
                }
            }
            Opcode::Load => write!(f, "ld {}, [{} + {}]", r(self.dst), r(self.src1), self.imm),
            Opcode::Store => write!(f, "st [{} + {}], {}", r(self.src1), self.imm, r(self.src2)),
            Opcode::Branch(cond) => {
                write!(f, "b{:?} {}, -> {}", cond, r(self.src1), self.imm)
            }
            Opcode::Atomic(op) => write!(
                f,
                "amo{:?} {}, [{} + {}], {}",
                op,
                r(self.dst),
                r(self.src1),
                self.imm,
                r(self.src2)
            ),
            Opcode::Membar => write!(f, "membar"),
            Opcode::Trap => write!(f, "trap"),
            Opcode::MmuOp => write!(f, "mmu [{:#x}]", self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializing_set_matches_paper() {
        assert!(Opcode::Membar.is_serializing());
        assert!(Opcode::Trap.is_serializing());
        assert!(Opcode::MmuOp.is_serializing());
        assert!(Opcode::Atomic(AtomicOp::Swap).is_serializing());
        assert!(!Opcode::Load.is_serializing());
        assert!(!Opcode::Store.is_serializing());
        assert!(!Opcode::Alu(AluOp::Add).is_serializing());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Load.is_load());
        assert!(!Opcode::Load.is_store());
        assert!(Opcode::Store.is_store());
        assert!(!Opcode::Store.is_load());
        assert!(Opcode::Atomic(AtomicOp::FetchAdd).is_load());
        assert!(Opcode::Atomic(AtomicOp::FetchAdd).is_store());
        assert!(!Opcode::Membar.is_memory());
    }

    #[test]
    fn builders_fill_fields() {
        let ld = Instruction::load(RegId::new(1), RegId::new(2), 16);
        assert_eq!(ld.dst, Some(RegId::new(1)));
        assert_eq!(ld.src1, Some(RegId::new(2)));
        assert_eq!(ld.imm, 16);

        let st = Instruction::store(RegId::new(3), RegId::new(4), -8);
        assert_eq!(st.src2, Some(RegId::new(4)));
        assert_eq!(st.imm, -8);

        let j = Instruction::jump(17);
        assert_eq!(j.branch_target(), Some(17));
        assert_eq!(Instruction::nop().branch_target(), None);
    }

    #[test]
    fn sources_iterates_present_registers() {
        let st = Instruction::store(RegId::new(3), RegId::new(4), 0);
        let srcs: Vec<_> = st.sources().collect();
        assert_eq!(srcs, vec![RegId::new(3), RegId::new(4)]);
        assert_eq!(Instruction::trap().sources().count(), 0);
    }

    #[test]
    fn mul_has_longer_latency() {
        assert!(Opcode::Alu(AluOp::Mul).exec_latency() > Opcode::Alu(AluOp::Add).exec_latency());
    }

    #[test]
    fn display_formats_are_nonempty() {
        let insts = [
            Instruction::nop(),
            Instruction::halt(),
            Instruction::load_imm(RegId::new(1), 5),
            Instruction::alu(AluOp::Add, RegId::new(1), RegId::new(2), RegId::new(3)),
            Instruction::add_imm(RegId::new(1), RegId::new(2), 5),
            Instruction::load(RegId::new(1), RegId::new(2), 0),
            Instruction::store(RegId::new(1), RegId::new(2), 0),
            Instruction::branch(BranchCond::Eqz, RegId::new(1), 3),
            Instruction::atomic(
                AtomicOp::Swap,
                RegId::new(1),
                RegId::new(2),
                RegId::new(3),
                0,
            ),
            Instruction::membar(),
            Instruction::trap(),
            Instruction::mmu_op(0x10),
        ];
        for inst in insts {
            assert!(!inst.to_string().is_empty());
        }
    }
}

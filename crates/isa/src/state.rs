//! Architectural state and checkpoints.

use crate::RegFile;

/// Complete per-hart architectural state: register file plus program counter.
///
/// This is the unit of *safe state* in the Reunion execution model
/// (Definition 4): the vocal core's `ArchState` after a successful output
/// comparison defines the recovery point, and rollback recovery restores an
/// earlier `ArchState` snapshot.
///
/// # Examples
///
/// ```
/// use reunion_isa::{ArchState, RegId};
///
/// let mut st = ArchState::new(0);
/// st.regs.write(RegId::new(1), 7);
/// let safe = st.clone();      // checkpoint at a retirement boundary
/// st.regs.write(RegId::new(1), 8);
/// st.pc = 40;
/// let mut recovered = st;
/// recovered.restore(&safe);   // rollback recovery
/// assert_eq!(recovered.regs.read(RegId::new(1)), 7);
/// assert_eq!(recovered.pc, 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ArchState {
    /// The architectural register file.
    pub regs: RegFile,
    /// The next program counter (an index into the program's code image).
    pub pc: usize,
}

impl ArchState {
    /// Creates zeroed state starting at `entry`.
    pub fn new(entry: usize) -> Self {
        ArchState {
            regs: RegFile::new(),
            pc: entry,
        }
    }

    /// Restores this state from a checkpoint.
    pub fn restore(&mut self, checkpoint: &ArchState) {
        self.regs.copy_from(&checkpoint.regs);
        self.pc = checkpoint.pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegId;

    #[test]
    fn new_state_is_zeroed_at_entry() {
        let st = ArchState::new(12);
        assert_eq!(st.pc, 12);
        assert_eq!(st.regs.read(RegId::new(0)), 0);
    }

    #[test]
    fn restore_round_trips() {
        let mut st = ArchState::new(0);
        st.regs.write(RegId::new(2), 5);
        let ckpt = st.clone();
        st.regs.write(RegId::new(2), 99);
        st.pc = 100;
        st.restore(&ckpt);
        assert_eq!(st, ckpt);
    }
}

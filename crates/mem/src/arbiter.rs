//! Crossbar arbitration and banked request queues for the shared L2.
//!
//! The paper-scale model charged each L2 request a fixed crossbar hop plus
//! a scalar per-bank `bank_free` timestamp — enough for 2/4-LP CMPs where
//! the crossbar is effectively contention-free. The many-core scaling study
//! needs the real structure: a bounded set of crossbar request ports handed
//! out by a fair round-robin arbiter, and bounded per-bank request queues
//! that push back on the crossbar when full.
//!
//! Both bounds default to `0`, the *unmodeled* sentinel, under which
//! [`BankedArbiter::service`] degenerates to exactly the old scalar math
//! (`start = max(arrival, bank_free); bank_free = start + occupancy`) —
//! the degenerate-equivalence property test below pins this, and it is what
//! keeps all paper-scale artifacts byte-identical.
//!
//! Everything here is deterministic: requests arrive in the CMP's fixed
//! logical-processor tick order, the round-robin cursor advances only on
//! arbitration, and no wall-clock state exists — so dense↔skip and
//! serial↔parallel byte-identity are preserved by construction.

use crate::{MemConfig, MemStats};

/// Round-robin crossbar ports plus bounded per-bank request queues in
/// front of scalar bank-occupancy timestamps.
///
/// Owned by the memory system; every L2-bound request calls
/// [`service`](Self::service) and receives the cycle the bank begins
/// serving it.
#[derive(Debug)]
pub struct BankedArbiter {
    occupancy: u64,
    queue_depth: usize,
    /// Cycle each bank next becomes free.
    bank_free: Vec<u64>,
    /// Per-bank in-flight service *end* times, pruned lazily; only
    /// maintained when `queue_depth > 0`.
    bank_queue: Vec<Vec<u64>>,
    /// Cycle each crossbar port next becomes free; empty = unbounded.
    ports: Vec<u64>,
    /// Round-robin arbitration cursor over `ports`.
    cursor: usize,
}

impl BankedArbiter {
    /// Builds the arbiter for a configuration. `cfg.l2_banks` must already
    /// reflect any core-count scaling.
    pub fn new(cfg: &MemConfig) -> Self {
        BankedArbiter {
            occupancy: cfg.bank_occupancy,
            queue_depth: cfg.bank_queue_depth,
            bank_free: vec![0; cfg.l2_banks],
            bank_queue: vec![Vec::new(); cfg.l2_banks],
            ports: vec![0; cfg.xbar_ports],
            cursor: 0,
        }
    }

    /// Admits a request for `bank` arriving at `request_at` and returns the
    /// cycle the bank begins serving it. Contention-wait cycles are charged
    /// to `stats`.
    ///
    /// Three gates apply in order: a crossbar port must be free (one cycle
    /// of port occupancy per injection, round-robin arbitration among
    /// waiters), the bank's request queue must have room (a full queue
    /// stalls the injection at the crossbar until the bank drains an
    /// entry), and finally the bank itself must be free.
    pub fn service(&mut self, bank: usize, request_at: u64, stats: &mut MemStats) -> u64 {
        let mut at = request_at;

        if !self.ports.is_empty() {
            let p = self.pick_port(at);
            let inject = self.ports[p].max(at);
            stats.xbar_port_waits.add(inject - at);
            self.ports[p] = inject + 1;
            self.cursor = (p + 1) % self.ports.len();
            at = inject;
        }

        if self.queue_depth > 0 {
            let queue = &mut self.bank_queue[bank];
            queue.retain(|&end| end > at);
            if queue.len() >= self.queue_depth {
                // Full: hold the request at the crossbar until the bank
                // drains its oldest queued entry.
                let earliest = queue.iter().copied().min().unwrap_or(at);
                stats.bank_queue_stalls.incr();
                at = at.max(earliest);
                queue.retain(|&end| end > at);
            }
        }

        let start = self.bank_free[bank].max(at);
        stats.bank_conflict_waits.add(start - at);
        let end = start + self.occupancy;
        self.bank_free[bank] = end;
        if self.queue_depth > 0 {
            self.bank_queue[bank].push(end);
        }
        start
    }

    /// Round-robin port selection: the first port free at `at` scanning
    /// from the cursor, else the earliest-freeing port with the cursor
    /// breaking ties — so no requester can starve another.
    fn pick_port(&self, at: u64) -> usize {
        let n = self.ports.len();
        let mut best = self.cursor % n;
        for i in 0..n {
            let p = (self.cursor + i) % n;
            if self.ports[p] <= at {
                return p;
            }
            if self.ports[p] < self.ports[best] {
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> MemStats {
        MemStats::new()
    }

    /// The old scalar model this must degenerate to under the sentinel
    /// defaults.
    fn scalar_reference(bank_free: &mut [u64], occupancy: u64, bank: usize, at: u64) -> u64 {
        let start = bank_free[bank].max(at);
        bank_free[bank] = start + occupancy;
        start
    }

    #[test]
    fn degenerate_defaults_match_scalar_bank_free_math() {
        // Property test: with xbar_ports = 0 and bank_queue_depth = 0, the
        // arbiter is cycle-for-cycle identical to the scalar model across a
        // long pseudo-random request stream.
        let cfg = MemConfig::default(); // ports 0, depth 0, occupancy 2
        let mut arb = BankedArbiter::new(&cfg);
        let mut reference = vec![0u64; cfg.l2_banks];
        let mut st = stats();
        let mut lcg: u64 = 0x5EED_CAFE;
        let mut now = 0u64;
        for _ in 0..10_000 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bank = (lcg >> 33) as usize % cfg.l2_banks;
            now += (lcg >> 49) % 4; // non-decreasing arrivals, often equal
            let got = arb.service(bank, now, &mut st);
            let want = scalar_reference(&mut reference, cfg.bank_occupancy, bank, now);
            assert_eq!(got, want, "degenerate arbiter diverged from scalar model");
        }
        assert_eq!(st.xbar_port_waits.value(), 0);
        assert!(st.bank_conflict_waits.value() > 0);
        assert_eq!(st.bank_queue_stalls.value(), 0);
    }

    #[test]
    fn bounded_ports_serialize_simultaneous_injections() {
        let cfg = MemConfig::default().with_banks(8).with_xbar_ports(2);
        let mut arb = BankedArbiter::new(&cfg);
        let mut st = stats();
        // Four same-cycle requests to four distinct banks: with only two
        // ports the third and fourth wait a cycle for a port.
        let starts: Vec<u64> = (0..4).map(|b| arb.service(b, 100, &mut st)).collect();
        assert_eq!(starts, vec![100, 100, 101, 101]);
        assert_eq!(st.xbar_port_waits.value(), 2);
    }

    #[test]
    fn round_robin_cursor_rotates_port_grants() {
        let cfg = MemConfig::default().with_xbar_ports(3);
        let mut arb = BankedArbiter::new(&cfg);
        let mut st = stats();
        // Six same-cycle requests over three ports: each port is granted
        // twice, so the last pair waits exactly one cycle — a fixed-priority
        // arbiter would instead pile every grant onto port 0.
        let starts: Vec<u64> = (0..6).map(|b| arb.service(b % 4, 0, &mut st)).collect();
        let waited = starts.iter().filter(|&&s| s > 0).count();
        assert_eq!(waited, 3, "exactly the second grant on each port waits");
    }

    #[test]
    fn full_bank_queue_stalls_injection() {
        let cfg = MemConfig::default()
            .with_banks(1)
            .with_bank_occupancy(10)
            .with_bank_queue_depth(2);
        let mut arb = BankedArbiter::new(&cfg);
        let mut st = stats();
        // Three same-cycle requests to one bank with a depth-2 queue: the
        // first two enqueue (service at 0 and 10); the third stalls at the
        // crossbar until the first drains at cycle 10, then queues behind
        // the second.
        assert_eq!(arb.service(0, 0, &mut st), 0);
        assert_eq!(arb.service(0, 0, &mut st), 10);
        assert_eq!(arb.service(0, 0, &mut st), 20);
        assert_eq!(st.bank_queue_stalls.value(), 1);
        assert!(st.bank_conflict_waits.value() > 0);
    }

    #[test]
    fn unbounded_queue_never_stalls() {
        let cfg = MemConfig::default().with_banks(1).with_bank_occupancy(5);
        let mut arb = BankedArbiter::new(&cfg);
        let mut st = stats();
        for _ in 0..32 {
            arb.service(0, 0, &mut st);
        }
        assert_eq!(st.bank_queue_stalls.value(), 0);
    }
}

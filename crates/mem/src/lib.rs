//! The CMP memory hierarchy for the Reunion simulator.
//!
//! This crate models the Piranha-derived cache hierarchy from Table 1 of the
//! paper: private write-back L1 caches per core, a banked shared L2 with an
//! inclusive directory coordinating on-chip coherence for **vocal** cores,
//! a crossbar between them, and a fixed-latency DRAM behind the L2.
//!
//! On top of the conventional hierarchy it implements the Reunion-specific
//! shared-cache-controller semantics from §4.2:
//!
//! * **Vocal/mute asymmetry** — mute caches never appear in sharers lists,
//!   can never own a block, and their evictions/writebacks are ignored.
//! * **Phantom requests** ([`PhantomStrength`]) — non-coherent reads used to
//!   fill mute caches, in three strengths: `Null` (arbitrary data on any L1
//!   miss), `Shared` (coherent on L2 hits, arbitrary on L2 misses), and
//!   `Global` (searches the whole hierarchy and memory; the default).
//! * **Synchronizing requests** — flush the block from both private caches,
//!   perform one coherent transaction on behalf of the pair, and return a
//!   single value to both cores; the forward-progress mechanism of the
//!   re-execution protocol.
//!
//! Timing is computed at request time (latency + bank occupancy + MSHR
//! limits); data values are exact. The *globally coherent* value of every
//! word lives in a [`reunion_isa::SparseMemory`] image updated when vocal
//! stores drain; mute caches keep private (possibly stale) line snapshots,
//! which is how input incoherence arises organically.
//!
//! # Examples
//!
//! ```
//! use reunion_isa::Addr;
//! use reunion_kernel::Cycle;
//! use reunion_mem::{MemConfig, MemorySystem, Owner, PhantomStrength};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let vocal = mem.register_l1(Owner::vocal(0));
//! let now = Cycle::ZERO;
//! let st = mem.drain_store(now, vocal, Addr::new(0x100), 7);
//! let ld = mem.load(st.done_at, vocal, Addr::new(0x100), PhantomStrength::Global);
//! assert_eq!(ld.value, 7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arbiter;
mod cache;
mod coherence;
mod config;
mod phantom;
mod stats;
mod system;

pub use arbiter::BankedArbiter;
pub use cache::CacheArray;
pub use coherence::{CoreId, DirEntry, L1Id, MesiState, Owner};
pub use config::{BandwidthScaling, MemConfig};
pub use phantom::{garbage_word, PhantomStrength};
pub use stats::MemStats;
pub use system::{Access, MemorySystem, SyncOutcome};

//! Phantom-request strengths and arbitrary-data synthesis.

use std::fmt;

/// How diligently a phantom request searches for coherent data (§4.2).
///
/// A phantom request is a non-coherent read issued on behalf of a mute core.
/// It always produces a reply and grants write permission within the mute
/// hierarchy, but only stronger variants bother returning coherent data:
///
/// * [`Null`](PhantomStrength::Null) — returns arbitrary data on any L1
///   miss. Trivial hardware, catastrophic incoherence rate (Table 3).
/// * [`Shared`](PhantomStrength::Shared) — checks the shared L2; arbitrary
///   data only on L2 misses.
/// * [`Global`](PhantomStrength::Global) — checks the shared cache, private
///   vocal caches, and issues off-chip reads: the best approximation of
///   coherence and the paper's default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhantomStrength {
    /// Arbitrary data on every L1 miss.
    Null,
    /// Coherent data on L2 hits only.
    Shared,
    /// Coherent data from anywhere on- or off-chip (default).
    #[default]
    Global,
}

impl PhantomStrength {
    /// All strengths, weakest first (handy for sweeps).
    pub const ALL: [PhantomStrength; 3] = [
        PhantomStrength::Null,
        PhantomStrength::Shared,
        PhantomStrength::Global,
    ];
}

impl fmt::Display for PhantomStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PhantomStrength::Null => "null",
            PhantomStrength::Shared => "shared",
            PhantomStrength::Global => "global",
        };
        f.write_str(name)
    }
}

/// Deterministically synthesises the "arbitrary data" a weak phantom reply
/// returns for `word_addr`, distinguished by a fill `epoch` so that two
/// garbage fills of the same line differ.
///
/// Determinism keeps whole simulations replayable: the same seed produces
/// the same incoherence events, recoveries, and final state.
pub fn garbage_word(word_addr: u64, epoch: u64) -> u64 {
    let mut z = word_addr
        .rotate_left(17)
        .wrapping_add(epoch.wrapping_mul(0xA24B_AED4_963E_E407))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_weak_to_strong() {
        assert!(PhantomStrength::Null < PhantomStrength::Shared);
        assert!(PhantomStrength::Shared < PhantomStrength::Global);
        assert_eq!(PhantomStrength::default(), PhantomStrength::Global);
    }

    #[test]
    fn display_names() {
        assert_eq!(PhantomStrength::Null.to_string(), "null");
        assert_eq!(PhantomStrength::Shared.to_string(), "shared");
        assert_eq!(PhantomStrength::Global.to_string(), "global");
    }

    #[test]
    fn garbage_is_deterministic_but_epoch_sensitive() {
        assert_eq!(garbage_word(0x40, 1), garbage_word(0x40, 1));
        assert_ne!(garbage_word(0x40, 1), garbage_word(0x40, 2));
        assert_ne!(garbage_word(0x40, 1), garbage_word(0x48, 1));
    }

    #[test]
    fn all_lists_every_strength() {
        assert_eq!(PhantomStrength::ALL.len(), 3);
    }
}

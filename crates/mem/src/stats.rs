//! Memory-system statistics.

use reunion_kernel::stats::Counter;

/// Event counters maintained by the memory system.
///
/// These feed the evaluation directly: Table 3 reports incoherent phantom
/// fills, and the performance figures depend on hit/miss behaviour.
#[derive(Clone, Debug)]
pub struct MemStats {
    /// L1 load/store lookups that hit.
    pub l1_hits: Counter,
    /// L1 lookups that missed.
    pub l1_misses: Counter,
    /// L2 lookups (from L1 misses) that hit.
    pub l2_hits: Counter,
    /// L2 lookups that went to memory.
    pub l2_misses: Counter,
    /// Phantom requests issued on behalf of mute caches.
    pub phantom_requests: Counter,
    /// Phantom fills that returned arbitrary (non-coherent) data.
    pub phantom_garbage_fills: Counter,
    /// Synchronizing requests performed for re-execution.
    pub sync_requests: Counter,
    /// Invalidations sent to vocal sharers on write upgrades.
    pub invalidations: Counter,
    /// Dirty writebacks from vocal L1s (timing-only events).
    pub writebacks: Counter,
    /// Mute writebacks/evictions ignored by the controller.
    pub mute_writebacks_ignored: Counter,
    /// Cycles requests spent waiting for a bounded crossbar port
    /// (always zero under the unmodeled `xbar_ports = 0` default).
    pub xbar_port_waits: Counter,
    /// Cycles requests spent waiting for a busy L2 bank.
    pub bank_conflict_waits: Counter,
    /// Requests that stalled at the crossbar because a bank's bounded
    /// request queue was full (always zero under `bank_queue_depth = 0`).
    pub bank_queue_stalls: Counter,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        MemStats {
            l1_hits: Counter::new("l1_hits"),
            l1_misses: Counter::new("l1_misses"),
            l2_hits: Counter::new("l2_hits"),
            l2_misses: Counter::new("l2_misses"),
            phantom_requests: Counter::new("phantom_requests"),
            phantom_garbage_fills: Counter::new("phantom_garbage_fills"),
            sync_requests: Counter::new("sync_requests"),
            invalidations: Counter::new("invalidations"),
            writebacks: Counter::new("writebacks"),
            mute_writebacks_ignored: Counter::new("mute_writebacks_ignored"),
            xbar_port_waits: Counter::new("xbar_port_waits"),
            bank_conflict_waits: Counter::new("bank_conflict_waits"),
            bank_queue_stalls: Counter::new("bank_queue_stalls"),
        }
    }

    /// Resets every counter (between measurement windows).
    pub fn reset(&mut self) {
        self.l1_hits.reset();
        self.l1_misses.reset();
        self.l2_hits.reset();
        self.l2_misses.reset();
        self.phantom_requests.reset();
        self.phantom_garbage_fills.reset();
        self.sync_requests.reset();
        self.invalidations.reset();
        self.writebacks.reset();
        self.mute_writebacks_ignored.reset();
        self.xbar_port_waits.reset();
        self.bank_conflict_waits.reset();
        self.bank_queue_stalls.reset();
    }

    /// L1 hit rate in `[0, 1]` (1.0 when there were no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits.value() + self.l1_misses.value();
        if total == 0 {
            1.0
        } else {
            self.l1_hits.value() as f64 / total as f64
        }
    }
}

impl Default for MemStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_degenerate_and_normal() {
        let mut s = MemStats::new();
        assert_eq!(s.l1_hit_rate(), 1.0);
        s.l1_hits.add(3);
        s.l1_misses.add(1);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let mut s = MemStats::new();
        s.phantom_requests.add(5);
        s.sync_requests.incr();
        s.reset();
        assert_eq!(s.phantom_requests.value(), 0);
        assert_eq!(s.sync_requests.value(), 0);
    }
}

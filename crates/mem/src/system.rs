//! The shared-cache-controller memory system.
//!
//! One [`MemorySystem`] instance models everything below the core pipelines:
//! all private L1s (vocal and mute), the banked shared L2 with its inclusive
//! directory, the crossbar, and main memory. The shared cache controller is
//! where the Reunion semantics live (§4.2): it transforms mute requests into
//! phantom requests, ignores mute evictions and writebacks, and implements
//! the synchronizing request used by the re-execution protocol.

use reunion_isa::{Addr, AtomicOp, SparseMemory};
use reunion_kernel::{Cycle, EventHorizon, FastHashMap};

use crate::{
    garbage_word, BankedArbiter, CacheArray, DirEntry, L1Id, MemConfig, MemStats, MesiState, Owner,
    PhantomStrength,
};

const WORDS_PER_LINE: usize = 8;

/// The result of a memory access: the data value and when it completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The 8-byte value read (old value for atomics; the stored value for
    /// plain stores).
    pub value: u64,
    /// Cycle at which the requesting core observes completion.
    pub done_at: Cycle,
    /// Whether the access hit in the private L1.
    pub l1_hit: bool,
    /// Whether a miss hit in the shared L2 (false on L1 hits too).
    pub l2_hit: bool,
    /// Whether the fill used arbitrary (non-coherent) phantom data.
    pub incoherent_fill: bool,
}

/// The result of a synchronizing request: one coherent value delivered
/// atomically to both halves of a logical processor pair (Definition 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The single coherent value returned to both cores (the *old* memory
    /// value for read-modify-writes).
    pub value: u64,
    /// Completion cycle, identical for both cores.
    pub done_at: Cycle,
}

#[derive(Debug)]
struct L1State {
    owner: Owner,
    tags: CacheArray<MesiState>,
    /// Private data snapshots for mute caches, line index → words. Vocal
    /// caches read the coherent image instead. Point-lookup only, once per
    /// mute access, hence the fast fixed-seed hasher.
    mute_data: FastHashMap<u64, [u64; WORDS_PER_LINE]>,
    /// Completion times (raw cycles) of outstanding misses, pruned lazily.
    outstanding: Vec<u64>,
}

#[derive(Debug)]
struct L2State {
    tags: CacheArray<DirEntry>,
    /// Crossbar ports + bank queues + bank occupancy; under the default
    /// `xbar_ports = 0` / `bank_queue_depth = 0` sentinels this is exactly
    /// the historical scalar `bank_free` timestamp model.
    arbiter: BankedArbiter,
}

/// The CMP memory hierarchy below the core pipelines.
///
/// See the [crate docs](crate) for the modeling approach. All methods take
/// the current cycle and return completion times; the system never advances
/// time itself.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    image: SparseMemory,
    l1s: Vec<L1State>,
    l2: L2State,
    /// Monotonic counter distinguishing garbage fills.
    epoch: u64,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system with no registered L1s.
    pub fn new(cfg: MemConfig) -> Self {
        let l2 = L2State {
            tags: CacheArray::new(cfg.l2_lines(), cfg.l2_assoc),
            arbiter: BankedArbiter::new(&cfg),
        };
        MemorySystem {
            cfg,
            image: SparseMemory::new(),
            l1s: Vec::new(),
            l2,
            epoch: 0,
            stats: MemStats::new(),
        }
    }

    /// Registers a private L1 cache and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 L1s are registered (directory bitmap limit).
    pub fn register_l1(&mut self, owner: Owner) -> L1Id {
        assert!(self.l1s.len() < 64, "at most 64 private L1s supported");
        let id = L1Id(self.l1s.len());
        self.l1s.push(L1State {
            owner,
            tags: CacheArray::new(self.cfg.l1_lines(), self.cfg.l1_assoc),
            mute_data: FastHashMap::default(),
            outstanding: Vec::new(),
        });
        id
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Mutable statistics access (for resetting between windows).
    pub fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    /// Reads the globally coherent value of the word containing `addr`.
    pub fn peek_coherent(&self, addr: Addr) -> u64 {
        self.image.peek(addr)
    }

    /// Writes the coherent image directly (workload initialization).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.image.poke(addr, value);
    }

    /// The earliest cycle `>= from` at which an in-flight memory access
    /// completes, or `None` when nothing is outstanding past `from`.
    ///
    /// The memory system is fully reactive — it never advances time itself;
    /// every method takes the current cycle and returns completion stamps —
    /// so this is a *reporting* surface for time-skipping engines and
    /// external drivers: the bound is the minimum over every L1's
    /// outstanding-miss completion stamps (its in-flight delivery queue).
    /// The CMP engine's per-core horizons already embed these stamps (a
    /// miss's completion becomes the issuing instruction's check time), so
    /// folding this bound in as well is safe but never required for
    /// dense↔skip parity.
    pub fn next_activity_at(&self, from: Cycle) -> Option<Cycle> {
        let floor = from.as_u64();
        let mut horizon = EventHorizon::new();
        for l1 in &self.l1s {
            for &done in &l1.outstanding {
                if done >= floor {
                    horizon.note(Cycle::new(done));
                }
            }
        }
        horizon.next_ready()
    }

    /// Whether `l1` currently caches the line containing `addr`.
    pub fn l1_contains(&self, l1: L1Id, addr: Addr) -> bool {
        self.l1s[l1.0].tags.contains(addr.line_index())
    }

    /// Number of lines currently valid in `l1`.
    pub fn l1_occupancy(&self, l1: L1Id) -> usize {
        self.l1s[l1.0].tags.occupancy()
    }

    /// The value `l1` would read for `addr` *right now* without timing
    /// effects: the mute snapshot if `l1` is a mute cache holding the line,
    /// otherwise the coherent value. Used by tests and the golden model.
    pub fn peek_view(&self, l1: L1Id, addr: Addr) -> u64 {
        let state = &self.l1s[l1.0];
        if state.owner.is_mute() && state.tags.contains(addr.line_index()) {
            if let Some(words) = state.mute_data.get(&addr.line_index()) {
                return words[Self::word_slot(addr)];
            }
        }
        self.image.peek(addr)
    }

    #[inline]
    fn word_slot(addr: Addr) -> usize {
        (addr.line_offset() / 8) as usize
    }

    fn read_line_words(&self, line: u64) -> [u64; WORDS_PER_LINE] {
        let base = line * reunion_isa::LINE_BYTES;
        let mut words = [0u64; WORDS_PER_LINE];
        for (i, word) in words.iter_mut().enumerate() {
            *word = self.image.peek(Addr::new(base + i as u64 * 8));
        }
        words
    }

    fn garbage_line_words(line: u64, epoch: u64) -> [u64; WORDS_PER_LINE] {
        let base = line * reunion_isa::LINE_BYTES;
        let mut words = [0u64; WORDS_PER_LINE];
        for (i, word) in words.iter_mut().enumerate() {
            *word = garbage_word(base + i as u64 * 8, epoch);
        }
        words
    }

    /// Applies MSHR back-pressure: if all MSHRs are busy at `now`, the miss
    /// cannot start until the earliest outstanding one completes.
    fn miss_start_time(&mut self, l1: usize, now: u64) -> u64 {
        let st = &mut self.l1s[l1];
        st.outstanding.retain(|&t| t > now);
        if st.outstanding.len() < self.cfg.l1_mshrs {
            now
        } else {
            let earliest = st.outstanding.iter().copied().min().unwrap_or(now);
            let start = earliest.max(now);
            st.outstanding.retain(|&t| t > start);
            start
        }
    }

    /// Admits a request through the crossbar arbiter into an L2 bank and
    /// returns the time the bank begins service.
    fn bank_service(&mut self, line: u64, request_at: u64) -> u64 {
        let bank = (line as usize) % self.cfg.l2_banks;
        self.l2.arbiter.service(bank, request_at, &mut self.stats)
    }

    /// Looks up the L2 for a coherent fill, allocating on miss (inclusive
    /// hierarchy: L2 victims invalidate vocal L1 copies). Returns
    /// `(l2_hit, data_ready_time)`.
    fn l2_fill(&mut self, line: u64, bank_start: u64) -> (bool, u64) {
        if self.l2.tags.lookup(line).is_some() {
            self.stats.l2_hits.incr();
            (true, bank_start + self.cfg.l2_hit_latency)
        } else {
            self.stats.l2_misses.incr();
            let ready = bank_start + self.cfg.l2_hit_latency + self.cfg.dram_latency;
            if let Some((victim_line, victim_dir)) = self.l2.tags.insert(line, DirEntry::new()) {
                // Inclusive L2: back-invalidate vocal L1 copies of the victim.
                for s in victim_dir.sharers_except(L1Id(usize::MAX & 63)) {
                    if let Some(state) = self.l1s[s.0].tags.invalidate(victim_line) {
                        if state == MesiState::Modified {
                            self.stats.writebacks.incr();
                        }
                        self.stats.invalidations.incr();
                    }
                }
            }
            (false, ready)
        }
    }

    /// Inserts `line` into `l1`, handling the eviction per vocal/mute rules.
    fn l1_fill(&mut self, l1: usize, line: u64, state: MesiState) {
        let is_mute = self.l1s[l1].owner.is_mute();
        if let Some((victim_line, victim_state)) = self.l1s[l1].tags.insert(line, state) {
            if is_mute {
                // The controller ignores all mute evictions and writebacks.
                self.l1s[l1].mute_data.remove(&victim_line);
                self.stats.mute_writebacks_ignored.incr();
            } else {
                if victim_state == MesiState::Modified {
                    self.stats.writebacks.incr();
                }
                if let Some(dir) = self.l2.tags.lookup(victim_line) {
                    dir.remove_sharer(L1Id(l1));
                }
            }
        }
    }

    /// A coherent read by a vocal L1, or a phantom read by a mute L1.
    ///
    /// Vocal reads maintain MESI state and the L2 directory exactly as in a
    /// non-redundant design. Mute reads become phantom requests of the given
    /// [`PhantomStrength`] and never perturb coherence state.
    pub fn load(&mut self, now: Cycle, l1: L1Id, addr: Addr, strength: PhantomStrength) -> Access {
        let line = addr.line_index();
        let idx = l1.0;
        let now_raw = now.as_u64();

        if self.l1s[idx].owner.is_mute() {
            return self.mute_load(now_raw, idx, addr, strength);
        }

        // Vocal L1 hit.
        if self.l1s[idx].tags.lookup(line).is_some() {
            self.stats.l1_hits.incr();
            return Access {
                value: self.image.peek(addr),
                done_at: now + self.cfg.l1_hit_latency,
                l1_hit: true,
                l2_hit: false,
                incoherent_fill: false,
            };
        }

        // Vocal miss: coherent GetS through the shared controller.
        self.stats.l1_misses.incr();
        let start = self.miss_start_time(idx, now_raw);
        let bank_start = self.bank_service(line, start + self.cfg.crossbar_latency);
        let (l2_hit, mut ready) = self.l2_fill(line, bank_start);

        // Directory: a Modified/Exclusive owner elsewhere is downgraded
        // (its data is already reflected in the image at drain time, so the
        // forward is a timing event).
        let mut was_owned = false;
        if let Some(dir) = self.l2.tags.lookup(line) {
            if let Some(owner) = dir.owner() {
                if owner.0 != idx {
                    was_owned = true;
                    dir.downgrade_owner();
                }
            }
            dir.add_sharer(L1Id(idx));
        }
        if was_owned {
            // Dirty-forward from the owner's L1: roughly one more L2 trip.
            ready += self.cfg.l2_hit_latency / 2;
            self.stats.writebacks.incr();
            // The former owner keeps the line Shared.
            for peer in 0..self.l1s.len() {
                if peer != idx && !self.l1s[peer].owner.is_mute() {
                    if let Some(st) = self.l1s[peer].tags.lookup(line) {
                        if st.can_write() {
                            *st = MesiState::Shared;
                        }
                    }
                }
            }
        }

        let alone = self
            .l2
            .tags
            .peek(line)
            .map(|d| d.sharer_count() <= 1)
            .unwrap_or(true);
        let state = if alone {
            MesiState::Exclusive
        } else {
            MesiState::Shared
        };
        self.l1_fill(idx, line, state);
        self.l1s[idx].outstanding.push(ready);

        Access {
            value: self.image.peek(addr),
            done_at: Cycle::new(ready),
            l1_hit: false,
            l2_hit,
            incoherent_fill: false,
        }
    }

    fn mute_load(&mut self, now: u64, idx: usize, addr: Addr, strength: PhantomStrength) -> Access {
        let line = addr.line_index();
        let slot = Self::word_slot(addr);

        // Mute L1 hit: read the private (possibly stale) snapshot.
        if self.l1s[idx].tags.lookup(line).is_some() {
            self.stats.l1_hits.incr();
            let value = self.l1s[idx]
                .mute_data
                .get(&line)
                .map(|w| w[slot])
                .unwrap_or_else(|| self.image.peek(addr));
            return Access {
                value,
                done_at: Cycle::new(now + self.cfg.l1_hit_latency),
                l1_hit: true,
                l2_hit: false,
                incoherent_fill: false,
            };
        }

        // Phantom request on behalf of the mute.
        self.stats.l1_misses.incr();
        self.stats.phantom_requests.incr();
        self.epoch += 1;

        let (words, done, l2_hit, incoherent) = match strength {
            PhantomStrength::Null => {
                // Arbitrary data on any L1 miss; no hierarchy search.
                let words = Self::garbage_line_words(line, self.epoch);
                (
                    words,
                    now + self.cfg.l1_hit_latency + self.cfg.crossbar_latency,
                    false,
                    true,
                )
            }
            PhantomStrength::Shared => {
                let start = self.miss_start_time(idx, now);
                let bank_start = self.bank_service(line, start + self.cfg.crossbar_latency);
                // Checks the shared cache without changing coherence state.
                if self.l2.tags.contains(line) {
                    self.stats.l2_hits.incr();
                    let words = self.read_line_words(line);
                    (words, bank_start + self.cfg.l2_hit_latency, true, false)
                } else {
                    self.stats.l2_misses.incr();
                    let words = Self::garbage_line_words(line, self.epoch);
                    (words, bank_start + self.cfg.l2_hit_latency, false, true)
                }
            }
            PhantomStrength::Global => {
                let start = self.miss_start_time(idx, now);
                let bank_start = self.bank_service(line, start + self.cfg.crossbar_latency);
                let l2_hit = self.l2.tags.contains(line);
                let latency = if l2_hit {
                    self.stats.l2_hits.incr();
                    self.cfg.l2_hit_latency
                } else {
                    self.stats.l2_misses.incr();
                    // Non-coherent off-chip read; does not allocate in L2.
                    self.cfg.l2_hit_latency + self.cfg.dram_latency
                };
                let words = self.read_line_words(line);
                (words, bank_start + latency, l2_hit, false)
            }
        };

        if incoherent {
            self.stats.phantom_garbage_fills.incr();
        }

        // Phantom replies grant write permission within the mute hierarchy.
        self.l1_fill(idx, line, MesiState::Exclusive);
        self.l1s[idx].mute_data.insert(line, words);
        self.l1s[idx].outstanding.push(done);

        Access {
            value: words[slot],
            done_at: Cycle::new(done),
            l1_hit: false,
            l2_hit,
            incoherent_fill: incoherent,
        }
    }

    /// Drains one retired store into the memory system.
    ///
    /// For a vocal L1 this is the point where the store becomes globally
    /// visible: the coherent image is updated and other vocal sharers are
    /// invalidated (write-invalidate protocol). For a mute L1 the store only
    /// updates the private snapshot — mute updates are never exposed.
    pub fn drain_store(&mut self, now: Cycle, l1: L1Id, addr: Addr, value: u64) -> Access {
        let line = addr.line_index();
        let idx = l1.0;
        let now_raw = now.as_u64();

        if self.l1s[idx].owner.is_mute() {
            return self.mute_store(now_raw, idx, addr, value);
        }

        // Fast path: already writable.
        if let Some(state) = self.l1s[idx].tags.lookup(line) {
            if state.can_write() {
                *state = MesiState::Modified;
                self.stats.l1_hits.incr();
                self.image.poke(addr, value);
                return Access {
                    value,
                    done_at: now + 1,
                    l1_hit: true,
                    l2_hit: false,
                    incoherent_fill: false,
                };
            }
        }

        // Upgrade / read-for-ownership through the shared controller.
        self.stats.l1_misses.incr();
        let start = self.miss_start_time(idx, now_raw);
        let bank_start = self.bank_service(line, start + self.cfg.crossbar_latency);
        let (l2_hit, ready) = self.l2_fill(line, bank_start);

        // Invalidate all other vocal sharers. The directory iterator only
        // borrows `self.l2`; the invalidations touch `self.l1s` and
        // `self.stats`, so no intermediate collection is needed.
        if let Some(d) = self.l2.tags.peek(line) {
            for s in d.sharers_except(L1Id(idx)) {
                if let Some(state) = self.l1s[s.0].tags.invalidate(line) {
                    if state == MesiState::Modified {
                        self.stats.writebacks.incr();
                    }
                }
                self.stats.invalidations.incr();
            }
        }
        if let Some(dir) = self.l2.tags.lookup(line) {
            dir.set_owner(L1Id(idx));
        }

        self.l1_fill(idx, line, MesiState::Modified);
        self.l1s[idx].outstanding.push(ready);
        self.image.poke(addr, value);

        Access {
            value,
            done_at: Cycle::new(ready),
            l1_hit: false,
            l2_hit,
            incoherent_fill: false,
        }
    }

    fn mute_store(&mut self, now: u64, idx: usize, addr: Addr, value: u64) -> Access {
        let line = addr.line_index();
        let slot = Self::word_slot(addr);

        if self.l1s[idx].tags.lookup(line).is_some() {
            self.stats.l1_hits.incr();
            self.l1s[idx]
                .mute_data
                .entry(line)
                .or_insert([0; WORDS_PER_LINE])[slot] = value;
            return Access {
                value,
                done_at: Cycle::new(now + 1),
                l1_hit: true,
                l2_hit: false,
                incoherent_fill: false,
            };
        }

        // Write-allocate: fill via a phantom read, then update the word.
        // Strength mirrors the configured load path; the fill itself uses
        // Global here because store misses are rare and the stored word is
        // overwritten regardless. The fill is non-coherent either way.
        let fill = self.mute_load(now, idx, addr, PhantomStrength::Global);
        self.l1s[idx]
            .mute_data
            .entry(line)
            .or_insert([0; WORDS_PER_LINE])[slot] = value;
        Access {
            value,
            done_at: fill.done_at + 1,
            l1_hit: false,
            l2_hit: fill.l2_hit,
            incoherent_fill: fill.incoherent_fill,
        }
    }

    /// The read half of an atomic read-modify-write.
    ///
    /// For a vocal L1 this performs a coherent read-for-ownership —
    /// invalidating other sharers and taking exclusive ownership — and
    /// returns the current coherent value *without* updating memory; the
    /// write half ([`atomic_commit`](Self::atomic_commit)) is applied at
    /// retirement, after output comparison, so the update never becomes
    /// visible (even to the pair's own mute) before it is checked
    /// (Definition 7). Mute atomics read and update only the mute's private
    /// view.
    pub fn atomic_read(
        &mut self,
        now: Cycle,
        l1: L1Id,
        addr: Addr,
        op: AtomicOp,
        operand: u64,
        strength: PhantomStrength,
    ) -> Access {
        let idx = l1.0;
        if self.l1s[idx].owner.is_mute() {
            let read = self.mute_load(now.as_u64(), idx, addr, strength);
            let new = reunion_isa::atomic_update(op, read.value, operand);
            let line = addr.line_index();
            let slot = Self::word_slot(addr);
            self.l1s[idx]
                .mute_data
                .entry(line)
                .or_insert([0; WORDS_PER_LINE])[slot] = new;
            return Access {
                value: read.value,
                done_at: read.done_at + 2,
                ..read
            };
        }

        let old = self.image.peek(addr);
        // Read-for-ownership timing: same path as a store upgrade, but the
        // image is left untouched until commit.
        let line = addr.line_index();
        let (timing, l1_hit, l2_hit);
        if let Some(state) = self.l1s[idx].tags.lookup(line) {
            if state.can_write() {
                *state = MesiState::Modified;
                self.stats.l1_hits.incr();
                timing = now.as_u64() + self.cfg.l1_hit_latency;
                l1_hit = true;
                l2_hit = false;
            } else {
                let (t, h) = self.vocal_rfo(idx, line, now.as_u64());
                timing = t;
                l1_hit = false;
                l2_hit = h;
            }
        } else {
            let (t, h) = self.vocal_rfo(idx, line, now.as_u64());
            timing = t;
            l1_hit = false;
            l2_hit = h;
        }
        Access {
            value: old,
            done_at: Cycle::new(timing + 2),
            l1_hit,
            l2_hit,
            incoherent_fill: false,
        }
    }

    /// The write half of a vocal atomic, applied at retirement after output
    /// comparison.
    ///
    /// `old_read` is the value the read half returned. If the RMW is a
    /// value no-op with respect to it (a failed test-and-set writing back
    /// the held-lock token), the commit is skipped entirely — otherwise a
    /// spinning core would clobber a release that landed between its read
    /// and its retirement. For value-changing updates the new value is
    /// recomputed against the *current* coherent value so a concurrent
    /// writer in the read-to-commit window is not lost (swaps write the
    /// operand either way; fetch-add increments compose).
    pub fn atomic_commit(
        &mut self,
        l1: L1Id,
        addr: Addr,
        op: AtomicOp,
        operand: u64,
        old_read: u64,
    ) {
        debug_assert!(
            !self.l1s[l1.0].owner.is_mute(),
            "mute atomics commit privately"
        );
        if reunion_isa::atomic_update(op, old_read, operand) == old_read {
            return;
        }
        let line = addr.line_index();
        // Re-invalidate any vocal sharer that joined since the read.
        if let Some(d) = self.l2.tags.peek(line) {
            for s in d.sharers_except(l1) {
                if !self.l1s[s.0].owner.is_mute() && self.l1s[s.0].tags.invalidate(line).is_some() {
                    self.stats.invalidations.incr();
                }
            }
        }
        let current = self.image.peek(addr);
        self.image
            .poke(addr, reunion_isa::atomic_update(op, current, operand));
    }

    /// Coherent read-for-ownership used by vocal atomics: bank + L2 timing,
    /// sharer invalidation, directory ownership, L1 fill in Modified.
    fn vocal_rfo(&mut self, idx: usize, line: u64, now: u64) -> (u64, bool) {
        self.stats.l1_misses.incr();
        let start = self.miss_start_time(idx, now);
        let bank_start = self.bank_service(line, start + self.cfg.crossbar_latency);
        let (l2_hit, ready) = self.l2_fill(line, bank_start);
        if let Some(d) = self.l2.tags.peek(line) {
            for s in d.sharers_except(L1Id(idx)) {
                if let Some(state) = self.l1s[s.0].tags.invalidate(line) {
                    if state == MesiState::Modified {
                        self.stats.writebacks.incr();
                    }
                }
                self.stats.invalidations.incr();
            }
        }
        if let Some(dir) = self.l2.tags.lookup(line) {
            dir.set_owner(L1Id(idx));
        }
        self.l1_fill(idx, line, MesiState::Modified);
        self.l1s[idx].outstanding.push(ready);
        (ready, l2_hit)
    }

    /// Performs a synchronizing request on behalf of a logical processor
    /// pair (Definition 10): flushes the block from both private caches,
    /// executes one coherent transaction, and atomically delivers a single
    /// value to both cores.
    ///
    /// With `rmw` the transaction has both load and store semantics (the
    /// single-stepped instruction may be an atomic); the returned value is
    /// the old memory value.
    ///
    /// # Panics
    ///
    /// Panics if `vocal` is a mute cache or `mute` is a vocal cache.
    pub fn sync_access(
        &mut self,
        now: Cycle,
        vocal: L1Id,
        mute: L1Id,
        addr: Addr,
        rmw: Option<(AtomicOp, u64)>,
    ) -> SyncOutcome {
        assert!(
            !self.l1s[vocal.0].owner.is_mute(),
            "sync: vocal handle is a mute cache"
        );
        assert!(
            self.l1s[mute.0].owner.is_mute(),
            "sync: mute handle is a vocal cache"
        );
        self.stats.sync_requests.incr();
        let line = addr.line_index();

        // Flush: the vocal copy returns to the shared cache (its data is
        // already reflected in the image at drain time), the mute copy is
        // discarded.
        if let Some(state) = self.l1s[vocal.0].tags.invalidate(line) {
            if state == MesiState::Modified {
                self.stats.writebacks.incr();
            }
            if let Some(dir) = self.l2.tags.lookup(line) {
                dir.remove_sharer(vocal);
            }
        }
        self.l1s[mute.0].tags.invalidate(line);
        self.l1s[mute.0].mute_data.remove(&line);

        // One coherent write transaction on behalf of the pair. Latency is
        // comparable to a shared-cache hit (§4.2).
        let bank_start = self.bank_service(line, now.as_u64() + self.cfg.crossbar_latency);
        let (_, ready) = self.l2_fill(line, bank_start);

        // Invalidate remaining vocal sharers (write semantics).
        if let Some(d) = self.l2.tags.peek(line) {
            for s in d.sharers_except(vocal) {
                if !self.l1s[s.0].owner.is_mute() && self.l1s[s.0].tags.invalidate(line).is_some() {
                    self.stats.invalidations.incr();
                }
            }
        }

        let old = self.image.peek(addr);
        if let Some((op, operand)) = rmw {
            let new = reunion_isa::atomic_update(op, old, operand);
            self.image.poke(addr, new);
        }
        if let Some(dir) = self.l2.tags.lookup(line) {
            dir.set_owner(vocal);
        }

        // Refill both halves coherently and atomically.
        self.l1_fill(vocal.0, line, MesiState::Modified);
        let words = self.read_line_words(line);
        self.l1_fill(mute.0, line, MesiState::Exclusive);
        self.l1s[mute.0].mute_data.insert(line, words);

        SyncOutcome {
            value: old,
            done_at: Cycle::new(ready),
        }
    }

    /// Reverts a speculatively-applied atomic: restores `old` at `addr`
    /// only if the current value is still `new` (the value the atomic
    /// wrote).
    ///
    /// In hardware the line stays exclusively owned between an atomic's
    /// execution and its output comparison, so no other core can interleave
    /// a write. The simulator applies atomics eagerly instead; if another
    /// core *did* write the word in that short window, its value (not the
    /// stale `old`) must survive the rollback.
    pub fn compare_and_revert(&mut self, addr: Addr, old: u64, new: u64) {
        if self.image.peek(addr) == new {
            self.image.poke(addr, old);
        }
    }

    /// Discards every line in `l1` (used when a measurement harness wants
    /// cold caches, and by tests).
    pub fn flush_l1(&mut self, l1: L1Id) {
        let idx = l1.0;
        let lines: Vec<u64> = self.l1s[idx].tags.iter_valid().map(|(l, _)| l).collect();
        let is_mute = self.l1s[idx].owner.is_mute();
        for line in lines {
            self.l1s[idx].tags.invalidate(line);
            if is_mute {
                self.l1s[idx].mute_data.remove(&line);
            } else if let Some(dir) = self.l2.tags.lookup(line) {
                dir.remove_sharer(l1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pair_system() -> (MemorySystem, L1Id, L1Id, L1Id, L1Id) {
        let mut mem = MemorySystem::new(MemConfig::small());
        let v0 = mem.register_l1(Owner::vocal(0));
        let m0 = mem.register_l1(Owner::mute(0));
        let v1 = mem.register_l1(Owner::vocal(1));
        let m1 = mem.register_l1(Owner::mute(1));
        (mem, v0, m0, v1, m1)
    }

    #[test]
    fn vocal_load_miss_then_hit() {
        let (mut mem, v0, ..) = two_pair_system();
        let a = Addr::new(0x1000);
        mem.poke(a, 42);
        let miss = mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        assert!(!miss.l1_hit);
        assert_eq!(miss.value, 42);
        assert!(miss.done_at.as_u64() >= mem.config().l2_hit_latency);
        let hit = mem.load(miss.done_at, v0, a, PhantomStrength::Global);
        assert!(hit.l1_hit);
        assert_eq!(hit.done_at - miss.done_at, mem.config().l1_hit_latency);
    }

    #[test]
    fn store_is_visible_to_other_vocal() {
        let (mut mem, v0, _, v1, _) = two_pair_system();
        let a = Addr::new(0x2000);
        mem.drain_store(Cycle::ZERO, v0, a, 7);
        let ld = mem.load(Cycle::new(100), v1, a, PhantomStrength::Global);
        assert_eq!(ld.value, 7);
    }

    #[test]
    fn store_invalidates_other_vocal_sharer() {
        let (mut mem, v0, _, v1, _) = two_pair_system();
        let a = Addr::new(0x3000);
        mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        mem.load(Cycle::ZERO, v1, a, PhantomStrength::Global);
        assert!(mem.l1_contains(v0, a));
        mem.drain_store(Cycle::new(50), v1, a, 1);
        assert!(
            !mem.l1_contains(v0, a),
            "v0 must be invalidated by v1's write"
        );
        assert!(mem.stats().invalidations.value() >= 1);
    }

    #[test]
    fn mute_keeps_stale_copy_after_remote_write() {
        // The crux of relaxed input replication: the mute is never
        // invalidated, so a remote store leaves it holding stale data.
        let (mut mem, v0, m0, v1, _) = two_pair_system();
        let a = Addr::new(0x4000);
        mem.poke(a, 10);
        mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        mem.load(Cycle::ZERO, m0, a, PhantomStrength::Global);
        // Remote vocal writes the line.
        mem.drain_store(Cycle::new(10), v1, a, 99);
        // Vocal re-fetches coherent data; mute still hits its snapshot.
        let vl = mem.load(Cycle::new(500), v0, a, PhantomStrength::Global);
        let ml = mem.load(Cycle::new(500), m0, a, PhantomStrength::Global);
        assert_eq!(vl.value, 99);
        assert_eq!(ml.value, 10, "mute must observe the stale value");
        assert!(ml.l1_hit);
    }

    #[test]
    fn global_phantom_returns_coherent_data_on_miss() {
        let (mut mem, _, m0, ..) = two_pair_system();
        let a = Addr::new(0x5000);
        mem.poke(a, 31);
        let ld = mem.load(Cycle::ZERO, m0, a, PhantomStrength::Global);
        assert_eq!(ld.value, 31);
        assert!(!ld.incoherent_fill);
        assert_eq!(mem.stats().phantom_requests.value(), 1);
        assert_eq!(mem.stats().phantom_garbage_fills.value(), 0);
    }

    #[test]
    fn null_phantom_returns_garbage() {
        let (mut mem, _, m0, ..) = two_pair_system();
        let a = Addr::new(0x6000);
        mem.poke(a, 5);
        let ld = mem.load(Cycle::ZERO, m0, a, PhantomStrength::Null);
        assert!(ld.incoherent_fill);
        assert_ne!(
            ld.value, 5,
            "null phantom must not search for coherent data"
        );
        assert_eq!(mem.stats().phantom_garbage_fills.value(), 1);
    }

    #[test]
    fn shared_phantom_depends_on_l2_presence() {
        let (mut mem, v0, m0, ..) = two_pair_system();
        let a = Addr::new(0x7000);
        mem.poke(a, 77);
        // Cold L2: shared phantom returns garbage.
        let cold = mem.load(Cycle::ZERO, m0, a, PhantomStrength::Shared);
        assert!(cold.incoherent_fill);
        // Vocal brings the line into L2; a fresh mute fill now succeeds.
        let b = Addr::new(0x8000);
        mem.poke(b, 88);
        mem.load(Cycle::ZERO, v0, b, PhantomStrength::Global);
        let warm = mem.load(Cycle::new(400), m0, b, PhantomStrength::Shared);
        assert!(!warm.incoherent_fill);
        assert_eq!(warm.value, 88);
        assert!(warm.l2_hit);
    }

    #[test]
    fn mute_store_stays_private() {
        let (mut mem, _, m0, ..) = two_pair_system();
        let a = Addr::new(0x9000);
        mem.poke(a, 1);
        mem.drain_store(Cycle::ZERO, m0, a, 1234);
        assert_eq!(
            mem.peek_coherent(a),
            1,
            "mute store must not reach the image"
        );
        let ld = mem.load(Cycle::new(600), m0, a, PhantomStrength::Global);
        assert_eq!(ld.value, 1234, "mute sees its own store");
    }

    #[test]
    fn vocal_atomic_reads_old_then_commits_new() {
        let (mut mem, v0, ..) = two_pair_system();
        let a = Addr::new(0xA000);
        mem.poke(a, 0);
        let acc = mem.atomic_read(
            Cycle::ZERO,
            v0,
            a,
            AtomicOp::Swap,
            1,
            PhantomStrength::Global,
        );
        assert_eq!(acc.value, 0);
        // Not visible until the commit half (post-comparison retirement).
        assert_eq!(mem.peek_coherent(a), 0);
        mem.atomic_commit(v0, a, AtomicOp::Swap, 1, 0);
        assert_eq!(mem.peek_coherent(a), 1);
    }

    #[test]
    fn atomic_commit_composes_with_interleaved_writer() {
        let (mut mem, v0, _, v1, _) = two_pair_system();
        let a = Addr::new(0xA100);
        mem.poke(a, 10);
        let acc = mem.atomic_read(
            Cycle::ZERO,
            v0,
            a,
            AtomicOp::FetchAdd,
            5,
            PhantomStrength::Global,
        );
        assert_eq!(acc.value, 10);
        // A remote writer slips into the read-to-commit window.
        mem.drain_store(Cycle::new(3), v1, a, 100);
        mem.atomic_commit(v0, a, AtomicOp::FetchAdd, 5, 10);
        assert_eq!(
            mem.peek_coherent(a),
            105,
            "increment must not lose the remote write"
        );
    }

    #[test]
    fn mute_atomic_stays_private() {
        let (mut mem, _, m0, ..) = two_pair_system();
        let a = Addr::new(0xB000);
        mem.poke(a, 0);
        let acc = mem.atomic_read(
            Cycle::ZERO,
            m0,
            a,
            AtomicOp::FetchAdd,
            5,
            PhantomStrength::Global,
        );
        assert_eq!(acc.value, 0);
        assert_eq!(mem.peek_coherent(a), 0);
        assert_eq!(mem.peek_view(m0, a), 5);
    }

    #[test]
    fn sync_access_restores_mute_coherence() {
        let (mut mem, v0, m0, v1, _) = two_pair_system();
        let a = Addr::new(0xC000);
        mem.poke(a, 3);
        mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        mem.load(Cycle::ZERO, m0, a, PhantomStrength::Global);
        mem.drain_store(Cycle::new(10), v1, a, 44); // race
        let sync = mem.sync_access(Cycle::new(500), v0, m0, a, None);
        assert_eq!(sync.value, 44, "sync must return the coherent value");
        // Both halves now hold identical coherent data.
        assert_eq!(mem.peek_view(m0, a), 44);
        let ml = mem.load(Cycle::new(600), m0, a, PhantomStrength::Global);
        assert!(ml.l1_hit);
        assert_eq!(ml.value, 44);
        assert_eq!(mem.stats().sync_requests.value(), 1);
    }

    #[test]
    fn sync_access_with_rmw_applies_once() {
        let (mut mem, v0, m0, ..) = two_pair_system();
        let a = Addr::new(0xD000);
        mem.poke(a, 0);
        let sync = mem.sync_access(Cycle::ZERO, v0, m0, a, Some((AtomicOp::Swap, 1)));
        assert_eq!(sync.value, 0);
        assert_eq!(mem.peek_coherent(a), 1);
        assert_eq!(mem.peek_view(m0, a), 1);
    }

    #[test]
    #[should_panic(expected = "mute cache")]
    fn sync_access_rejects_swapped_handles() {
        let (mut mem, v0, m0, ..) = two_pair_system();
        let _ = mem.sync_access(Cycle::ZERO, m0, v0, Addr::new(0), None);
    }

    #[test]
    fn bank_contention_serializes_requests() {
        let (mut mem, v0, _, v1, _) = two_pair_system();
        // Two misses to lines mapping to the same bank at the same cycle.
        let banks = mem.config().l2_banks as u64;
        let a = Addr::new(0x10_000);
        let b = Addr::new(0x10_000 + banks * reunion_isa::LINE_BYTES);
        let first = mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        let second = mem.load(Cycle::ZERO, v1, b, PhantomStrength::Global);
        assert!(
            second.done_at > first.done_at,
            "same-bank requests must serialize"
        );
    }

    #[test]
    fn bounded_crossbar_port_serializes_cross_bank_misses() {
        // Two same-cycle misses to *different* banks: the scalar model let
        // them proceed independently; a single crossbar port serializes
        // their injections.
        let cfg = MemConfig::small().with_banks(4).with_xbar_ports(1);
        let mut mem = MemorySystem::new(cfg);
        let v0 = mem.register_l1(Owner::vocal(0));
        let v1 = mem.register_l1(Owner::vocal(1));
        let a = Addr::new(0x10_000);
        let b = Addr::new(0x10_000 + reunion_isa::LINE_BYTES);
        let first = mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
        let second = mem.load(Cycle::ZERO, v1, b, PhantomStrength::Global);
        assert!(
            second.done_at > first.done_at,
            "one port must serialize cross-bank injections"
        );
        assert!(mem.stats().xbar_port_waits.value() >= 1);
    }

    #[test]
    fn mshr_backpressure_delays_bursts() {
        let mut mem = MemorySystem::new(MemConfig::small()); // 4 MSHRs
        let v0 = mem.register_l1(Owner::vocal(0));
        let mut last = Cycle::ZERO;
        for i in 0..6 {
            // Distinct sets, all misses, all at cycle 0.
            let a = Addr::new((0x40_000 + i * 0x1000) as u64);
            let acc = mem.load(Cycle::ZERO, v0, a, PhantomStrength::Global);
            last = last.max(acc.done_at);
        }
        // With only 4 MSHRs the 5th/6th misses start late.
        let unconstrained = MemConfig::small();
        let floor = unconstrained.l2_hit_latency + unconstrained.dram_latency;
        assert!(last.as_u64() > floor + 10);
    }

    #[test]
    fn l1_eviction_updates_directory() {
        let mut mem = MemorySystem::new(MemConfig::small());
        let v0 = mem.register_l1(Owner::vocal(0));
        let cfg = mem.config().clone();
        let sets = cfg.l1_lines() / cfg.l1_assoc;
        // Fill one set beyond associativity.
        for i in 0..=cfg.l1_assoc {
            let addr = Addr::new((i * sets) as u64 * reunion_isa::LINE_BYTES);
            mem.load(
                Cycle::new(i as u64 * 1000),
                v0,
                addr,
                PhantomStrength::Global,
            );
        }
        let first = Addr::new(0);
        assert!(!mem.l1_contains(v0, first), "LRU line must be evicted");
        // Its directory entry must no longer list v0 as a sharer.
        let refetch = mem.load(Cycle::new(100_000), v0, first, PhantomStrength::Global);
        assert!(!refetch.l1_hit);
    }

    #[test]
    fn next_activity_reports_outstanding_miss_completions() {
        let (mut mem, v0, ..) = two_pair_system();
        assert_eq!(mem.next_activity_at(Cycle::ZERO), None, "nothing in flight");
        let miss = mem.load(
            Cycle::ZERO,
            v0,
            Addr::new(0x2_0000),
            PhantomStrength::Global,
        );
        assert_eq!(mem.next_activity_at(Cycle::ZERO), Some(miss.done_at));
        // Past the completion stamp the queue is silent again.
        assert_eq!(mem.next_activity_at(miss.done_at + 1), None);
        // A hit completes without entering the outstanding queue.
        let hit = mem.load(
            miss.done_at,
            v0,
            Addr::new(0x2_0000),
            PhantomStrength::Global,
        );
        assert!(hit.l1_hit);
        assert_eq!(mem.next_activity_at(miss.done_at + 1), None);
    }

    #[test]
    fn flush_l1_empties_cache() {
        let (mut mem, v0, m0, ..) = two_pair_system();
        mem.load(Cycle::ZERO, v0, Addr::new(0), PhantomStrength::Global);
        mem.load(Cycle::ZERO, m0, Addr::new(0), PhantomStrength::Global);
        mem.flush_l1(v0);
        mem.flush_l1(m0);
        assert_eq!(mem.l1_occupancy(v0), 0);
        assert_eq!(mem.l1_occupancy(m0), 0);
    }
}

//! Coherence state, core identities and the L2 directory entry.

use std::fmt;

/// Identifies a *logical* processor (a core in the non-redundant machine, or
/// a vocal/mute pair in redundant configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u8);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifies a registered private L1 cache within the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct L1Id(pub(crate) usize);

impl L1Id {
    /// The raw index of this L1 in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for L1Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l1#{}", self.0)
    }
}

/// Who a private L1 belongs to: a vocal core (coherent, architecturally
/// visible) or a mute core (never exposes updates; Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The coherent half of a logical processor pair (or a non-redundant
    /// core, which is vocal by construction).
    Vocal(CoreId),
    /// The redundant half; invisible to the coherence protocol.
    Mute(CoreId),
}

impl Owner {
    /// Convenience constructor for a vocal owner.
    pub fn vocal(core: u8) -> Self {
        Owner::Vocal(CoreId(core))
    }

    /// Convenience constructor for a mute owner.
    pub fn mute(core: u8) -> Self {
        Owner::Mute(CoreId(core))
    }

    /// Whether this is a mute cache.
    pub fn is_mute(self) -> bool {
        matches!(self, Owner::Mute(_))
    }

    /// The logical processor this cache serves.
    pub fn core(self) -> CoreId {
        match self {
            Owner::Vocal(c) | Owner::Mute(c) => c,
        }
    }
}

/// MESI coherence state for a line in a *vocal* L1.
///
/// Mute L1 lines carry no coherence state — the protocol behaves as if mute
/// cores were absent from the system (§4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Not present (only used transiently; invalid lines are removed).
    #[default]
    Invalid,
    /// Clean, possibly shared with other vocal L1s.
    Shared,
    /// Clean and exclusive to this L1; silently upgradable to Modified.
    Exclusive,
    /// Dirty and exclusive to this L1.
    Modified,
}

impl MesiState {
    /// Whether this state grants write permission without a bus transaction.
    pub fn can_write(self) -> bool {
        matches!(self, MesiState::Exclusive | MesiState::Modified)
    }

    /// Whether the line holds valid data.
    pub fn is_valid(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }
}

/// Directory metadata kept per L2 line: which vocal L1s hold the line, and
/// which (if any) owns it exclusively.
///
/// Sharer bits index *vocal L1 registration order*; mute caches are never
/// recorded, implementing the paper's "sharers lists never include mute
/// caches" rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    sharers: u64,
    owner: Option<L1Id>,
}

impl DirEntry {
    /// An empty directory entry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `l1` as a sharer.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 vocal L1s are registered.
    pub fn add_sharer(&mut self, l1: L1Id) {
        assert!(l1.0 < 64, "directory supports at most 64 vocal L1s");
        self.sharers |= 1 << l1.0;
    }

    /// Removes `l1` from the sharer set (and ownership if it was the owner).
    pub fn remove_sharer(&mut self, l1: L1Id) {
        self.sharers &= !(1 << l1.0);
        if self.owner == Some(l1) {
            self.owner = None;
        }
    }

    /// Whether `l1` is recorded as a sharer.
    pub fn has_sharer(&self, l1: L1Id) -> bool {
        self.sharers & (1 << l1.0) != 0
    }

    /// Grants exclusive ownership to `l1`, clearing all other sharers.
    pub fn set_owner(&mut self, l1: L1Id) {
        self.sharers = 1 << l1.0;
        self.owner = Some(l1);
    }

    /// The current exclusive owner, if any.
    pub fn owner(&self) -> Option<L1Id> {
        self.owner
    }

    /// Clears exclusive ownership but keeps the (former) owner as a sharer.
    pub fn downgrade_owner(&mut self) {
        self.owner = None;
    }

    /// Iterates over all sharers except `except`.
    pub fn sharers_except(&self, except: L1Id) -> impl Iterator<Item = L1Id> + '_ {
        let mask = self.sharers & !(1 << except.0);
        (0..64u64)
            .filter(move |i| mask & (1 << i) != 0)
            .map(|i| L1Id(i as usize))
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Whether no vocal L1 holds the line.
    pub fn is_empty(&self) -> bool {
        self.sharers == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_classification() {
        assert!(Owner::mute(1).is_mute());
        assert!(!Owner::vocal(1).is_mute());
        assert_eq!(Owner::vocal(3).core(), CoreId(3));
        assert_eq!(Owner::mute(3).core(), CoreId(3));
    }

    #[test]
    fn mesi_write_permission() {
        assert!(MesiState::Modified.can_write());
        assert!(MesiState::Exclusive.can_write());
        assert!(!MesiState::Shared.can_write());
        assert!(!MesiState::Invalid.is_valid());
        assert!(MesiState::Shared.is_valid());
    }

    #[test]
    fn directory_sharers_round_trip() {
        let mut d = DirEntry::new();
        d.add_sharer(L1Id(0));
        d.add_sharer(L1Id(2));
        assert!(d.has_sharer(L1Id(0)));
        assert!(!d.has_sharer(L1Id(1)));
        assert_eq!(d.sharer_count(), 2);
        d.remove_sharer(L1Id(0));
        assert!(!d.has_sharer(L1Id(0)));
        assert!(!d.is_empty());
        d.remove_sharer(L1Id(2));
        assert!(d.is_empty());
    }

    #[test]
    fn ownership_clears_other_sharers() {
        let mut d = DirEntry::new();
        d.add_sharer(L1Id(0));
        d.add_sharer(L1Id(1));
        d.set_owner(L1Id(1));
        assert_eq!(d.owner(), Some(L1Id(1)));
        assert!(!d.has_sharer(L1Id(0)));
        assert!(d.has_sharer(L1Id(1)));
        d.downgrade_owner();
        assert_eq!(d.owner(), None);
        assert!(d.has_sharer(L1Id(1)));
    }

    #[test]
    fn removing_owner_clears_ownership() {
        let mut d = DirEntry::new();
        d.set_owner(L1Id(4));
        d.remove_sharer(L1Id(4));
        assert_eq!(d.owner(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn sharers_except_filters_self() {
        let mut d = DirEntry::new();
        d.add_sharer(L1Id(0));
        d.add_sharer(L1Id(1));
        d.add_sharer(L1Id(2));
        let others: Vec<_> = d.sharers_except(L1Id(1)).collect();
        assert_eq!(others, vec![L1Id(0), L1Id(2)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId(2).to_string(), "cpu2");
        assert_eq!(L1Id(5).to_string(), "l1#5");
    }
}

//! Generic set-associative cache tag arrays.

/// A set-associative tag array with true-LRU replacement.
///
/// `CacheArray` tracks *presence and per-line state* (the type parameter
/// `S`); data values live elsewhere (the global image for coherent readers,
/// the mute overlay for mute caches). Lines are addressed by their global
/// line index (`address / 64`).
///
/// # Examples
///
/// ```
/// use reunion_mem::CacheArray;
///
/// // 4 lines, 2-way: two sets.
/// let mut cache: CacheArray<u8> = CacheArray::new(4, 2);
/// assert!(cache.insert(0, 1).is_none());
/// assert!(cache.insert(2, 2).is_none()); // same set as line 0
/// let evicted = cache.insert(4, 3);      // set 0 full -> evict LRU (line 0)
/// assert_eq!(evicted, Some((0, 1)));
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<S> {
    ways: Vec<Option<Way<S>>>,
    assoc: usize,
    sets: usize,
    tick: u64,
}

#[derive(Clone, Debug)]
struct Way<S> {
    line: u64,
    state: S,
    last_use: u64,
}

impl<S> CacheArray<S> {
    /// Creates an array holding `lines` lines with `assoc` ways per set.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a positive multiple of `assoc`, or if the
    /// resulting set count is not a power of two.
    pub fn new(lines: usize, assoc: usize) -> Self {
        assert!(
            assoc > 0 && lines > 0 && lines % assoc == 0,
            "bad cache shape"
        );
        let sets = lines / assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let mut ways = Vec::with_capacity(lines);
        ways.resize_with(lines, || None);
        CacheArray {
            ways,
            assoc,
            sets,
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = self.set_of(line);
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Looks up a line, updating LRU on hit. Returns the line state.
    pub fn lookup(&mut self, line: u64) -> Option<&mut S> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        self.ways[range]
            .iter_mut()
            .flatten()
            .find(|w| w.line == line)
            .map(|w| {
                w.last_use = tick;
                &mut w.state
            })
    }

    /// Looks up a line without touching LRU.
    pub fn peek(&self, line: u64) -> Option<&S> {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .flatten()
            .find(|w| w.line == line)
            .map(|w| &w.state)
    }

    /// Whether the line is present.
    pub fn contains(&self, line: u64) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line (or replaces its state if already present), returning
    /// the evicted `(line, state)` if the set was full.
    pub fn insert(&mut self, line: u64, state: S) -> Option<(u64, S)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);

        // Already present: update in place.
        if let Some(way) = self.ways[range.clone()]
            .iter_mut()
            .flatten()
            .find(|w| w.line == line)
        {
            way.state = state;
            way.last_use = tick;
            return None;
        }

        // Free way?
        if let Some(slot) = self.ways[range.clone()].iter_mut().find(|w| w.is_none()) {
            *slot = Some(Way {
                line,
                state,
                last_use: tick,
            });
            return None;
        }

        // Evict LRU.
        let victim_idx = {
            let set = &self.ways[range.clone()];
            let (rel, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.as_ref().map(|w| w.last_use).unwrap_or(0))
                .expect("nonzero associativity");
            range.start + rel
        };
        let old = self.ways[victim_idx]
            .replace(Way {
                line,
                state,
                last_use: tick,
            })
            .expect("victim way was full");
        Some((old.line, old.state))
    }

    /// Removes a line, returning its state.
    pub fn invalidate(&mut self, line: u64) -> Option<S> {
        let range = self.set_range(line);
        for slot in &mut self.ways[range] {
            if slot.as_ref().is_some_and(|w| w.line == line) {
                return slot.take().map(|w| w.state);
            }
        }
        None
    }

    /// Removes every line, returning how many were valid.
    pub fn invalidate_all(&mut self) -> usize {
        let mut n = 0;
        for slot in &mut self.ways {
            if slot.take().is_some() {
                n += 1;
            }
        }
        n
    }

    /// Iterates over `(line, state)` of all valid lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, &S)> {
        self.ways.iter().flatten().map(|w| (w.line, &w.state))
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c: CacheArray<()> = CacheArray::new(8, 2);
        c.insert(5, ());
        assert!(c.contains(5));
        assert!(!c.contains(9)); // same set (4 sets), different tag
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: CacheArray<u32> = CacheArray::new(2, 2); // one set
        c.insert(0, 10);
        c.insert(1, 11);
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.lookup(0), Some(&mut 10));
        let evicted = c.insert(2, 12);
        assert_eq!(evicted, Some((1, 11)));
        assert!(c.contains(0) && c.contains(2));
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(2, 2);
        c.insert(0, 1);
        c.insert(1, 2);
        assert_eq!(c.insert(0, 99), None);
        assert_eq!(c.peek(0), Some(&99));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c: CacheArray<u32> = CacheArray::new(4, 2);
        c.insert(3, 7);
        assert_eq!(c.invalidate(3), Some(7));
        assert_eq!(c.invalidate(3), None);
        assert!(!c.contains(3));
    }

    #[test]
    fn invalidate_all_counts_lines() {
        let mut c: CacheArray<()> = CacheArray::new(8, 2);
        for line in 0..5 {
            c.insert(line, ());
        }
        assert_eq!(c.occupancy(), 5);
        assert_eq!(c.invalidate_all(), 5);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sets_are_indexed_by_low_bits() {
        let c: CacheArray<()> = CacheArray::new(16, 4); // 4 sets
        assert_eq!(c.sets(), 4);
        assert_eq!(c.assoc(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _: CacheArray<()> = CacheArray::new(12, 2); // 6 sets
    }

    #[test]
    #[should_panic(expected = "bad cache shape")]
    fn rejects_indivisible_shape() {
        let _: CacheArray<()> = CacheArray::new(10, 3);
    }

    #[test]
    fn iter_valid_reports_contents() {
        let mut c: CacheArray<u8> = CacheArray::new(8, 2);
        c.insert(1, 1);
        c.insert(2, 2);
        let mut lines: Vec<u64> = c.iter_valid().map(|(l, _)| l).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2]);
    }
}

//! Memory-hierarchy configuration.

/// Cache hierarchy parameters.
///
/// Defaults reproduce Table 1 of the paper: 64 KB 2-way L1s with a
/// 2-cycle load-to-use latency and 32 MSHRs, a 16 MB 8-way shared L2 with
/// 4 banks and a 35-cycle hit latency, and a 60 ns (240-cycle at 4 GHz)
/// memory access latency.
///
/// The two contention knobs the paper never needed — [`xbar_ports`] and
/// [`bank_queue_depth`] — default to `0`, the *unmodeled* sentinel: the
/// crossbar has as many request ports as it has requesters and every bank
/// queue is unbounded, which reproduces the paper-scale timing exactly.
/// The many-core scaling study (`fig_scaling`) sets both to finite values.
///
/// [`xbar_ports`]: MemConfig::xbar_ports
/// [`bank_queue_depth`]: MemConfig::bank_queue_depth
///
/// # Examples
///
/// ```
/// use reunion_mem::MemConfig;
///
/// let cfg = MemConfig::default();
/// assert_eq!(cfg.l1_bytes, 64 * 1024);
/// assert_eq!(cfg.l2_hit_latency, 35);
/// let small = MemConfig::small(); // unit-test scale
/// assert!(small.l2_bytes < cfg.l2_bytes);
/// let contended = cfg.with_xbar_ports(2).with_bank_queue_depth(4);
/// assert_eq!(contended.xbar_ports, 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 capacity in bytes per core.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 load-to-use latency in cycles.
    pub l1_hit_latency: u64,
    /// Outstanding L1 misses (MSHRs) per core.
    pub l1_mshrs: usize,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 bank count.
    pub l2_banks: usize,
    /// L2 hit latency in cycles (includes tag + data + return).
    pub l2_hit_latency: u64,
    /// Crossbar hop latency from an L1 to an L2 bank, in cycles.
    pub crossbar_latency: u64,
    /// Cycles an L2 bank is occupied per request; lower means more
    /// bandwidth. The paper scales on-chip cache bandwidth with core count,
    /// so redundant configurations halve this value.
    pub bank_occupancy: u64,
    /// Bounded crossbar request ports between the L1s and the L2 banks.
    /// Each injection occupies one port for one cycle; a round-robin
    /// arbiter assigns ports to requests. `0` (the default) models an
    /// unbounded crossbar — no port ever delays a request.
    pub xbar_ports: usize,
    /// Bounded per-bank request queue depth. A request arriving at a full
    /// bank queue stalls at the crossbar until the bank drains an entry.
    /// `0` (the default) models unbounded queues.
    pub bank_queue_depth: usize,
    /// Main-memory access latency in cycles (60 ns at 4 GHz).
    pub dram_latency: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1_bytes: 64 * 1024,
            l1_assoc: 2,
            l1_hit_latency: 2,
            l1_mshrs: 32,
            l2_bytes: 16 * 1024 * 1024,
            l2_assoc: 8,
            l2_banks: 4,
            l2_hit_latency: 35,
            crossbar_latency: 3,
            bank_occupancy: 2,
            xbar_ports: 0,
            bank_queue_depth: 0,
            dram_latency: 240,
        }
    }
}

/// How [`MemConfig::scaled_for_cores`] realizes the paper's "cache
/// bandwidth scales in proportion with the number of cores" assumption:
/// bank occupancy divides down until it floors at one cycle, and any scale
/// factor left over multiplies the bank count instead of saturating
/// silently.
///
/// Returned by [`MemConfig::scaling_for_cores`] so callers (and the
/// monotonicity property tests) can reason about the decomposition
/// directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandwidthScaling {
    /// The total bandwidth scale factor relative to the 4-core baseline.
    pub factor: u64,
    /// The part of `factor` absorbed by dividing `bank_occupancy`.
    pub occupancy_divisor: u64,
    /// The part of `factor` absorbed by multiplying `l2_banks`
    /// (`factor == occupancy_divisor * bank_multiplier`).
    pub bank_multiplier: u64,
}

impl MemConfig {
    /// A deliberately tiny hierarchy for unit tests (4 KB L1, 64 KB L2) so
    /// that evictions and conflicts are easy to trigger.
    pub fn small() -> Self {
        MemConfig {
            l1_bytes: 4 * 1024,
            l1_assoc: 2,
            l1_hit_latency: 2,
            l1_mshrs: 4,
            l2_bytes: 64 * 1024,
            l2_assoc: 4,
            l2_banks: 2,
            l2_hit_latency: 10,
            crossbar_latency: 1,
            bank_occupancy: 1,
            xbar_ports: 0,
            bank_queue_depth: 0,
            dram_latency: 50,
        }
    }

    /// Sets the L2 bank count.
    pub fn with_banks(mut self, banks: usize) -> Self {
        assert!(banks >= 1, "need at least one L2 bank");
        self.l2_banks = banks;
        self
    }

    /// Sets the per-request L2 bank occupancy in cycles.
    pub fn with_bank_occupancy(mut self, cycles: u64) -> Self {
        assert!(cycles >= 1, "a bank request occupies at least one cycle");
        self.bank_occupancy = cycles;
        self
    }

    /// Bounds the crossbar at `ports` request ports (`0` = unbounded).
    pub fn with_xbar_ports(mut self, ports: usize) -> Self {
        self.xbar_ports = ports;
        self
    }

    /// Bounds every bank's request queue at `depth` entries
    /// (`0` = unbounded).
    pub fn with_bank_queue_depth(mut self, depth: usize) -> Self {
        self.bank_queue_depth = depth;
        self
    }

    /// The bandwidth-scaling decomposition for a `cores`-core CMP relative
    /// to the 4-core baseline.
    ///
    /// The factor is absorbed by dividing `bank_occupancy` for as long as
    /// occupancy stays at or above one cycle; whatever remains multiplies
    /// the bank count. Total bandwidth (`l2_banks / bank_occupancy`
    /// requests per cycle) therefore scales by exactly `factor` — it never
    /// saturates the way the old occupancy-only scaling did at ≥ 16 cores.
    pub fn scaling_for_cores(&self, cores: usize) -> BandwidthScaling {
        let factor = (cores as u64 / 4).max(1);
        // Largest divisor of `factor` that occupancy can absorb without
        // dropping below one cycle — divisor, not just min, so the
        // decomposition stays exact (e.g. factor 3 with occupancy 2 must
        // triple the banks, not halve occupancy and lose a remainder).
        let cap = factor.min(self.bank_occupancy.max(1));
        let occupancy_divisor = (1..=cap).rev().find(|d| factor % d == 0).unwrap_or(1);
        BandwidthScaling {
            factor,
            occupancy_divisor,
            bank_multiplier: factor / occupancy_divisor,
        }
    }

    /// Scales L2 bank bandwidth for `cores` cores relative to the 4-core
    /// baseline, per the paper's "cache bandwidth scales in proportion with
    /// the number of cores" assumption — see [`scaling_for_cores`]
    /// (this method applies that decomposition).
    ///
    /// [`scaling_for_cores`]: MemConfig::scaling_for_cores
    pub fn scaled_for_cores(mut self, cores: usize) -> Self {
        let scaling = self.scaling_for_cores(cores);
        self.bank_occupancy = (self.bank_occupancy / scaling.occupancy_divisor).max(1);
        self.l2_banks *= scaling.bank_multiplier as usize;
        self
    }

    /// Number of lines in an L1.
    pub fn l1_lines(&self) -> usize {
        (self.l1_bytes / reunion_isa::LINE_BYTES) as usize
    }

    /// Number of lines in the L2.
    pub fn l2_lines(&self) -> usize {
        (self.l2_bytes / reunion_isa::LINE_BYTES) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.l1_lines(), 1024);
        assert_eq!(cfg.l2_lines(), 262_144);
        assert_eq!(cfg.l1_mshrs, 32);
        assert_eq!(cfg.dram_latency, 240);
        assert_eq!(cfg.l2_banks, 4);
        // Contention is unmodeled at paper scale.
        assert_eq!(cfg.xbar_ports, 0);
        assert_eq!(cfg.bank_queue_depth, 0);
    }

    #[test]
    fn builders_chain() {
        let cfg = MemConfig::default()
            .with_banks(8)
            .with_bank_occupancy(3)
            .with_xbar_ports(2)
            .with_bank_queue_depth(4);
        assert_eq!(cfg.l2_banks, 8);
        assert_eq!(cfg.bank_occupancy, 3);
        assert_eq!(cfg.xbar_ports, 2);
        assert_eq!(cfg.bank_queue_depth, 4);
    }

    #[test]
    fn scaling_increases_bandwidth() {
        let base = MemConfig::default();
        let scaled = base.clone().scaled_for_cores(8);
        assert!(scaled.bank_occupancy < base.bank_occupancy);
        // Never scales below one cycle of occupancy.
        let floor = MemConfig::small().scaled_for_cores(64);
        assert_eq!(floor.bank_occupancy, 1);
    }

    #[test]
    fn paper_scale_points_are_unchanged_by_the_bank_fix() {
        // The eight committed artifacts only ever scale to 4 or 8 cores;
        // the bank-multiplier fix must leave those points byte-identical.
        let four = MemConfig::default().scaled_for_cores(4);
        assert_eq!(four.bank_occupancy, 2);
        assert_eq!(four.l2_banks, 4);
        let eight = MemConfig::default().scaled_for_cores(8);
        assert_eq!(eight.bank_occupancy, 1);
        assert_eq!(eight.l2_banks, 4);
    }

    #[test]
    fn saturated_occupancy_spills_into_bank_count() {
        // Default occupancy (2) can only absorb a factor of 2; beyond 8
        // cores the leftover multiplies the bank count instead of silently
        // saturating.
        let sixteen = MemConfig::default().scaled_for_cores(16);
        assert_eq!(sixteen.bank_occupancy, 1);
        assert_eq!(sixteen.l2_banks, 8);
        let thirty_two = MemConfig::default().scaled_for_cores(32);
        assert_eq!(thirty_two.bank_occupancy, 1);
        assert_eq!(thirty_two.l2_banks, 16);
    }

    #[test]
    fn scaling_decomposition_is_exact_and_monotonic() {
        // Property sweep: for every core count, the decomposition
        // multiplies back to the factor, and delivered bandwidth
        // (banks per occupancy-cycle) scales by exactly that factor —
        // monotonically non-decreasing in the core count.
        for base in [MemConfig::default(), MemConfig::small()] {
            let mut last_bandwidth = 0.0f64;
            for cores in 1..=128 {
                let s = base.scaling_for_cores(cores);
                assert_eq!(
                    s.occupancy_divisor * s.bank_multiplier,
                    s.factor,
                    "decomposition must be exact at {cores} cores"
                );
                let scaled = base.clone().scaled_for_cores(cores);
                let bandwidth = scaled.l2_banks as f64 / scaled.bank_occupancy as f64;
                let expected = s.factor as f64 * base.l2_banks as f64 / base.bank_occupancy as f64;
                assert!(
                    (bandwidth - expected).abs() < 1e-9,
                    "{cores} cores: bandwidth {bandwidth} != factor-scaled {expected}"
                );
                assert!(
                    bandwidth >= last_bandwidth,
                    "bandwidth must be monotonic in core count (at {cores})"
                );
                last_bandwidth = bandwidth;
            }
        }
    }
}

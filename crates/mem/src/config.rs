//! Memory-hierarchy configuration.

/// Cache hierarchy parameters.
///
/// Defaults reproduce Table 1 of the paper: 64 KB 2-way L1s with a
/// 2-cycle load-to-use latency and 32 MSHRs, a 16 MB 8-way shared L2 with
/// 4 banks and a 35-cycle hit latency, and a 60 ns (240-cycle at 4 GHz)
/// memory access latency.
///
/// # Examples
///
/// ```
/// use reunion_mem::MemConfig;
///
/// let cfg = MemConfig::default();
/// assert_eq!(cfg.l1_bytes, 64 * 1024);
/// assert_eq!(cfg.l2_hit_latency, 35);
/// let small = MemConfig::small(); // unit-test scale
/// assert!(small.l2_bytes < cfg.l2_bytes);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 capacity in bytes per core.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 load-to-use latency in cycles.
    pub l1_hit_latency: u64,
    /// Outstanding L1 misses (MSHRs) per core.
    pub l1_mshrs: usize,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 bank count.
    pub l2_banks: usize,
    /// L2 hit latency in cycles (includes tag + data + return).
    pub l2_hit_latency: u64,
    /// Crossbar hop latency from an L1 to an L2 bank, in cycles.
    pub crossbar_latency: u64,
    /// Cycles an L2 bank is occupied per request; lower means more
    /// bandwidth. The paper scales on-chip cache bandwidth with core count,
    /// so redundant configurations halve this value.
    pub bank_occupancy: u64,
    /// Main-memory access latency in cycles (60 ns at 4 GHz).
    pub dram_latency: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1_bytes: 64 * 1024,
            l1_assoc: 2,
            l1_hit_latency: 2,
            l1_mshrs: 32,
            l2_bytes: 16 * 1024 * 1024,
            l2_assoc: 8,
            l2_banks: 4,
            l2_hit_latency: 35,
            crossbar_latency: 3,
            bank_occupancy: 2,
            dram_latency: 240,
        }
    }
}

impl MemConfig {
    /// A deliberately tiny hierarchy for unit tests (4 KB L1, 64 KB L2) so
    /// that evictions and conflicts are easy to trigger.
    pub fn small() -> Self {
        MemConfig {
            l1_bytes: 4 * 1024,
            l1_assoc: 2,
            l1_hit_latency: 2,
            l1_mshrs: 4,
            l2_bytes: 64 * 1024,
            l2_assoc: 4,
            l2_banks: 2,
            l2_hit_latency: 10,
            crossbar_latency: 1,
            bank_occupancy: 1,
            dram_latency: 50,
        }
    }

    /// Scales L2 bank bandwidth for `cores` cores relative to the 4-core
    /// baseline, per the paper's "cache bandwidth scales in proportion with
    /// the number of cores" assumption.
    pub fn scaled_for_cores(mut self, cores: usize) -> Self {
        let factor = (cores as u64 / 4).max(1);
        self.bank_occupancy = (self.bank_occupancy / factor).max(1);
        self
    }

    /// Number of lines in an L1.
    pub fn l1_lines(&self) -> usize {
        (self.l1_bytes / reunion_isa::LINE_BYTES) as usize
    }

    /// Number of lines in the L2.
    pub fn l2_lines(&self) -> usize {
        (self.l2_bytes / reunion_isa::LINE_BYTES) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.l1_lines(), 1024);
        assert_eq!(cfg.l2_lines(), 262_144);
        assert_eq!(cfg.l1_mshrs, 32);
        assert_eq!(cfg.dram_latency, 240);
        assert_eq!(cfg.l2_banks, 4);
    }

    #[test]
    fn scaling_increases_bandwidth() {
        let base = MemConfig::default();
        let scaled = base.clone().scaled_for_cores(8);
        assert!(scaled.bank_occupancy < base.bank_occupancy);
        // Never scales below one cycle of occupancy.
        let floor = MemConfig::small().scaled_for_cores(64);
        assert_eq!(floor.bank_occupancy, 1);
    }
}

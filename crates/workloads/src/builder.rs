//! A small assembler for building validated programs.

use reunion_isa::{BranchCond, Instruction, Program, ProgramError, RegId};

/// An incremental program builder with label/patch support for forward
/// branches.
///
/// # Examples
///
/// ```
/// use reunion_isa::{BranchCond, Instruction, RegId};
/// use reunion_workloads::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new("demo");
/// let top = b.here();
/// b.push(Instruction::add_imm(RegId::new(1), RegId::new(1), 1));
/// b.jump_to(top);
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), reunion_isa::ProgramError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    name: String,
    code: Vec<Instruction>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            code: Vec::new(),
        }
    }

    /// The PC the next pushed instruction will occupy.
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Appends one instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.code.push(inst);
        self
    }

    /// Appends a conditional branch to a known (usually backward) target.
    pub fn branch_to(&mut self, cond: BranchCond, reg: RegId, target: usize) -> &mut Self {
        self.code.push(Instruction::branch(cond, reg, target));
        self
    }

    /// Appends an unconditional jump to a known target.
    pub fn jump_to(&mut self, target: usize) -> &mut Self {
        self.code.push(Instruction::jump(target));
        self
    }

    /// Appends a conditional branch whose target is patched later; returns
    /// the branch's PC for [`patch_to_here`](Self::patch_to_here).
    pub fn branch_forward(&mut self, cond: BranchCond, reg: RegId) -> usize {
        let at = self.code.len();
        // Placeholder target 0 is always in range once the program builds.
        self.code.push(Instruction::branch(cond, reg, 0));
        at
    }

    /// Points a previously reserved forward branch at the current PC.
    ///
    /// # Panics
    ///
    /// Panics if `branch_pc` does not hold a branch.
    pub fn patch_to_here(&mut self, branch_pc: usize) {
        let target = self.code.len();
        let inst = &mut self.code[branch_pc];
        assert!(inst.op.is_branch(), "patching a non-branch at {branch_pc}");
        inst.imm = target as i64;
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if validation fails (e.g. a forward branch
    /// was never patched past the end — impossible via this API — or the
    /// program is empty).
    pub fn build(self) -> Result<Program, ProgramError> {
        Program::new(self.name, self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reunion_isa::{FunctionalCore, SparseMemory};

    #[test]
    fn forward_branch_patching() {
        let mut b = ProgramBuilder::new("fwd");
        b.push(Instruction::load_imm(RegId::new(1), 0));
        let skip = b.branch_forward(BranchCond::Eqz, RegId::new(1));
        b.push(Instruction::load_imm(RegId::new(2), 111)); // skipped
        b.patch_to_here(skip);
        b.push(Instruction::load_imm(RegId::new(3), 5));
        b.push(Instruction::halt());
        let prog = b.build().unwrap();

        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 100);
        assert_eq!(core.state.regs.read(RegId::new(2)), 0, "skipped");
        assert_eq!(core.state.regs.read(RegId::new(3)), 5);
    }

    #[test]
    fn backward_jump_loops() {
        let mut b = ProgramBuilder::new("loop");
        let top = b.here();
        b.push(Instruction::add_imm(RegId::new(1), RegId::new(1), 1));
        b.jump_to(top);
        let prog = b.build().unwrap();
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 100);
        assert_eq!(core.retired, 100);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn patch_rejects_non_branch() {
        let mut b = ProgramBuilder::new("bad");
        b.push(Instruction::nop());
        b.patch_to_here(0);
    }

    #[test]
    fn empty_build_fails() {
        assert!(ProgramBuilder::new("e").build().is_err());
    }
}

//! The eleven named workloads of the evaluation (Table 2).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use reunion_isa::asm::{self, KernelImage};
use reunion_isa::{Addr, Instruction, Program};

use crate::{gen, kernels, SharingModel, WorkloadClass, WorkloadSpec};

/// Lazily generated workload artifacts, shared by every clone of one
/// [`Workload`] — and hence by every grid cell and every `CmpSystem` built
/// from it. Generation is deterministic (seeded by the spec), so caching
/// cannot change a single byte of any artifact; it only stops the grid
/// from regenerating multi-megabyte memory images and program vectors once
/// per cell per system.
#[derive(Debug, Default)]
struct ArtifactCache {
    /// Per-thread program images. `Program` is `Arc`-backed, so the stored
    /// clone and every handout share one instruction allocation.
    programs: Mutex<HashMap<usize, Program>>,
    /// The initial memory image (pointer rings etc.) — up to half a million
    /// entries for em3d; generated at most once per workload.
    memory: OnceLock<Arc<[(Addr, u64)]>>,
    /// The parsed kernel image for an assembly-sourced workload — parsed at
    /// most once per workload; `None` source never touches it.
    image: OnceLock<Arc<KernelImage>>,
}

/// Where a workload's program and memory images come from.
#[derive(Clone, Copy, Debug)]
enum ProgramSource {
    /// The synthetic generator, parameterized by the spec.
    Generated,
    /// A compiled-in assembly kernel (`asm/*.asm`), parsed on first use.
    /// The spec still carries the name/class/ITLB parameters; the program
    /// and initial-memory images come from the text.
    Kernel(&'static str),
}

/// A named workload: its parameterization plus program/memory generation.
///
/// # Examples
///
/// ```
/// use reunion_workloads::Workload;
///
/// let em3d = Workload::by_name("em3d").expect("in suite");
/// assert!(!em3d.initial_memory().is_empty(), "em3d has a pointer ring");
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    source: ProgramSource,
    /// `None` for a cache-disabled workload ([`Workload::uncached`]) —
    /// every call regenerates from the spec, the reference behaviour the
    /// byte-identity property test compares the cache against.
    cache: Option<Arc<ArtifactCache>>,
}

impl Workload {
    /// Wraps a custom spec (the named suite uses [`suite`]).
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        spec.assert_valid();
        Workload {
            spec,
            source: ProgramSource::Generated,
            cache: Some(Arc::new(ArtifactCache::default())),
        }
    }

    /// Wraps a custom spec with the artifact cache disabled: every
    /// [`program`](Self::program) and [`initial_memory`](Self::initial_memory)
    /// call regenerates from scratch. Exists so tests can verify the cache
    /// is purely an optimization (identical artifacts, identical reports).
    pub fn uncached(spec: WorkloadSpec) -> Self {
        spec.assert_valid();
        Workload {
            spec,
            source: ProgramSource::Generated,
            cache: None,
        }
    }

    /// Wraps an assembly kernel: programs and initial memory come from
    /// `source` (an `asm/*.asm` text, typically `include_str!`-ed), while
    /// the spec carries the name, class and ITLB parameters. The text is
    /// parsed lazily, at most once per workload (the same artifact cache
    /// that shares generated programs across a grid's cells).
    ///
    /// Threads beyond what the image defines get a parked single-`halt`
    /// program, so a single-threaded kernel still runs on a many-LP system.
    pub fn kernel(spec: WorkloadSpec, source: &'static str) -> Self {
        spec.assert_valid();
        Workload {
            spec,
            source: ProgramSource::Kernel(source),
            cache: Some(Arc::new(ArtifactCache::default())),
        }
    }

    /// [`kernel`](Self::kernel) with the artifact cache disabled — the
    /// reference behaviour (re-parse on every call) that the cache
    /// byte-identity test compares against.
    pub fn kernel_uncached(spec: WorkloadSpec, source: &'static str) -> Self {
        spec.assert_valid();
        Workload {
            spec,
            source: ProgramSource::Kernel(source),
            cache: None,
        }
    }

    /// Looks up a workload by (case-insensitive) name, first in the
    /// standard suite, then in the kernel suite.
    pub fn by_name(name: &str) -> Option<Workload> {
        suite()
            .into_iter()
            .chain(kernels::kernel_suite())
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }

    /// The workload's name (Table 2 row).
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The workload's class.
    pub fn class(&self) -> WorkloadClass {
        self.spec.class
    }

    /// The full parameterization.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The kernel image behind an assembly-sourced workload, parsed (at
    /// most once when cached) from the compiled-in text. `None` for a
    /// generator-backed workload.
    ///
    /// # Panics
    ///
    /// Panics if the compiled-in text does not parse — a build defect, not
    /// a runtime condition.
    pub fn kernel_image(&self) -> Option<Arc<KernelImage>> {
        let ProgramSource::Kernel(text) = self.source else {
            return None;
        };
        let parse = || {
            Arc::new(
                asm::parse_image(text)
                    .unwrap_or_else(|e| panic!("{}: bad compiled-in kernel: {e}", self.name())),
            )
        };
        Some(match &self.cache {
            Some(cache) => cache.image.get_or_init(parse).clone(),
            None => parse(),
        })
    }

    /// Builds the artifact for one thread, whatever the source.
    fn make_program(&self, thread: usize) -> Program {
        match self.source {
            ProgramSource::Generated => gen::generate_program(&self.spec, thread),
            ProgramSource::Kernel(_) => {
                let image = self.kernel_image().expect("kernel source");
                match image.program(thread) {
                    Some(p) => p.clone(),
                    // LPs the image does not define park on an immediate
                    // halt; the skip engine treats them as quiescent.
                    None => Program::new(
                        format!("{}.parked", image.name()),
                        vec![Instruction::halt()],
                    )
                    .expect("parked program is valid"),
                }
            }
        }
    }

    /// The program image for logical processor `thread` — generated once
    /// per thread and served as a shared handle afterwards (`Program` clones
    /// are reference-count bumps).
    pub fn program(&self, thread: usize) -> Program {
        match &self.cache {
            Some(cache) => {
                let mut programs = cache.programs.lock().expect("program cache poisoned");
                programs
                    .entry(thread)
                    .or_insert_with(|| self.make_program(thread))
                    .clone()
            }
            None => self.make_program(thread),
        }
    }

    /// Initial memory contents (pointer rings, `.data` images), to be
    /// applied to the memory system before simulation — generated once and
    /// shared; every system built from this workload gets a handle to the
    /// same image.
    pub fn initial_memory(&self) -> Arc<[(Addr, u64)]> {
        let make = || -> Arc<[(Addr, u64)]> {
            match self.source {
                ProgramSource::Generated => gen::initial_memory(&self.spec).into(),
                ProgramSource::Kernel(_) => self
                    .kernel_image()
                    .expect("kernel source")
                    .memory()
                    .to_vec()
                    .into(),
            }
        };
        match &self.cache {
            Some(cache) => cache.memory.get_or_init(make).clone(),
            None => make(),
        }
    }

    /// `(cached programs, memory image cached)` — the artifact cache's
    /// population, for the deterministic counters gate. `(0, false)` for an
    /// [`uncached`](Self::uncached) workload.
    pub fn cache_population(&self) -> (usize, bool) {
        match &self.cache {
            Some(cache) => (
                cache.programs.lock().expect("program cache poisoned").len(),
                cache.memory.get().is_some(),
            ),
            None => (0, false),
        }
    }
}

/// The standard eleven-workload suite.
///
/// Parameters follow Table 2's classes: web serving is trap-heavy with
/// moderate sharing; OLTP is lock- and membar-intensive with the largest
/// TLB pressure; DSS scans large shared tables with few serializing events
/// (Q1 scan-dominated, Q2 join-dominated, Q17 balanced); the scientific
/// kernels have high MLP and minimal serialization, with em3d's pointer
/// chase exceeding the 16 MB shared L2.
pub fn suite() -> Vec<Workload> {
    let specs = vec![
        WorkloadSpec {
            name: "apache",
            class: WorkloadClass::Web,
            private_bytes: 8 << 20,
            shared_bytes: 2 << 20,
            locks: 64,
            critical_section_len: 10,
            lock_weight: 0.60,
            shared_read_weight: 0.6,
            private_weight: 3.0,
            compute_weight: 4.0,
            trap_weight: 0.50,
            membar_weight: 0.40,
            chase_weight: 0.0,
            store_fraction: 0.30,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.02,
            shared_stride: 8 * 65,
            lock_sharing: 0.03,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.4,
                hot_write_fraction: 0.2,
                migratory_weight: 0.05,
                producer_consumer_weight: 0.04,
                lock_contention: 0.05,
                contended_locks: 16,
                burst_len: 2,
                write_period: 64,
                contention_period: 64,
            },
            itlb_miss_per_million: 1400,
            segments: 96,
            seed: 0xA9AC4E,
        },
        WorkloadSpec {
            name: "zeus",
            class: WorkloadClass::Web,
            private_bytes: 8 << 20,
            shared_bytes: 2 << 20,
            locks: 64,
            critical_section_len: 8,
            lock_weight: 0.50,
            shared_read_weight: 0.6,
            private_weight: 3.0,
            compute_weight: 4.5,
            trap_weight: 0.45,
            membar_weight: 0.35,
            chase_weight: 0.0,
            store_fraction: 0.25,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.015,
            shared_stride: 8 * 65,
            lock_sharing: 0.03,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.35,
                hot_write_fraction: 0.2,
                migratory_weight: 0.05,
                producer_consumer_weight: 0.04,
                lock_contention: 0.05,
                contended_locks: 16,
                burst_len: 2,
                write_period: 128,
                contention_period: 64,
            },
            itlb_miss_per_million: 1200,
            segments: 96,
            seed: 0x5EC5,
        },
        WorkloadSpec {
            name: "db2_oltp",
            class: WorkloadClass::Oltp,
            private_bytes: 16 << 20,
            shared_bytes: 4 << 20,
            locks: 128,
            critical_section_len: 14,
            lock_weight: 1.00,
            shared_read_weight: 0.6,
            private_weight: 3.0,
            compute_weight: 3.5,
            trap_weight: 0.50,
            membar_weight: 0.60,
            chase_weight: 0.0,
            store_fraction: 0.35,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.03,
            shared_stride: 8 * 65,
            lock_sharing: 0.05,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 4,
                hot_weight: 0.5,
                hot_write_fraction: 0.25,
                migratory_weight: 0.08,
                producer_consumer_weight: 0.04,
                lock_contention: 0.06,
                contended_locks: 16,
                burst_len: 2,
                write_period: 64,
                contention_period: 32,
            },
            itlb_miss_per_million: 1800,
            segments: 96,
            seed: 0xDB2,
        },
        WorkloadSpec {
            name: "oracle_oltp",
            class: WorkloadClass::Oltp,
            private_bytes: 16 << 20,
            shared_bytes: 4 << 20,
            locks: 128,
            critical_section_len: 12,
            lock_weight: 0.90,
            shared_read_weight: 0.6,
            private_weight: 3.0,
            compute_weight: 3.5,
            trap_weight: 0.50,
            membar_weight: 0.70,
            chase_weight: 0.0,
            store_fraction: 0.35,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.035,
            shared_stride: 8 * 65,
            lock_sharing: 0.05,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 4,
                hot_weight: 0.45,
                hot_write_fraction: 0.25,
                migratory_weight: 0.08,
                producer_consumer_weight: 0.04,
                lock_contention: 0.06,
                contended_locks: 16,
                burst_len: 2,
                write_period: 32,
                contention_period: 32,
            },
            itlb_miss_per_million: 2500,
            segments: 96,
            seed: 0x04AC1E,
        },
        WorkloadSpec {
            name: "db2_dss_q1",
            class: WorkloadClass::Dss,
            private_bytes: 4 << 20,
            shared_bytes: 32 << 20,
            locks: 16,
            critical_section_len: 8,
            lock_weight: 0.05,
            shared_read_weight: 4.0,
            private_weight: 1.0,
            compute_weight: 3.0,
            trap_weight: 0.030,
            membar_weight: 0.05,
            chase_weight: 0.0,
            store_fraction: 0.08,
            private_stride: 8 * 40503,
            private_step: 8,
            jump_fraction: 0.002,
            shared_stride: 8,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 32,
                writers: 1,
                hot_weight: 0.6,
                hot_write_fraction: 0.1,
                migratory_weight: 0.02,
                producer_consumer_weight: 0.02,
                lock_contention: 0.02,
                contended_locks: 16,
                burst_len: 1,
                write_period: 256,
                contention_period: 256,
            },
            itlb_miss_per_million: 150,
            segments: 96,
            seed: 0xD551,
        },
        WorkloadSpec {
            name: "db2_dss_q2",
            class: WorkloadClass::Dss,
            private_bytes: 8 << 20,
            shared_bytes: 16 << 20,
            locks: 32,
            critical_section_len: 8,
            lock_weight: 0.10,
            shared_read_weight: 2.5,
            private_weight: 2.0,
            compute_weight: 3.5,
            trap_weight: 0.060,
            membar_weight: 0.08,
            chase_weight: 0.0,
            store_fraction: 0.12,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.012,
            shared_stride: 8 * 129,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 32,
                writers: 1,
                hot_weight: 0.5,
                hot_write_fraction: 0.1,
                migratory_weight: 0.02,
                producer_consumer_weight: 0.02,
                lock_contention: 0.02,
                contended_locks: 16,
                burst_len: 1,
                write_period: 64,
                contention_period: 256,
            },
            itlb_miss_per_million: 800,
            segments: 96,
            seed: 0xD552,
        },
        WorkloadSpec {
            name: "db2_dss_q17",
            class: WorkloadClass::Dss,
            private_bytes: 8 << 20,
            shared_bytes: 16 << 20,
            locks: 32,
            critical_section_len: 8,
            lock_weight: 0.08,
            shared_read_weight: 3.0,
            private_weight: 1.5,
            compute_weight: 3.2,
            trap_weight: 0.060,
            membar_weight: 0.08,
            chase_weight: 0.0,
            store_fraction: 0.10,
            private_stride: 8 * 40503,
            private_step: 16,
            jump_fraction: 0.012,
            shared_stride: 8 * 65,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 32,
                writers: 1,
                hot_weight: 0.55,
                hot_write_fraction: 0.1,
                migratory_weight: 0.02,
                producer_consumer_weight: 0.02,
                lock_contention: 0.02,
                contended_locks: 16,
                burst_len: 1,
                write_period: 256,
                contention_period: 256,
            },
            itlb_miss_per_million: 850,
            segments: 96,
            seed: 0xD517,
        },
        WorkloadSpec {
            name: "em3d",
            class: WorkloadClass::Scientific,
            private_bytes: 4 << 20,
            shared_bytes: 32 << 20, // exceeds the 16 MB shared L2
            locks: 16,
            critical_section_len: 6,
            lock_weight: 0.02,
            shared_read_weight: 0.5,
            private_weight: 1.0,
            compute_weight: 2.0,
            trap_weight: 0.002,
            membar_weight: 0.010,
            chase_weight: 3.0,
            store_fraction: 0.15,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.004,
            shared_stride: 8 * 9,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.15,
                hot_write_fraction: 0.0,
                migratory_weight: 0.0,
                producer_consumer_weight: 0.02,
                lock_contention: 0.0,
                contended_locks: 16,
                burst_len: 1,
                write_period: 4096,
                contention_period: 512,
            },
            itlb_miss_per_million: 60,
            segments: 96,
            seed: 0xE3D,
        },
        WorkloadSpec {
            name: "moldyn",
            class: WorkloadClass::Scientific,
            private_bytes: 8 << 20,
            shared_bytes: 4 << 20,
            locks: 64,
            critical_section_len: 10,
            lock_weight: 0.08,
            shared_read_weight: 0.8,
            private_weight: 3.0,
            compute_weight: 4.0,
            trap_weight: 0.003,
            membar_weight: 0.12,
            chase_weight: 0.0,
            store_fraction: 0.30,
            private_stride: 8 * 5003,
            private_step: 16,
            jump_fraction: 0.003, // neighbor-list locality
            shared_stride: 8 * 9,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.5,
                hot_write_fraction: 0.0,
                migratory_weight: 0.0,
                producer_consumer_weight: 0.10,
                lock_contention: 0.04,
                contended_locks: 16,
                burst_len: 1,
                write_period: 128,
                contention_period: 256,
            },
            itlb_miss_per_million: 60,
            segments: 96,
            seed: 0x301D,
        },
        WorkloadSpec {
            name: "ocean",
            class: WorkloadClass::Scientific,
            private_bytes: 16 << 20,
            shared_bytes: 4 << 20,
            locks: 32,
            critical_section_len: 8,
            lock_weight: 0.04,
            shared_read_weight: 0.8,
            private_weight: 3.5,
            compute_weight: 3.0,
            trap_weight: 0.003,
            membar_weight: 0.12,
            chase_weight: 0.0,
            store_fraction: 0.35,
            private_stride: 8 * 33,
            private_step: 8,
            jump_fraction: 0.002, // stencil: near-neighbor sweeps
            shared_stride: 8 * 9,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.5,
                hot_write_fraction: 0.0,
                migratory_weight: 0.0,
                producer_consumer_weight: 0.16,
                lock_contention: 0.04,
                contended_locks: 16,
                burst_len: 1,
                write_period: 128,
                contention_period: 256,
            },
            itlb_miss_per_million: 60,
            segments: 96,
            seed: 0x0CEA,
        },
        WorkloadSpec {
            name: "sparse",
            class: WorkloadClass::Scientific,
            private_bytes: 8 << 20,
            shared_bytes: 8 << 20,
            locks: 16,
            critical_section_len: 6,
            lock_weight: 0.03,
            shared_read_weight: 1.5,
            private_weight: 2.5,
            compute_weight: 3.0,
            trap_weight: 0.003,
            membar_weight: 0.10,
            chase_weight: 0.0,
            store_fraction: 0.20,
            private_stride: 8 * 40503,
            private_step: 32,
            jump_fraction: 0.004, // indirect row accesses
            shared_stride: 8 * 17,
            lock_sharing: 0.02,
            sharing: SharingModel {
                hot_lines: 16,
                writers: 2,
                hot_weight: 0.5,
                hot_write_fraction: 0.0,
                migratory_weight: 0.0,
                producer_consumer_weight: 0.04,
                lock_contention: 0.04,
                contended_locks: 16,
                burst_len: 1,
                write_period: 128,
                contention_period: 256,
            },
            itlb_miss_per_million: 60,
            segments: 96,
            seed: 0x59A5,
        },
    ];
    specs.into_iter().map(Workload::from_spec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reunion_isa::{FunctionalCore, SparseMemory};

    #[test]
    fn suite_has_eleven_named_workloads() {
        let all = suite();
        assert_eq!(all.len(), 11);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 11, "names must be unique");
    }

    #[test]
    fn class_composition_matches_table2() {
        let all = suite();
        let count = |c: WorkloadClass| all.iter().filter(|w| w.class() == c).count();
        assert_eq!(count(WorkloadClass::Web), 2);
        assert_eq!(count(WorkloadClass::Oltp), 2);
        assert_eq!(count(WorkloadClass::Dss), 3);
        assert_eq!(count(WorkloadClass::Scientific), 4);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(Workload::by_name("APACHE").is_some());
        assert!(Workload::by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_runs_functionally() {
        for w in suite() {
            let prog = w.program(0);
            let mut mem = SparseMemory::new();
            for &(addr, value) in w.initial_memory().iter() {
                mem.poke(addr, value);
            }
            let mut core = FunctionalCore::new();
            let steps = core.run(&prog, &mut mem, 20_000);
            assert_eq!(steps, 20_000, "{} must loop forever", w.name());
        }
    }

    #[test]
    fn commercial_workloads_serialize_more_than_scientific() {
        let all = suite();
        let density = |w: &Workload| {
            let p = w.program(0);
            p.count_matching(|op| op.is_serializing()) as f64 / p.len() as f64
        };
        let oltp_avg: f64 = all
            .iter()
            .filter(|w| w.class() == WorkloadClass::Oltp)
            .map(density)
            .sum::<f64>()
            / 2.0;
        let sci_avg: f64 = all
            .iter()
            .filter(|w| w.class() == WorkloadClass::Scientific)
            .map(density)
            .sum::<f64>()
            / 4.0;
        assert!(
            oltp_avg > 2.0 * sci_avg,
            "OLTP serializing density {oltp_avg:.4} vs scientific {sci_avg:.4}"
        );
    }

    #[test]
    fn em3d_has_largest_shared_footprint() {
        let em3d = Workload::by_name("em3d").unwrap();
        assert!(em3d.spec().shared_bytes > 16 << 20, "must exceed the L2");
        assert!(!em3d.initial_memory().is_empty());
    }

    #[test]
    fn all_programs_are_deterministic() {
        for w in suite() {
            assert_eq!(w.program(1), w.program(1), "{}", w.name());
        }
    }

    #[test]
    fn cache_serves_identical_artifacts_to_fresh_generation() {
        let cached = Workload::by_name("sparse").unwrap();
        let fresh = Workload::uncached(cached.spec().clone());
        assert_eq!(cached.cache_population(), (0, false));
        for thread in 0..3 {
            assert_eq!(cached.program(thread), fresh.program(thread));
        }
        assert_eq!(
            cached.initial_memory().as_ref(),
            fresh.initial_memory().as_ref()
        );
        assert_eq!(cached.cache_population(), (3, true));
        assert_eq!(fresh.cache_population(), (0, false));
    }

    #[test]
    fn clones_share_one_cache() {
        let a = Workload::by_name("moldyn").unwrap();
        let b = a.clone();
        let _ = a.program(0);
        let _ = b.initial_memory();
        // Work done through either clone is visible through the other.
        assert_eq!(a.cache_population(), (1, true));
        assert_eq!(b.cache_population(), (1, true));
    }
}

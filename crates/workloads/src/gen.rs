//! The synthetic program generator.
//!
//! Generated programs are SPMD: every thread of a workload runs the *same*
//! loop structure (seeded by the workload, not the thread), with per-thread
//! private base addresses and cursor offsets set up in an init block. Both
//! cores of a logical processor pair run the identical program, so any
//! divergence between them comes from data values alone — exactly the
//! paper's setting.
//!
//! ## Register conventions
//!
//! | register | role |
//! |---|---|
//! | r1 | private-region base (per thread) |
//! | r2 | shared-region base |
//! | r3 | lock-region base |
//! | r4 | private cursor |
//! | r5 | shared cursor |
//! | r6 | data scratch |
//! | r7 | current lock address |
//! | r8 | constant 1 (lock token) |
//! | r9 | atomic result |
//! | r10–r19 | compute chain |
//! | r20 | pointer-chase cursor (holds an absolute address) |
//! | r21 | segment counter |
//! | r22 | address/branch scratch |
//! | r23 | constant 0 (lock release token) |
//! | r24 | thread-affine lock bank base |
//! | r26 | unprotected shared-read cursor |
//! | r27 | thread-affine shared-data slice base |
//! | r28 | common shared-data slice base (globally locked sections) |
//! | r25 | hot shared region base |
//! | r29 | hot-region cursor |
//! | r30 | writer flag (1 iff this thread is within the writer bound) |
//! | r31 | own producer-consumer flag address |
//! | r0  | neighbor producer-consumer flag address |

use reunion_isa::{Addr, AluOp, AtomicOp, BranchCond, Instruction as I, Program, RegId};
use reunion_kernel::SimRng;

use crate::{ProgramBuilder, SharingModel, WorkloadSpec};

/// Base of the lock region (cache-line-separated spin locks).
pub const LOCK_BASE: u64 = 0x0100_0000;
/// Base of the hot truly-shared region (one word per cache line).
pub const HOT_BASE: u64 = 0x0200_0000;
/// Base of the producer-consumer flag lines (one per thread slot).
pub const FLAG_BASE: u64 = 0x0300_0000;
/// Number of producer-consumer flag slots (threads wrap modulo this).
pub const FLAG_SLOTS: u64 = 4;
/// Base of the shared data region.
pub const SHARED_BASE: u64 = 0x1000_0000;
/// Base of thread 0's private region; threads are spaced widely apart.
pub const PRIVATE_BASE: u64 = 0x4000_0000;
/// Address distance between consecutive threads' private regions.
pub const PRIVATE_SPACING: u64 = 0x0800_0000;

fn r(i: u8) -> RegId {
    RegId::new(i)
}

/// Generates the program image for `thread` of the given workload.
///
/// # Panics
///
/// Panics if the spec fails [`WorkloadSpec::assert_valid`].
pub fn generate_program(spec: &WorkloadSpec, thread: usize) -> Program {
    spec.assert_valid();
    let mut rng = SimRng::seed_from(spec.seed);
    let mut b = ProgramBuilder::new(format!("{}.t{}", spec.name, thread));

    let priv_base = PRIVATE_BASE + thread as u64 * PRIVATE_SPACING;
    let priv_mask = (spec.private_bytes - 1) as i64;
    let shared_mask = (spec.shared_bytes - 1) as i64;
    let lock_mask = (spec.locks * 64 - 1) as i64;

    // ---- init block -------------------------------------------------
    b.push(I::load_imm(r(1), priv_base as i64));
    b.push(I::load_imm(r(2), SHARED_BASE as i64));
    b.push(I::load_imm(r(3), LOCK_BASE as i64));
    b.push(I::load_imm(r(8), 1));
    b.push(I::load_imm(r(23), 0));
    // Cursor starting offsets are spread per thread so threads do not march
    // through shared data in lockstep.
    b.push(I::load_imm(r(4), (thread as i64 * 0x2218) & priv_mask & !7));
    b.push(I::load_imm(
        r(5),
        (thread as i64 * 0xA6E8) & shared_mask & !7,
    ));
    // Pointer-chase cursor starts at a thread-dependent ring position.
    let chase_start = SHARED_BASE + (((thread as u64 * 100_003) * 64) & (spec.shared_bytes - 1));
    b.push(I::load_imm(r(20), chase_start as i64));
    b.push(I::load_imm(r(21), thread as i64));
    // Thread-affine lock bank. The globally shared bank is 16x larger than
    // a thread bank (real systems have many more latches than any one CPU
    // touches, so cross-CPU lock reuse is rare).
    let bank_bytes = spec.locks * 64;
    b.push(I::load_imm(
        r(24),
        (LOCK_BASE + (16 + thread as u64) * bank_bytes) as i64,
    ));
    b.push(I::load_imm(
        r(26),
        (thread as i64 * 0x1A48) & shared_mask & !7,
    ));
    // Thread-affine critical sections update a per-thread slice of the
    // shared region (a latch protects specific pages); only critical
    // sections under the globally shared lock bank touch common data.
    let slice_bytes = (spec.shared_bytes / 32).max(8192);
    b.push(I::load_imm(
        r(27),
        (SHARED_BASE + thread as u64 * slice_bytes) as i64,
    ));
    // The common slice updated by globally locked critical sections.
    b.push(I::load_imm(r(28), (SHARED_BASE + 31 * slice_bytes) as i64));
    // Sharing model: hot region base/cursor, writer bound flag, and the
    // producer-consumer flag addresses. Threads wrap modulo FLAG_SLOTS so
    // the emitted code is identical across threads (only init constants
    // differ).
    let sharing = &spec.sharing;
    let hot_mask = (sharing.hot_lines * 64 - 1) as i64;
    b.push(I::load_imm(r(25), HOT_BASE as i64));
    b.push(I::load_imm(r(29), (thread as i64 * 0x940) & hot_mask & !63));
    b.push(I::load_imm(
        r(30),
        i64::from((thread as u32) < sharing.writers),
    ));
    let slot = thread as u64 % FLAG_SLOTS;
    b.push(I::load_imm(r(31), (FLAG_BASE + slot * 64) as i64));
    b.push(I::load_imm(
        r(0),
        (FLAG_BASE + ((slot + 1) % FLAG_SLOTS) * 64) as i64,
    ));
    for i in 10..20 {
        b.push(I::load_imm(r(i), (i as i64) * 0x1_2345 + 7));
    }

    let loop_start = b.here();

    // ---- loop body: sampled segments --------------------------------
    let weights = [
        spec.compute_weight,
        spec.private_weight,
        spec.shared_read_weight,
        spec.lock_weight,
        spec.trap_weight,
        spec.membar_weight,
        spec.chase_weight,
        sharing.hot_weight,
        sharing.migratory_weight,
        sharing.producer_consumer_weight,
    ];
    for segment in 0..spec.segments {
        match rng.weighted_index(&weights) {
            0 => emit_compute(&mut b, &mut rng),
            1 => emit_private_access(&mut b, &mut rng, spec, priv_mask),
            2 => emit_shared_read(&mut b, spec, shared_mask),
            3 => {
                let slice_mask = ((spec.shared_bytes / 32).max(8192) - 1) as i64;
                if rng.chance(sharing.lock_contention) {
                    // A contention burst: consecutive critical sections on a
                    // small contended subset of the globally shared bank,
                    // updating the dedicated common slice (r28). Runtime
                    // collisions between threads are the point; the rarity
                    // gate keeps bursts episodic rather than per-iteration.
                    let contended_mask = sharing.contended_locks as i64 * 64 - 1;
                    let rare = emit_rarity_gate(&mut b, &mut rng, sharing.contention_period);
                    for _ in 0..sharing.burst_len {
                        emit_critical_section(
                            &mut b,
                            &mut rng,
                            spec,
                            slice_mask,
                            contended_mask,
                            r(3),
                            r(28),
                        );
                    }
                    b.patch_to_here(rare);
                } else {
                    emit_critical_section(
                        &mut b,
                        &mut rng,
                        spec,
                        slice_mask,
                        lock_mask,
                        r(24),
                        r(27),
                    );
                }
            }
            4 => {
                b.push(I::trap());
            }
            5 => {
                b.push(I::membar());
            }
            6 => emit_chase_step(&mut b),
            7 => emit_hot_access(&mut b, &mut rng, sharing, hot_mask),
            8 => emit_migratory(&mut b, &mut rng, sharing, hot_mask),
            _ => emit_producer_consumer(&mut b, &mut rng, sharing),
        }
        // Periodic lightly-biased conditional branch for predictor work.
        if segment % 3 == 2 {
            b.push(I::add_imm(r(21), r(21), 1));
            b.push(I::alu_imm(AluOp::And, r(22), r(21), 7));
            let skip = b.branch_forward(BranchCond::Eqz, r(22));
            b.push(I::alu_imm(AluOp::Xor, r(10), r(10), 0x5A));
            b.patch_to_here(skip);
        }
    }

    b.jump_to(loop_start);
    b.build().expect("generated programs always validate")
}

/// A short dependent/independent mix of ALU operations.
fn emit_compute(b: &mut ProgramBuilder, rng: &mut SimRng) {
    let len = rng.range(3, 9) as usize;
    for _ in 0..len {
        let dst = r(10 + rng.below(10) as u8);
        let a = r(10 + rng.below(10) as u8);
        match rng.below(4) {
            0 => b.push(I::alu(AluOp::Add, dst, a, r(10 + rng.below(10) as u8))),
            1 => b.push(I::alu_imm(AluOp::Xor, dst, a, rng.below(0xFFFF) as i64)),
            2 => b.push(I::alu_imm(AluOp::Mul, dst, a, (rng.below(13) + 3) as i64)),
            _ => b.push(I::alu_imm(AluOp::Add, dst, a, rng.below(0xFF) as i64)),
        };
    }
}

/// Advance the private cursor and load or store through it.
fn emit_private_access(b: &mut ProgramBuilder, rng: &mut SimRng, spec: &WorkloadSpec, mask: i64) {
    let ops = rng.range(1, 4);
    for _ in 0..ops {
        let advance = if rng.chance(spec.jump_fraction) {
            spec.private_stride
        } else {
            spec.private_step
        };
        b.push(I::add_imm(r(4), r(4), advance as i64));
        b.push(I::alu_imm(AluOp::And, r(4), r(4), mask));
        b.push(I::alu(AluOp::Add, r(22), r(1), r(4)));
        if rng.chance(spec.store_fraction) {
            b.push(I::add_imm(r(6), r(6), 1));
            b.push(I::store(r(22), r(6), 0));
        } else {
            b.push(I::load(r(6), r(22), 0));
        }
    }
}

/// Unprotected shared reads (scans, lookups) — the racy-read side of input
/// incoherence.
fn emit_shared_read(b: &mut ProgramBuilder, spec: &WorkloadSpec, mask: i64) {
    b.push(I::add_imm(r(26), r(26), spec.shared_stride as i64));
    b.push(I::alu_imm(AluOp::And, r(26), r(26), mask));
    b.push(I::alu(AluOp::Add, r(22), r(2), r(26)));
    b.push(I::load(r(6), r(22), 0));
    // Consume the loaded value so divergence propagates into computation.
    b.push(I::alu(AluOp::Xor, r(10), r(10), r(6)));
}

/// A spin-lock critical section updating shared data: the paper's canonical
/// source of both coherence traffic and input incoherence.
fn emit_critical_section(
    b: &mut ProgramBuilder,
    rng: &mut SimRng,
    spec: &WorkloadSpec,
    shared_mask: i64,
    lock_mask: i64,
    bank: RegId,
    data_base: RegId,
) {
    // Pick a lock within the bank as a function of the evolving segment
    // counter.
    b.push(I::alu_imm(AluOp::Shl, r(22), r(21), 6));
    b.push(I::alu_imm(AluOp::And, r(22), r(22), lock_mask));
    b.push(I::alu(AluOp::Add, r(7), bank, r(22)));
    // spin: r9 = swap([r7], 1); bnez r9 -> spin
    let spin = b.here();
    b.push(I::atomic(AtomicOp::Swap, r(9), r(7), r(8), 0));
    b.branch_to(BranchCond::Nez, r(9), spin);
    // Critical section: read-modify-write shared words.
    let body = spec.critical_section_len.max(2);
    for i in 0..body {
        if i % 3 == 0 {
            b.push(I::add_imm(r(5), r(5), spec.shared_stride as i64));
            b.push(I::alu_imm(AluOp::And, r(5), r(5), shared_mask));
            b.push(I::alu(AluOp::Add, r(22), data_base, r(5)));
        }
        if rng.chance(0.5) {
            b.push(I::load(r(6), r(22), 0));
        } else {
            b.push(I::add_imm(r(6), r(6), 3));
            b.push(I::store(r(22), r(6), 0));
        }
    }
    // Release: membar (TSO store-release discipline), then clear the lock.
    b.push(I::membar());
    b.push(I::store(r(7), r(23), 0));
}

/// One dependent-load step of a pointer chase (em3d-style).
fn emit_chase_step(b: &mut ProgramBuilder) {
    b.push(I::load(r(20), r(20), 0));
}

/// Emits a dynamic rarity gate: execution falls through into the gated
/// body roughly once per `period` loop iterations even though the body is
/// a static part of the loop. Returns the branch to patch past the body.
///
/// The segment counter (r21) advances by a fixed stride per iteration, so
/// its raw low bits cycle through only one residue class at any given
/// segment; folding the high bits in with an XOR makes the gated value
/// walk all residues and the random phase picks which iteration fires.
fn emit_rarity_gate(b: &mut ProgramBuilder, rng: &mut SimRng, period: u64) -> usize {
    let phase = rng.below(period) as i64;
    b.push(I::alu_imm(AluOp::Shr, r(22), r(21), 5));
    b.push(I::alu(AluOp::Xor, r(22), r(22), r(21)));
    b.push(I::alu_imm(AluOp::And, r(22), r(22), period as i64 - 1));
    b.push(I::alu_imm(AluOp::Xor, r(22), r(22), phase));
    b.branch_forward(BranchCond::Nez, r(22))
}

/// A hot-region access: read the next hot line; rarely (rarity-gated, and
/// only on threads inside the writer bound, r30) store an updated value
/// back.
///
/// Remote stores to these truly shared lines leave mute caches holding
/// stale snapshots — the paper's canonical input-incoherence source for
/// unprotected reads.
fn emit_hot_access(
    b: &mut ProgramBuilder,
    rng: &mut SimRng,
    sharing: &SharingModel,
    hot_mask: i64,
) {
    b.push(I::add_imm(r(29), r(29), 64));
    b.push(I::alu_imm(AluOp::And, r(29), r(29), hot_mask));
    b.push(I::alu(AluOp::Add, r(22), r(25), r(29)));
    b.push(I::load(r(6), r(22), 0));
    // Consume the value so divergence propagates into computation.
    b.push(I::alu(AluOp::Xor, r(10), r(10), r(6)));
    if rng.chance(sharing.hot_write_fraction) {
        let rare = emit_rarity_gate(b, rng, sharing.write_period);
        let skip = b.branch_forward(BranchCond::Eqz, r(30));
        b.push(I::alu(AluOp::Add, r(22), r(25), r(29)));
        b.push(I::add_imm(r(6), r(6), 1));
        b.push(I::store(r(22), r(6), 0));
        b.patch_to_here(rare);
        b.patch_to_here(skip);
    }
}

/// A migratory read-modify-write: the line index follows the evolving
/// segment counter, so line ownership migrates between threads as their
/// counters coincide. Stores are rarity-gated and bounded by the writer
/// flag (r30).
fn emit_migratory(b: &mut ProgramBuilder, rng: &mut SimRng, sharing: &SharingModel, hot_mask: i64) {
    b.push(I::alu_imm(AluOp::Shl, r(22), r(21), 6));
    b.push(I::alu_imm(AluOp::And, r(22), r(22), hot_mask));
    b.push(I::alu(AluOp::Add, r(22), r(25), r(22)));
    b.push(I::load(r(6), r(22), 0));
    let rare = emit_rarity_gate(b, rng, sharing.write_period);
    let skip = b.branch_forward(BranchCond::Eqz, r(30));
    b.push(I::alu_imm(AluOp::Shl, r(22), r(21), 6));
    b.push(I::alu_imm(AluOp::And, r(22), r(22), hot_mask));
    b.push(I::alu(AluOp::Add, r(22), r(25), r(22)));
    b.push(I::add_imm(r(6), r(6), 3));
    b.push(I::store(r(22), r(6), 0));
    b.patch_to_here(rare);
    b.patch_to_here(skip);
}

/// A producer-consumer hand-off: rarely publish this thread's flag line,
/// always poll the neighbor's. Each flag line has a single producer by
/// construction, so the writer bound holds trivially.
fn emit_producer_consumer(b: &mut ProgramBuilder, rng: &mut SimRng, sharing: &SharingModel) {
    let rare = emit_rarity_gate(b, rng, sharing.write_period);
    b.push(I::add_imm(r(6), r(6), 1));
    b.push(I::store(r(31), r(6), 0));
    b.patch_to_here(rare);
    b.push(I::load(r(6), r(0), 0));
    b.push(I::alu(AluOp::Xor, r(10), r(10), r(6)));
}

/// Initial memory contents required by the workload: the pointer-chase ring
/// through the shared region (one pointer per cache line).
///
/// The ring visits every line of the shared region in a strided order, so a
/// chase's working set is the full region — em3d's defining property.
pub fn initial_memory(spec: &WorkloadSpec) -> Vec<(Addr, u64)> {
    // Locks must start released: unwritten words read as a nonzero hash,
    // which would leave every spin lock permanently "held". Bank 0 is the
    // globally shared bank; banks 1..=32 are thread-affine.
    let mut init: Vec<(Addr, u64)> = (0..spec.locks * (16 + 32))
        .map(|i| (Addr::new(LOCK_BASE + i * 64), 0))
        .collect();
    // Hot shared lines and producer-consumer flags start at zero so reads
    // observe defined data rather than the uninitialized-word hash.
    init.extend((0..spec.sharing.hot_lines).map(|i| (Addr::new(HOT_BASE + i * 64), 0)));
    init.extend((0..FLAG_SLOTS).map(|i| (Addr::new(FLAG_BASE + i * 64), 0)));
    if spec.chase_weight > 0.0 {
        let lines = spec.shared_bytes / 64;
        // A sequential ring over every line of the region: the working set
        // is the full region (em3d's defining property) with realistic page
        // locality (one DTLB miss per 128 chased lines).
        let pos = |i: u64| SHARED_BASE + (i % lines) * 64;
        init.extend((0..lines).map(|i| (Addr::new(pos(i)), pos(i + 1))));
    }
    init
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadClass;
    use reunion_isa::{FunctionalCore, Opcode, SparseMemory};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "gen-test",
            class: WorkloadClass::Oltp,
            private_bytes: 1 << 20,
            shared_bytes: 1 << 20,
            locks: 16,
            critical_section_len: 6,
            lock_weight: 1.0,
            shared_read_weight: 1.0,
            private_weight: 3.0,
            compute_weight: 4.0,
            trap_weight: 0.2,
            membar_weight: 0.2,
            chase_weight: 0.0,
            store_fraction: 0.3,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.05,
            shared_stride: 8 * 10501,
            lock_sharing: 0.1,
            sharing: SharingModel::derived(0.1, 1.0),
            itlb_miss_per_million: 1000,
            segments: 48,
            seed: 99,
        }
    }

    #[test]
    fn generated_program_validates_and_loops() {
        let prog = generate_program(&spec(), 0);
        assert!(prog.len() > 100);
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        let steps = core.run(&prog, &mut mem, 50_000);
        assert_eq!(steps, 50_000, "program must loop forever");
    }

    #[test]
    fn threads_share_code_structure_but_differ_in_bases() {
        let p0 = generate_program(&spec(), 0);
        let p1 = generate_program(&spec(), 1);
        assert_eq!(p0.len(), p1.len());
        // The loop bodies (after init) are identical.
        let diff = p0
            .iter()
            .zip(p1.iter())
            .filter(|((_, a), (_, b))| a != b)
            .count();
        assert!(diff > 0, "private bases must differ");
        assert!(
            diff < 16,
            "only init-block constants may differ, got {diff}"
        );
    }

    #[test]
    fn cursor_addresses_stay_in_region() {
        let s = spec();
        let prog = generate_program(&s, 2);
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        for _ in 0..100_000 {
            let effect = core.step(&prog, &mut mem);
            if effect.is_none() {
                break;
            }
        }
        // Private cursor bounded by the mask.
        let cursor = core.state.regs.read(r(4));
        assert!(cursor < s.private_bytes);
        let shared_cursor = core.state.regs.read(r(5));
        assert!(shared_cursor < s.shared_bytes);
    }

    #[test]
    fn serializing_mix_present() {
        let prog = generate_program(&spec(), 0);
        let serializing = prog.count_matching(|op| op.is_serializing());
        let total = prog.len();
        assert!(serializing > 0);
        // Lock-heavy OLTP spec: a visible but minority fraction.
        assert!(serializing * 4 < total, "{serializing}/{total}");
    }

    #[test]
    fn lock_protocol_is_balanced() {
        // Every atomic swap (acquire) has a matching release store to r7.
        let prog = generate_program(&spec(), 0);
        let acquires = prog.count_matching(|op| matches!(op, Opcode::Atomic(_)));
        let releases = prog
            .iter()
            .filter(|(_, i)| i.op == Opcode::Store && i.src1 == Some(r(7)))
            .count();
        assert_eq!(acquires, releases);
        assert!(acquires > 0);
    }

    #[test]
    fn chase_ring_is_closed_and_in_region() {
        let mut s = spec();
        s.chase_weight = 2.0;
        s.shared_bytes = 1 << 16; // 1024 lines for a fast test
        let init = initial_memory(&s);
        let static_init = (s.locks * 48 + s.sharing.hot_lines + FLAG_SLOTS) as usize;
        assert_eq!(init.len(), (s.shared_bytes / 64) as usize + static_init);
        // Follow the ring; it must return to the start after exactly
        // `lines` hops, visiting every line once.
        let map: std::collections::HashMap<u64, u64> = init
            .iter()
            .filter(|(a, _)| a.as_u64() >= SHARED_BASE)
            .map(|(a, v)| (a.as_u64(), *v))
            .collect();
        let start = SHARED_BASE;
        let mut at = start;
        let mut seen = std::collections::HashSet::new();
        loop {
            assert!(seen.insert(at), "ring revisits {at:#x}");
            assert!(at >= SHARED_BASE && at < SHARED_BASE + s.shared_bytes);
            at = map[&at];
            if at == start {
                break;
            }
        }
        assert_eq!(seen.len(), (s.shared_bytes / 64) as usize);
    }

    #[test]
    fn no_chase_still_initializes_locks_and_hot_lines() {
        let s = spec();
        let init = initial_memory(&s);
        assert_eq!(
            init.len() as u64,
            s.locks * 48 + s.sharing.hot_lines + FLAG_SLOTS
        );
        assert!(init.iter().all(|(a, v)| *v == 0 && a.as_u64() >= LOCK_BASE));
    }

    #[test]
    fn same_spec_same_program() {
        let a = generate_program(&spec(), 3);
        let b = generate_program(&spec(), 3);
        assert_eq!(a, b);
    }
}

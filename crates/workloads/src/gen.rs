//! The synthetic program generator.
//!
//! Generated programs are SPMD: every thread of a workload runs the *same*
//! loop structure (seeded by the workload, not the thread), with per-thread
//! private base addresses and cursor offsets set up in an init block. Both
//! cores of a logical processor pair run the identical program, so any
//! divergence between them comes from data values alone — exactly the
//! paper's setting.
//!
//! ## Register conventions
//!
//! | register | role |
//! |---|---|
//! | r1 | private-region base (per thread) |
//! | r2 | shared-region base |
//! | r3 | lock-region base |
//! | r4 | private cursor |
//! | r5 | shared cursor |
//! | r6 | data scratch |
//! | r7 | current lock address |
//! | r8 | constant 1 (lock token) |
//! | r9 | atomic result |
//! | r10–r19 | compute chain |
//! | r20 | pointer-chase cursor (holds an absolute address) |
//! | r21 | segment counter |
//! | r22 | address/branch scratch |
//! | r23 | constant 0 (lock release token) |
//! | r24 | thread-affine lock bank base |
//! | r26 | unprotected shared-read cursor |
//! | r27 | thread-affine shared-data slice base |
//! | r28 | common shared-data slice base (globally locked sections) |

use reunion_isa::{Addr, AluOp, AtomicOp, BranchCond, Instruction as I, Program, RegId};
use reunion_kernel::SimRng;

use crate::{ProgramBuilder, WorkloadSpec};

/// Base of the lock region (cache-line-separated spin locks).
pub const LOCK_BASE: u64 = 0x0100_0000;
/// Base of the shared data region.
pub const SHARED_BASE: u64 = 0x1000_0000;
/// Base of thread 0's private region; threads are spaced widely apart.
pub const PRIVATE_BASE: u64 = 0x4000_0000;
/// Address distance between consecutive threads' private regions.
pub const PRIVATE_SPACING: u64 = 0x0800_0000;

fn r(i: u8) -> RegId {
    RegId::new(i)
}

/// Generates the program image for `thread` of the given workload.
///
/// # Panics
///
/// Panics if the spec fails [`WorkloadSpec::assert_valid`].
pub fn generate_program(spec: &WorkloadSpec, thread: usize) -> Program {
    spec.assert_valid();
    let mut rng = SimRng::seed_from(spec.seed);
    let mut b = ProgramBuilder::new(format!("{}.t{}", spec.name, thread));

    let priv_base = PRIVATE_BASE + thread as u64 * PRIVATE_SPACING;
    let priv_mask = (spec.private_bytes - 1) as i64;
    let shared_mask = (spec.shared_bytes - 1) as i64;
    let lock_mask = (spec.locks * 64 - 1) as i64;

    // ---- init block -------------------------------------------------
    b.push(I::load_imm(r(1), priv_base as i64));
    b.push(I::load_imm(r(2), SHARED_BASE as i64));
    b.push(I::load_imm(r(3), LOCK_BASE as i64));
    b.push(I::load_imm(r(8), 1));
    b.push(I::load_imm(r(23), 0));
    // Cursor starting offsets are spread per thread so threads do not march
    // through shared data in lockstep.
    b.push(I::load_imm(r(4), (thread as i64 * 0x2218) & priv_mask & !7));
    b.push(I::load_imm(r(5), (thread as i64 * 0xA6E8) & shared_mask & !7));
    // Pointer-chase cursor starts at a thread-dependent ring position.
    let chase_start = SHARED_BASE + (((thread as u64 * 100_003) * 64) & (spec.shared_bytes - 1));
    b.push(I::load_imm(r(20), chase_start as i64));
    b.push(I::load_imm(r(21), thread as i64));
    // Thread-affine lock bank. The globally shared bank is 16x larger than
    // a thread bank (real systems have many more latches than any one CPU
    // touches, so cross-CPU lock reuse is rare).
    let bank_bytes = spec.locks * 64;
    b.push(I::load_imm(r(24), (LOCK_BASE + (16 + thread as u64) * bank_bytes) as i64));
    b.push(I::load_imm(r(26), (thread as i64 * 0x1A48) & shared_mask & !7));
    // Thread-affine critical sections update a per-thread slice of the
    // shared region (a latch protects specific pages); only critical
    // sections under the globally shared lock bank touch common data.
    let slice_bytes = (spec.shared_bytes / 32).max(8192);
    b.push(I::load_imm(
        r(27),
        (SHARED_BASE + thread as u64 * slice_bytes) as i64,
    ));
    // The common slice updated by globally locked critical sections.
    b.push(I::load_imm(
        r(28),
        (SHARED_BASE + 31 * slice_bytes) as i64,
    ));
    for i in 10..20 {
        b.push(I::load_imm(r(i), (i as i64) * 0x1_2345 + 7));
    }

    let loop_start = b.here();

    // ---- loop body: sampled segments --------------------------------
    let weights = [
        spec.compute_weight,
        spec.private_weight,
        spec.shared_read_weight,
        spec.lock_weight,
        spec.trap_weight,
        spec.membar_weight,
        spec.chase_weight,
    ];
    for segment in 0..spec.segments {
        match rng.weighted_index(&weights) {
            0 => emit_compute(&mut b, &mut rng),
            1 => emit_private_access(&mut b, &mut rng, spec, priv_mask),
            2 => emit_shared_read(&mut b, spec, shared_mask),
            3 => {
                let slice_mask = ((spec.shared_bytes / 32).max(8192) - 1) as i64;
                let (bank, mask, data_base, data_mask) = if rng.chance(spec.lock_sharing) {
                    // Globally locked sections update the dedicated common
                    // slice (r28), not the thread slices.
                    (r(3), spec.locks as i64 * 16 * 64 - 1, r(28), slice_mask)
                } else {
                    (r(24), lock_mask, r(27), slice_mask)
                };
                emit_critical_section(&mut b, &mut rng, spec, data_mask, mask, bank, data_base);
            }
            4 => {
                b.push(I::trap());
            }
            5 => {
                b.push(I::membar());
            }
            _ => emit_chase_step(&mut b),
        }
        // Periodic lightly-biased conditional branch for predictor work.
        if segment % 3 == 2 {
            b.push(I::add_imm(r(21), r(21), 1));
            b.push(I::alu_imm(AluOp::And, r(22), r(21), 7));
            let skip = b.branch_forward(BranchCond::Eqz, r(22));
            b.push(I::alu_imm(AluOp::Xor, r(10), r(10), 0x5A));
            b.patch_to_here(skip);
        }
    }

    b.jump_to(loop_start);
    b.build().expect("generated programs always validate")
}

/// A short dependent/independent mix of ALU operations.
fn emit_compute(b: &mut ProgramBuilder, rng: &mut SimRng) {
    let len = rng.range(3, 9) as usize;
    for _ in 0..len {
        let dst = r(10 + rng.below(10) as u8);
        let a = r(10 + rng.below(10) as u8);
        match rng.below(4) {
            0 => b.push(I::alu(AluOp::Add, dst, a, r(10 + rng.below(10) as u8))),
            1 => b.push(I::alu_imm(AluOp::Xor, dst, a, rng.below(0xFFFF) as i64)),
            2 => b.push(I::alu_imm(AluOp::Mul, dst, a, (rng.below(13) + 3) as i64)),
            _ => b.push(I::alu_imm(AluOp::Add, dst, a, rng.below(0xFF) as i64)),
        };
    }
}

/// Advance the private cursor and load or store through it.
fn emit_private_access(
    b: &mut ProgramBuilder,
    rng: &mut SimRng,
    spec: &WorkloadSpec,
    mask: i64,
) {
    let ops = rng.range(1, 4);
    for _ in 0..ops {
        let advance = if rng.chance(spec.jump_fraction) {
            spec.private_stride
        } else {
            spec.private_step
        };
        b.push(I::add_imm(r(4), r(4), advance as i64));
        b.push(I::alu_imm(AluOp::And, r(4), r(4), mask));
        b.push(I::alu(AluOp::Add, r(22), r(1), r(4)));
        if rng.chance(spec.store_fraction) {
            b.push(I::add_imm(r(6), r(6), 1));
            b.push(I::store(r(22), r(6), 0));
        } else {
            b.push(I::load(r(6), r(22), 0));
        }
    }
}

/// Unprotected shared reads (scans, lookups) — the racy-read side of input
/// incoherence.
fn emit_shared_read(b: &mut ProgramBuilder, spec: &WorkloadSpec, mask: i64) {
    b.push(I::add_imm(r(26), r(26), spec.shared_stride as i64));
    b.push(I::alu_imm(AluOp::And, r(26), r(26), mask));
    b.push(I::alu(AluOp::Add, r(22), r(2), r(26)));
    b.push(I::load(r(6), r(22), 0));
    // Consume the loaded value so divergence propagates into computation.
    b.push(I::alu(AluOp::Xor, r(10), r(10), r(6)));
}

/// A spin-lock critical section updating shared data: the paper's canonical
/// source of both coherence traffic and input incoherence.
fn emit_critical_section(
    b: &mut ProgramBuilder,
    rng: &mut SimRng,
    spec: &WorkloadSpec,
    shared_mask: i64,
    lock_mask: i64,
    bank: RegId,
    data_base: RegId,
) {
    // Pick a lock within the bank as a function of the evolving segment
    // counter.
    b.push(I::alu_imm(AluOp::Shl, r(22), r(21), 6));
    b.push(I::alu_imm(AluOp::And, r(22), r(22), lock_mask));
    b.push(I::alu(AluOp::Add, r(7), bank, r(22)));
    // spin: r9 = swap([r7], 1); bnez r9 -> spin
    let spin = b.here();
    b.push(I::atomic(AtomicOp::Swap, r(9), r(7), r(8), 0));
    b.branch_to(BranchCond::Nez, r(9), spin);
    // Critical section: read-modify-write shared words.
    let body = spec.critical_section_len.max(2);
    for i in 0..body {
        if i % 3 == 0 {
            b.push(I::add_imm(r(5), r(5), spec.shared_stride as i64));
            b.push(I::alu_imm(AluOp::And, r(5), r(5), shared_mask));
            b.push(I::alu(AluOp::Add, r(22), data_base, r(5)));
        }
        if rng.chance(0.5) {
            b.push(I::load(r(6), r(22), 0));
        } else {
            b.push(I::add_imm(r(6), r(6), 3));
            b.push(I::store(r(22), r(6), 0));
        }
    }
    // Release: membar (TSO store-release discipline), then clear the lock.
    b.push(I::membar());
    b.push(I::store(r(7), r(23), 0));
}

/// One dependent-load step of a pointer chase (em3d-style).
fn emit_chase_step(b: &mut ProgramBuilder) {
    b.push(I::load(r(20), r(20), 0));
}

/// Initial memory contents required by the workload: the pointer-chase ring
/// through the shared region (one pointer per cache line).
///
/// The ring visits every line of the shared region in a strided order, so a
/// chase's working set is the full region — em3d's defining property.
pub fn initial_memory(spec: &WorkloadSpec) -> Vec<(Addr, u64)> {
    // Locks must start released: unwritten words read as a nonzero hash,
    // which would leave every spin lock permanently "held". Bank 0 is the
    // globally shared bank; banks 1..=32 are thread-affine.
    let mut init: Vec<(Addr, u64)> = (0..spec.locks * (16 + 32))
        .map(|i| (Addr::new(LOCK_BASE + i * 64), 0))
        .collect();
    if spec.chase_weight > 0.0 {
        let lines = spec.shared_bytes / 64;
        // A sequential ring over every line of the region: the working set
        // is the full region (em3d's defining property) with realistic page
        // locality (one DTLB miss per 128 chased lines).
        let pos = |i: u64| SHARED_BASE + (i % lines) * 64;
        init.extend((0..lines).map(|i| (Addr::new(pos(i)), pos(i + 1))));
    }
    init
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadClass;
    use reunion_isa::{FunctionalCore, Opcode, SparseMemory};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "gen-test",
            class: WorkloadClass::Oltp,
            private_bytes: 1 << 20,
            shared_bytes: 1 << 20,
            locks: 16,
            critical_section_len: 6,
            lock_weight: 1.0,
            shared_read_weight: 1.0,
            private_weight: 3.0,
            compute_weight: 4.0,
            trap_weight: 0.2,
            membar_weight: 0.2,
            chase_weight: 0.0,
            store_fraction: 0.3,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.05,
            shared_stride: 8 * 10501,
            lock_sharing: 0.1,
            itlb_miss_per_million: 1000,
            segments: 48,
            seed: 99,
        }
    }

    #[test]
    fn generated_program_validates_and_loops() {
        let prog = generate_program(&spec(), 0);
        assert!(prog.len() > 100);
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        let steps = core.run(&prog, &mut mem, 50_000);
        assert_eq!(steps, 50_000, "program must loop forever");
    }

    #[test]
    fn threads_share_code_structure_but_differ_in_bases() {
        let p0 = generate_program(&spec(), 0);
        let p1 = generate_program(&spec(), 1);
        assert_eq!(p0.len(), p1.len());
        // The loop bodies (after init) are identical.
        let diff = p0
            .iter()
            .zip(p1.iter())
            .filter(|((_, a), (_, b))| a != b)
            .count();
        assert!(diff > 0, "private bases must differ");
        assert!(diff < 10, "only init-block constants may differ, got {diff}");
    }

    #[test]
    fn cursor_addresses_stay_in_region() {
        let s = spec();
        let prog = generate_program(&s, 2);
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        for _ in 0..100_000 {
            let effect = core.step(&prog, &mut mem);
            if effect.is_none() {
                break;
            }
        }
        // Private cursor bounded by the mask.
        let cursor = core.state.regs.read(r(4));
        assert!(cursor < s.private_bytes);
        let shared_cursor = core.state.regs.read(r(5));
        assert!(shared_cursor < s.shared_bytes);
    }

    #[test]
    fn serializing_mix_present() {
        let prog = generate_program(&spec(), 0);
        let serializing = prog.count_matching(|op| op.is_serializing());
        let total = prog.len();
        assert!(serializing > 0);
        // Lock-heavy OLTP spec: a visible but minority fraction.
        assert!(serializing * 4 < total, "{serializing}/{total}");
    }

    #[test]
    fn lock_protocol_is_balanced() {
        // Every atomic swap (acquire) has a matching release store to r7.
        let prog = generate_program(&spec(), 0);
        let acquires = prog.count_matching(|op| matches!(op, Opcode::Atomic(_)));
        let releases = prog
            .iter()
            .filter(|(_, i)| i.op == Opcode::Store && i.src1 == Some(r(7)))
            .count();
        assert_eq!(acquires, releases);
        assert!(acquires > 0);
    }

    #[test]
    fn chase_ring_is_closed_and_in_region() {
        let mut s = spec();
        s.chase_weight = 2.0;
        s.shared_bytes = 1 << 16; // 1024 lines for a fast test
        let init = initial_memory(&s);
        assert_eq!(
            init.len(),
            (s.shared_bytes / 64) as usize + (s.locks * 48) as usize
        );
        // Follow the ring; it must return to the start after exactly
        // `lines` hops, visiting every line once.
        let map: std::collections::HashMap<u64, u64> = init
            .iter()
            .filter(|(a, _)| a.as_u64() >= SHARED_BASE)
            .map(|(a, v)| (a.as_u64(), *v))
            .collect();
        let start = SHARED_BASE;
        let mut at = start;
        let mut seen = std::collections::HashSet::new();
        loop {
            assert!(seen.insert(at), "ring revisits {at:#x}");
            assert!(at >= SHARED_BASE && at < SHARED_BASE + s.shared_bytes);
            at = map[&at];
            if at == start {
                break;
            }
        }
        assert_eq!(seen.len(), (s.shared_bytes / 64) as usize);
    }

    #[test]
    fn no_chase_still_initializes_locks() {
        let init = initial_memory(&spec());
        assert_eq!(init.len() as u64, spec().locks * 48);
        assert!(init.iter().all(|(a, v)| *v == 0 && a.as_u64() >= LOCK_BASE));
    }

    #[test]
    fn same_spec_same_program() {
        let a = generate_program(&spec(), 3);
        let b = generate_program(&spec(), 3);
        assert_eq!(a, b);
    }
}

//! Real-code kernel workloads, loaded from the `asm/` images.
//!
//! Where [`suite`](crate::suite()) ships seeded *generators* tuned to
//! reproduce Table 2's behaviours, the kernel suite ships actual programs —
//! hand-written assembly compiled into the binary with `include_str!` and
//! parsed by [`reunion_isa::asm`]. Three are single-threaded algorithmic
//! kernels (quicksort, matmul, crc32); two are multi-threaded with genuine
//! shared-memory races (spin_histogram, flag_ring), so a redundant pair
//! running them exercises the paper's input-incoherence machinery on code
//! nobody synthesized.
//!
//! A kernel's [`WorkloadSpec`] still exists — it carries the name, class
//! and the ITLB surrogate rate, and must pass the same validation as any
//! spec — but its generator parameters are inert: the program text is the
//! sole source of instructions and initial memory.

use crate::{SharingModel, Workload, WorkloadClass, WorkloadSpec};

/// The compiled-in kernel sources, `(name, text)`, in suite order.
pub const KERNEL_SOURCES: [(&str, &str); 5] = [
    ("quicksort", include_str!("../../../asm/quicksort.asm")),
    ("matmul", include_str!("../../../asm/matmul.asm")),
    ("crc32", include_str!("../../../asm/crc32.asm")),
    (
        "spin_histogram",
        include_str!("../../../asm/spin_histogram.asm"),
    ),
    ("flag_ring", include_str!("../../../asm/flag_ring.asm")),
];

/// A spec whose generator knobs are inert: the kernel text supplies the
/// program, so only `name`, `class`, `itlb_miss_per_million` and the
/// validation-relevant structural fields matter.
fn kernel_spec(
    name: &'static str,
    class: WorkloadClass,
    itlb_miss_per_million: u64,
    seed: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        class,
        private_bytes: 64 << 10,
        shared_bytes: 8 << 10,
        locks: 1,
        critical_section_len: 8,
        lock_weight: 0.0,
        shared_read_weight: 0.0,
        private_weight: 1.0,
        compute_weight: 1.0,
        trap_weight: 0.0,
        membar_weight: 0.0,
        chase_weight: 0.0,
        store_fraction: 0.0,
        private_stride: 8,
        private_step: 8,
        jump_fraction: 0.0,
        shared_stride: 8,
        lock_sharing: 0.0,
        sharing: SharingModel::derived(0.0, 0.0),
        itlb_miss_per_million,
        segments: 8,
        seed,
    }
}

/// The five-kernel suite: three single-threaded algorithmic kernels and
/// two racy multi-threaded protocols.
///
/// # Examples
///
/// ```
/// use reunion_workloads::kernel_suite;
///
/// let kernels = kernel_suite();
/// assert_eq!(kernels.len(), 5);
/// let racy: Vec<_> = kernels
///     .iter()
///     .filter(|w| w.kernel_image().unwrap().threads() > 1)
///     .map(|w| w.name())
///     .collect();
/// assert_eq!(racy, ["spin_histogram", "flag_ring"]);
/// ```
pub fn kernel_suite() -> Vec<Workload> {
    let class_of = |name: &str| match name {
        // The racy protocol kernels behave like lock-bound commercial
        // code; the algorithmic kernels like scientific loops.
        "spin_histogram" | "flag_ring" => WorkloadClass::Oltp,
        _ => WorkloadClass::Scientific,
    };
    KERNEL_SOURCES
        .iter()
        .enumerate()
        .map(|(i, &(name, text))| {
            Workload::kernel(
                kernel_spec(name, class_of(name), 50, 0x4B00 + i as u64),
                text,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reunion_isa::{Addr, FunctionalCore, SparseMemory};

    #[test]
    fn kernel_names_match_their_images() {
        for w in kernel_suite() {
            let image = w.kernel_image().expect("kernel workload");
            assert_eq!(w.name(), image.name(), "spec/image name mismatch");
        }
    }

    #[test]
    fn two_kernels_are_multithreaded() {
        let threads: Vec<usize> = kernel_suite()
            .iter()
            .map(|w| w.kernel_image().unwrap().threads())
            .collect();
        assert_eq!(threads, [1, 1, 1, 2, 2]);
    }

    #[test]
    fn every_kernel_thread_runs_forever() {
        for w in kernel_suite() {
            let threads = w.kernel_image().unwrap().threads();
            for t in 0..threads {
                let prog = w.program(t);
                let mut mem = SparseMemory::new();
                for &(addr, value) in w.initial_memory().iter() {
                    mem.poke(addr, value);
                }
                let mut core = FunctionalCore::new();
                let steps = core.run(&prog, &mut mem, 20_000);
                assert_eq!(steps, 20_000, "{} thread {t} must loop forever", w.name());
            }
        }
    }

    #[test]
    fn parked_thread_halts_immediately() {
        let qs = Workload::by_name("quicksort").expect("kernel by_name");
        let parked = qs.program(3);
        assert_eq!(parked.name(), "quicksort.parked");
        let mut mem = SparseMemory::new();
        let mut core = FunctionalCore::new();
        assert!(core.run(&parked, &mut mem, 100) < 100, "must halt");
    }

    #[test]
    fn quicksort_self_check_passes() {
        let qs = Workload::by_name("quicksort").unwrap();
        let prog = qs.program(0);
        let mut mem = SparseMemory::new();
        for &(addr, value) in qs.initial_memory().iter() {
            mem.poke(addr, value);
        }
        let mut core = FunctionalCore::new();
        core.run(&prog, &mut mem, 400_000);
        let passes = mem.peek(Addr::new(0x4000_2000));
        let failures = mem.peek(Addr::new(0x4000_2008));
        assert!(passes > 10, "expected many verified sorts, got {passes}");
        assert_eq!(failures, 0, "sortedness check failed {failures} times");
    }

    #[test]
    fn kernel_cache_matches_fresh_parse() {
        for (cached, &(name, text)) in kernel_suite().iter().zip(KERNEL_SOURCES.iter()) {
            let fresh = Workload::kernel_uncached(cached.spec().clone(), text);
            for thread in 0..3 {
                assert_eq!(cached.program(thread), fresh.program(thread), "{name}");
            }
            assert_eq!(
                cached.initial_memory().as_ref(),
                fresh.initial_memory().as_ref(),
                "{name}"
            );
            assert_eq!(fresh.cache_population(), (0, false));
        }
    }
}

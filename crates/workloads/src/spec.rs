//! Workload parameterization.

use std::fmt;

/// The four workload classes of the evaluation (Table 2 / Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadClass {
    /// SPECweb99-style web serving (Apache, Zeus): trap-heavy request
    /// loops, moderate sharing.
    Web,
    /// TPC-C-style OLTP (DB2, Oracle): lock-intensive transactions,
    /// frequent membars, the largest TLB pressure.
    Oltp,
    /// TPC-H-style decision support (DB2 Q1/Q2/Q17): scan/join loops over
    /// large shared tables, few serializing events.
    Dss,
    /// Parallel scientific kernels (em3d, moldyn, ocean, sparse): high MLP,
    /// ROB-saturating, minimal serialization.
    Scientific,
}

impl WorkloadClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Web,
        WorkloadClass::Oltp,
        WorkloadClass::Dss,
        WorkloadClass::Scientific,
    ];

    /// Whether the paper groups this class as "commercial".
    pub fn is_commercial(self) -> bool {
        !matches!(self, WorkloadClass::Scientific)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadClass::Web => "Web",
            WorkloadClass::Oltp => "OLTP",
            WorkloadClass::Dss => "DSS",
            WorkloadClass::Scientific => "Scientific",
        };
        f.write_str(name)
    }
}

/// Generator parameters for one workload.
///
/// Footprint sizes must be powers of two (address wrapping uses masks).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (Table 2 row).
    pub name: &'static str,
    /// Workload class.
    pub class: WorkloadClass,
    /// Per-thread private data footprint in bytes (power of two).
    pub private_bytes: u64,
    /// Shared data footprint in bytes (power of two).
    pub shared_bytes: u64,
    /// Number of spin locks protecting shared updates.
    pub locks: u64,
    /// Instructions per critical section body.
    pub critical_section_len: usize,
    /// Relative weight of lock-protected shared update segments.
    pub lock_weight: f64,
    /// Relative weight of unprotected shared read segments (scans).
    pub shared_read_weight: f64,
    /// Relative weight of private-data access segments.
    pub private_weight: f64,
    /// Relative weight of pure compute segments.
    pub compute_weight: f64,
    /// Relative weight of trap segments (system activity).
    pub trap_weight: f64,
    /// Relative weight of explicit memory-barrier segments.
    pub membar_weight: f64,
    /// Relative weight of pointer-chase steps (dependent loads).
    pub chase_weight: f64,
    /// Fraction of private/shared data accesses that are stores.
    pub store_fraction: f64,
    /// Private-region long-jump stride in bytes (multiple of 8), used for
    /// the occasional locality-breaking jump.
    pub private_stride: u64,
    /// Private-region sequential step in bytes (multiple of 8): the common
    /// page-local advance between jumps.
    pub private_step: u64,
    /// Fraction of private accesses that take the long jump instead of the
    /// sequential step (controls DTLB and cache locality).
    pub jump_fraction: f64,
    /// Shared-region access stride in bytes (multiple of 8).
    pub shared_stride: u64,
    /// Fraction of critical sections that use a globally shared lock bank
    /// instead of the thread-affine bank (controls lock contention and the
    /// input-incoherence rate).
    pub lock_sharing: f64,
    /// Synthetic ITLB miss rate per million fetched instructions
    /// (instruction-footprint surrogate; Table 3).
    pub itlb_miss_per_million: u64,
    /// Number of static loop-body segments to generate.
    pub segments: usize,
    /// Generator seed (fixed per workload for reproducibility).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Validates the power-of-two footprint requirements.
    ///
    /// # Panics
    ///
    /// Panics if a footprint is not a power of two or is smaller than a
    /// page.
    pub fn assert_valid(&self) {
        assert!(
            self.private_bytes.is_power_of_two() && self.private_bytes >= 8192,
            "{}: private footprint must be a power of two >= 8 KB",
            self.name
        );
        assert!(
            self.shared_bytes.is_power_of_two() && self.shared_bytes >= 8192,
            "{}: shared footprint must be a power of two >= 8 KB",
            self.name
        );
        assert!(self.locks > 0, "{}: need at least one lock", self.name);
        assert!(self.segments >= 8, "{}: too few segments", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            class: WorkloadClass::Oltp,
            private_bytes: 1 << 20,
            shared_bytes: 1 << 20,
            locks: 16,
            critical_section_len: 8,
            lock_weight: 1.0,
            shared_read_weight: 1.0,
            private_weight: 4.0,
            compute_weight: 4.0,
            trap_weight: 0.1,
            membar_weight: 0.1,
            chase_weight: 0.0,
            store_fraction: 0.3,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.03,
            shared_stride: 8 * 10501,
            lock_sharing: 0.05,
            itlb_miss_per_million: 1000,
            segments: 32,
            seed: 42,
        }
    }

    #[test]
    fn classes_partition_commercial() {
        assert!(WorkloadClass::Web.is_commercial());
        assert!(WorkloadClass::Oltp.is_commercial());
        assert!(WorkloadClass::Dss.is_commercial());
        assert!(!WorkloadClass::Scientific.is_commercial());
    }

    #[test]
    fn valid_spec_passes() {
        spec().assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_footprint() {
        let mut s = spec();
        s.private_bytes = 3 << 20;
        s.assert_valid();
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::Scientific.to_string(), "Scientific");
    }
}

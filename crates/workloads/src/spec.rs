//! Workload parameterization.

use std::fmt;

/// The four workload classes of the evaluation (Table 2 / Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadClass {
    /// SPECweb99-style web serving (Apache, Zeus): trap-heavy request
    /// loops, moderate sharing.
    Web,
    /// TPC-C-style OLTP (DB2, Oracle): lock-intensive transactions,
    /// frequent membars, the largest TLB pressure.
    Oltp,
    /// TPC-H-style decision support (DB2 Q1/Q2/Q17): scan/join loops over
    /// large shared tables, few serializing events.
    Dss,
    /// Parallel scientific kernels (em3d, moldyn, ocean, sparse): high MLP,
    /// ROB-saturating, minimal serialization.
    Scientific,
}

impl WorkloadClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Web,
        WorkloadClass::Oltp,
        WorkloadClass::Dss,
        WorkloadClass::Scientific,
    ];

    /// Whether the paper groups this class as "commercial".
    pub fn is_commercial(self) -> bool {
        !matches!(self, WorkloadClass::Scientific)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadClass::Web => "Web",
            WorkloadClass::Oltp => "OLTP",
            WorkloadClass::Dss => "DSS",
            WorkloadClass::Scientific => "Scientific",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for WorkloadClass {
    type Err = String;

    /// Parses the [`Display`](fmt::Display) form — the spelling used by
    /// `BENCH_<id>.json` records and shard manifests.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Web" => Ok(WorkloadClass::Web),
            "OLTP" => Ok(WorkloadClass::Oltp),
            "DSS" => Ok(WorkloadClass::Dss),
            "Scientific" => Ok(WorkloadClass::Scientific),
            other => Err(format!("unknown workload class {other:?}")),
        }
    }
}

/// First-class sharing/contention model of one workload.
///
/// This replaces the old single-scalar knobs (`lock_sharing`,
/// `shared_read_weight`) as the source of cross-thread race behavior: a
/// small *hot* region of truly shared cache lines with a bounded writer
/// set, migratory read-modify-write traffic, producer-consumer flag
/// hand-offs, and bursts of contended critical sections on a small subset
/// of the globally shared lock bank. Together these control how often a
/// mute core's stale private snapshot disagrees with the vocal's coherent
/// read — the input-incoherence rate of Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharingModel {
    /// Number of hot shared cache lines all threads read (power of two).
    pub hot_lines: u64,
    /// Writer-count bound: only threads with index below this value ever
    /// store to the hot region; the rest are pure readers.
    pub writers: u32,
    /// Relative weight of hot-region access segments.
    pub hot_weight: f64,
    /// Fraction of hot-region segments that include a (writer-gated) store.
    pub hot_write_fraction: f64,
    /// Relative weight of migratory read-modify-write segments (line
    /// ownership migrates between threads as their cursors coincide).
    pub migratory_weight: f64,
    /// Relative weight of producer-consumer flag segments (each thread
    /// publishes its own flag line and polls its neighbor's).
    pub producer_consumer_weight: f64,
    /// Fraction of critical sections that contend on the globally shared
    /// lock bank instead of the thread-affine bank.
    pub lock_contention: f64,
    /// Size of the contended subset of the global lock bank (power of two);
    /// smaller values mean real runtime collisions between threads.
    pub contended_locks: u64,
    /// Consecutive contended critical sections emitted per contention
    /// burst.
    pub burst_len: u32,
    /// Dynamic rarity of hot/migratory/producer writes (power of two): a
    /// generated store fires roughly once per this many loop iterations,
    /// so racy writes are rare *at runtime* even though the store is a
    /// static part of the loop body.
    pub write_period: u64,
    /// Dynamic rarity of contended lock bursts (power of two, in loop
    /// iterations), gated the same way.
    pub contention_period: u64,
}

impl SharingModel {
    /// Derives a sharing model from the legacy scalar knobs, preserving
    /// config-patch compatibility: `lock_sharing` becomes the contention
    /// fraction and `shared_read_weight` scales a modest hot-read weight.
    pub fn derived(lock_sharing: f64, shared_read_weight: f64) -> Self {
        SharingModel {
            hot_lines: 8,
            writers: 1,
            hot_weight: shared_read_weight * 0.25,
            hot_write_fraction: 0.02,
            migratory_weight: 0.0,
            producer_consumer_weight: 0.0,
            lock_contention: lock_sharing,
            contended_locks: 8,
            burst_len: 1,
            write_period: 64,
            contention_period: 64,
        }
    }

    /// Validates the model's structural invariants.
    ///
    /// # Panics
    ///
    /// Panics (with `name` in the message) if a bound is violated.
    pub fn assert_valid(&self, name: &str) {
        assert!(
            self.hot_lines.is_power_of_two(),
            "{name}: hot_lines must be a power of two"
        );
        assert!(self.writers >= 1, "{name}: need at least one hot writer");
        assert!(
            self.contended_locks.is_power_of_two(),
            "{name}: contended_locks must be a power of two"
        );
        assert!(self.burst_len >= 1, "{name}: burst_len must be at least 1");
        assert!(
            self.write_period.is_power_of_two(),
            "{name}: write_period must be a power of two"
        );
        assert!(
            self.contention_period.is_power_of_two(),
            "{name}: contention_period must be a power of two"
        );
        for (label, w) in [
            ("hot_weight", self.hot_weight),
            ("hot_write_fraction", self.hot_write_fraction),
            ("migratory_weight", self.migratory_weight),
            ("producer_consumer_weight", self.producer_consumer_weight),
            ("lock_contention", self.lock_contention),
        ] {
            assert!(
                w.is_finite() && w >= 0.0,
                "{name}: {label} must be finite and non-negative"
            );
        }
    }
}

/// Generator parameters for one workload.
///
/// Footprint sizes must be powers of two (address wrapping uses masks).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (Table 2 row).
    pub name: &'static str,
    /// Workload class.
    pub class: WorkloadClass,
    /// Per-thread private data footprint in bytes (power of two).
    pub private_bytes: u64,
    /// Shared data footprint in bytes (power of two).
    pub shared_bytes: u64,
    /// Number of spin locks protecting shared updates.
    pub locks: u64,
    /// Instructions per critical section body.
    pub critical_section_len: usize,
    /// Relative weight of lock-protected shared update segments.
    pub lock_weight: f64,
    /// Relative weight of unprotected shared read segments (scans).
    pub shared_read_weight: f64,
    /// Relative weight of private-data access segments.
    pub private_weight: f64,
    /// Relative weight of pure compute segments.
    pub compute_weight: f64,
    /// Relative weight of trap segments (system activity).
    pub trap_weight: f64,
    /// Relative weight of explicit memory-barrier segments.
    pub membar_weight: f64,
    /// Relative weight of pointer-chase steps (dependent loads).
    pub chase_weight: f64,
    /// Fraction of private/shared data accesses that are stores.
    pub store_fraction: f64,
    /// Private-region long-jump stride in bytes (multiple of 8), used for
    /// the occasional locality-breaking jump.
    pub private_stride: u64,
    /// Private-region sequential step in bytes (multiple of 8): the common
    /// page-local advance between jumps.
    pub private_step: u64,
    /// Fraction of private accesses that take the long jump instead of the
    /// sequential step (controls DTLB and cache locality).
    pub jump_fraction: f64,
    /// Shared-region access stride in bytes (multiple of 8).
    pub shared_stride: u64,
    /// Legacy scalar: fraction of critical sections on the globally shared
    /// lock bank. Superseded by [`SharingModel::lock_contention`]; kept as
    /// the derived default for config-patch compatibility (see
    /// [`WorkloadSpec::sharing`]).
    pub lock_sharing: f64,
    /// The first-class sharing/contention model. Construct with
    /// [`SharingModel::derived`] to reproduce the legacy scalar behavior.
    pub sharing: SharingModel,
    /// Synthetic ITLB miss rate per million fetched instructions
    /// (instruction-footprint surrogate; Table 3).
    pub itlb_miss_per_million: u64,
    /// Number of static loop-body segments to generate.
    pub segments: usize,
    /// Generator seed (fixed per workload for reproducibility).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Validates the power-of-two footprint requirements.
    ///
    /// # Panics
    ///
    /// Panics if a footprint is not a power of two or is smaller than a
    /// page.
    pub fn assert_valid(&self) {
        assert!(
            self.private_bytes.is_power_of_two() && self.private_bytes >= 8192,
            "{}: private footprint must be a power of two >= 8 KB",
            self.name
        );
        assert!(
            self.shared_bytes.is_power_of_two() && self.shared_bytes >= 8192,
            "{}: shared footprint must be a power of two >= 8 KB",
            self.name
        );
        assert!(self.locks > 0, "{}: need at least one lock", self.name);
        assert!(self.segments >= 8, "{}: too few segments", self.name);
        self.sharing.assert_valid(self.name);
        assert!(
            self.sharing.contended_locks <= self.locks * 16,
            "{}: contended subset exceeds the global lock bank",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            class: WorkloadClass::Oltp,
            private_bytes: 1 << 20,
            shared_bytes: 1 << 20,
            locks: 16,
            critical_section_len: 8,
            lock_weight: 1.0,
            shared_read_weight: 1.0,
            private_weight: 4.0,
            compute_weight: 4.0,
            trap_weight: 0.1,
            membar_weight: 0.1,
            chase_weight: 0.0,
            store_fraction: 0.3,
            private_stride: 8 * 40503,
            private_step: 24,
            jump_fraction: 0.03,
            shared_stride: 8 * 10501,
            lock_sharing: 0.05,
            sharing: SharingModel::derived(0.05, 1.0),
            itlb_miss_per_million: 1000,
            segments: 32,
            seed: 42,
        }
    }

    #[test]
    fn classes_partition_commercial() {
        assert!(WorkloadClass::Web.is_commercial());
        assert!(WorkloadClass::Oltp.is_commercial());
        assert!(WorkloadClass::Dss.is_commercial());
        assert!(!WorkloadClass::Scientific.is_commercial());
    }

    #[test]
    fn valid_spec_passes() {
        spec().assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_footprint() {
        let mut s = spec();
        s.private_bytes = 3 << 20;
        s.assert_valid();
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::Scientific.to_string(), "Scientific");
    }

    #[test]
    fn derived_sharing_tracks_legacy_scalars() {
        let m = SharingModel::derived(0.25, 2.0);
        assert!((m.lock_contention - 0.25).abs() < 1e-12);
        assert!((m.hot_weight - 0.5).abs() < 1e-12);
        m.assert_valid("derived");
    }

    #[test]
    #[should_panic(expected = "hot_lines")]
    fn rejects_non_power_of_two_hot_lines() {
        let mut s = spec();
        s.sharing.hot_lines = 3;
        s.assert_valid();
    }

    #[test]
    #[should_panic(expected = "hot writer")]
    fn rejects_zero_writers() {
        let mut s = spec();
        s.sharing.writers = 0;
        s.assert_valid();
    }

    #[test]
    #[should_panic(expected = "contended subset")]
    fn rejects_oversized_contended_bank() {
        let mut s = spec();
        s.sharing.contended_locks = s.locks * 32;
        s.assert_valid();
    }
}

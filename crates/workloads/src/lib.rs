//! Synthetic workload suite mirroring the Reunion evaluation (Table 2).
//!
//! The paper measures TPC-C on DB2 and Oracle, TPC-H queries on DB2,
//! SPECweb99 on Apache and Zeus, and four parallel scientific kernels. We
//! cannot ship those stacks; what the Reunion results actually depend on is
//! a handful of *observable workload behaviours*:
//!
//! * the rate of **serializing instructions** — traps, memory barriers,
//!   atomics, non-idempotent MMU accesses (dominates commercial overhead),
//! * **TLB miss rates** (large instruction/data footprints; Table 3),
//! * **sharing and lock behaviour** — data races between pairs are the
//!   source of input incoherence (Figure 1 is literally a spin lock),
//! * **cache footprints** relative to the L1 and the 16 MB shared L2
//!   (em3d's working set exceeds the L2, which is why `shared`-strength
//!   phantom requests collapse on it),
//! * **memory-level parallelism** (scientific codes saturate the ROB).
//!
//! Each of the eleven named workloads is a seeded, deterministic program
//! generator parameterized along exactly those axes. The generated code is
//! real code — spin locks built from atomic swaps, pointer chases through
//! initialized memory, strided scans — so every effect above emerges from
//! execution rather than being injected statistically (the one exception is
//! the ITLB miss rate, which synthetic code images are too small to produce
//! organically; it is a per-workload rate consumed by the core's ITLB
//! model).
//!
//! # Examples
//!
//! ```
//! use reunion_workloads::{suite, Workload};
//!
//! let all = suite();
//! assert_eq!(all.len(), 11);
//! let apache = Workload::by_name("apache").expect("known workload");
//! let prog = apache.program(0);
//! assert!(prog.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod builder;
mod gen;
mod kernels;
mod spec;
mod suite;

pub use builder::ProgramBuilder;
pub use gen::{
    generate_program, initial_memory, FLAG_BASE, FLAG_SLOTS, HOT_BASE, LOCK_BASE, PRIVATE_BASE,
    PRIVATE_SPACING, SHARED_BASE,
};
pub use kernels::{kernel_suite, KERNEL_SOURCES};
pub use spec::{SharingModel, WorkloadClass, WorkloadSpec};
pub use suite::{suite, Workload};

//! Declarative host pools and their on-disk spec formats.
//!
//! A pool spec lists the hosts a campaign may dispatch shards to: a
//! `name`, a `transport` (`local` or `ssh`), a `capacity` (how many
//! shards may run on the host at once), and per-transport details. Two
//! formats are accepted, chosen by file extension:
//!
//! TOML (a deliberately small subset — `[[host]]` tables, `key = value`
//! lines with strings, integers, and arrays of strings, `#` comments):
//!
//! ```toml
//! [[host]]
//! name = "alpha"
//! transport = "local"
//! capacity = 2
//!
//! [[host]]
//! name = "beta"
//! transport = "ssh"
//! addr = "user@beta.cluster"
//! remote_dir = "scratch/reunion"
//! capacity = 4
//! command = ["reunion/bin/{grid}", "--profile", "{profile}"]
//! ```
//!
//! JSON (the same fields under a top-level `hosts` array), parsed with
//! the same parser the `BENCH_<id>.json` artifacts use:
//!
//! ```json
//! {"hosts": [{"name": "alpha", "transport": "local", "capacity": 2}]}
//! ```

use std::path::{Path, PathBuf};

use reunion_sim::{parse_json, JsonValue};

use crate::transport::{DispatchError, LocalProcess, SshCommand, Transport};

/// One materialized transport per pool host, with its capacity — the
/// input shape of [`crate::Dispatcher::new`].
pub type HostTransports = Vec<(Box<dyn Transport>, usize)>;

/// How the dispatcher reaches one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Child processes on the dispatcher's machine ([`LocalProcess`]).
    Local,
    /// `ssh`/`scp` to a remote machine ([`SshCommand`]).
    Ssh,
}

/// One host in a pool spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostSpec {
    /// Unique pool name (also the local work-directory name).
    pub name: String,
    /// Transport kind.
    pub transport: TransportKind,
    /// Concurrent shards the host may run (≥ 1).
    pub capacity: usize,
    /// ssh destination (`user@host`); required for [`TransportKind::Ssh`].
    pub addr: Option<String>,
    /// Remote work directory (ssh; default `reunion-dispatch`, relative
    /// to the ssh login directory).
    pub remote_dir: Option<String>,
    /// Worker argv template overriding the pool default (`{grid}` and
    /// `{profile}` are substituted per task).
    pub command: Option<Vec<String>>,
}

impl HostSpec {
    fn new(name: String) -> Self {
        HostSpec {
            name,
            transport: TransportKind::Local,
            capacity: 1,
            addr: None,
            remote_dir: None,
            command: None,
        }
    }
}

/// Defaults applied when a host spec leaves transport details out.
#[derive(Clone, Debug)]
pub struct TransportDefaults {
    /// Where local hosts keep their work directories (one subdirectory
    /// per host name).
    pub work_root: PathBuf,
    /// Worker argv template for hosts without an explicit `command`.
    pub command: Vec<String>,
}

impl Default for TransportDefaults {
    fn default() -> Self {
        TransportDefaults {
            work_root: PathBuf::from("dispatch-work"),
            command: vec![
                "{grid}".to_string(),
                "--profile".to_string(),
                "{profile}".to_string(),
            ],
        }
    }
}

/// A validated host pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostPool {
    hosts: Vec<HostSpec>,
}

impl HostPool {
    /// Builds a pool from already-constructed specs, applying the same
    /// validation as [`parse`](Self::parse).
    pub fn from_hosts(hosts: Vec<HostSpec>) -> Result<Self, DispatchError> {
        if hosts.is_empty() {
            return Err(DispatchError::Pool("pool has no hosts".to_string()));
        }
        for (i, h) in hosts.iter().enumerate() {
            if h.name.is_empty() {
                return Err(DispatchError::Pool(format!("host #{} has no name", i + 1)));
            }
            if hosts[..i].iter().any(|other| other.name == h.name) {
                return Err(DispatchError::Pool(format!(
                    "duplicate host name {:?}",
                    h.name
                )));
            }
            if h.capacity == 0 {
                return Err(DispatchError::Pool(format!(
                    "host {:?}: capacity must be at least 1",
                    h.name
                )));
            }
            if h.transport == TransportKind::Ssh && h.addr.is_none() {
                return Err(DispatchError::Pool(format!(
                    "host {:?}: ssh transport requires addr",
                    h.name
                )));
            }
            if let Some(cmd) = &h.command {
                if cmd.is_empty() {
                    return Err(DispatchError::Pool(format!(
                        "host {:?}: command must name a program",
                        h.name
                    )));
                }
            }
        }
        Ok(HostPool { hosts })
    }

    /// Parses a pool spec: JSON when `name` ends in `.json`, the TOML
    /// subset otherwise.
    pub fn parse(name: &str, text: &str) -> Result<Self, DispatchError> {
        let hosts = if name.ends_with(".json") {
            parse_hosts_json(text)
        } else {
            parse_hosts_toml(text)
        }
        .map_err(DispatchError::Pool)?;
        Self::from_hosts(hosts)
    }

    /// Reads and parses the pool spec at `path`.
    pub fn load(path: &Path) -> Result<Self, DispatchError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DispatchError::Pool(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&path.display().to_string(), &text)
    }

    /// The validated host specs, in declaration order.
    pub fn hosts(&self) -> &[HostSpec] {
        &self.hosts
    }

    /// Total capacity over all hosts.
    pub fn capacity(&self) -> usize {
        self.hosts.iter().map(|h| h.capacity).sum()
    }

    /// Materializes one transport per host, applying `defaults` where the
    /// spec leaves details out. Returns `(transport, capacity)` pairs in
    /// declaration order — exactly the shape [`crate::Dispatcher::new`]
    /// takes.
    pub fn build_transports(
        &self,
        defaults: &TransportDefaults,
    ) -> Result<HostTransports, DispatchError> {
        self.hosts
            .iter()
            .map(|h| {
                let command = h
                    .command
                    .clone()
                    .unwrap_or_else(|| defaults.command.clone());
                let transport: Box<dyn Transport> = match h.transport {
                    TransportKind::Local => Box::new(LocalProcess::new(
                        h.name.clone(),
                        defaults.work_root.join(&h.name),
                        command,
                    )),
                    TransportKind::Ssh => Box::new(SshCommand::new(
                        h.name.clone(),
                        h.addr.clone().expect("validated: ssh host has addr"),
                        h.remote_dir
                            .clone()
                            .unwrap_or_else(|| "reunion-dispatch".to_string()),
                        command,
                    )),
                };
                Ok((transport, h.capacity))
            })
            .collect()
    }
}

fn parse_transport_kind(s: &str) -> Result<TransportKind, String> {
    match s {
        "local" => Ok(TransportKind::Local),
        "ssh" => Ok(TransportKind::Ssh),
        other => Err(format!(
            "unknown transport {other:?} (expected \"local\" or \"ssh\")"
        )),
    }
}

/// One `key = value` assignment into the host being built.
fn assign(host: &mut HostSpec, key: &str, value: TomlValue, lineno: usize) -> Result<(), String> {
    let at = |what: &str| format!("line {lineno}: {key} expects {what}");
    match (key, value) {
        ("name", TomlValue::Str(s)) => host.name = s,
        ("transport", TomlValue::Str(s)) => host.transport = parse_transport_kind(&s)?,
        ("capacity", TomlValue::Int(n)) => host.capacity = n,
        ("addr", TomlValue::Str(s)) => host.addr = Some(s),
        ("remote_dir", TomlValue::Str(s)) => host.remote_dir = Some(s),
        ("command", TomlValue::Array(items)) => host.command = Some(items),
        ("name" | "transport" | "addr" | "remote_dir", _) => return Err(at("a string")),
        ("capacity", _) => return Err(at("an integer")),
        ("command", _) => return Err(at("an array of strings")),
        (other, _) => return Err(format!("line {lineno}: unknown key {other:?}")),
    }
    Ok(())
}

enum TomlValue {
    Str(String),
    Int(usize),
    Array(Vec<String>),
}

/// Parses one TOML value from the supported subset: a double-quoted
/// string, a non-negative integer, or a single-line array of strings.
/// Anything after the value must be whitespace or a `#` comment.
fn parse_toml_value(raw: &str, lineno: usize) -> Result<TomlValue, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let (s, after) = take_string_literal(rest, lineno)?;
        expect_only_comment(after, lineno)?;
        return Ok(TomlValue::Str(s));
    }
    if let Some(mut rest) = raw.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                expect_only_comment(after, lineno)?;
                return Ok(TomlValue::Array(items));
            }
            let inner = rest.strip_prefix('"').ok_or_else(|| {
                format!("line {lineno}: arrays may only contain double-quoted strings")
            })?;
            let (s, after) = take_string_literal(inner, lineno)?;
            items.push(s);
            rest = after.trim_start();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma;
            } else if !rest.starts_with(']') {
                return Err(format!("line {lineno}: expected \",\" or \"]\" in array"));
            }
        }
    }
    let number = raw.split('#').next().unwrap_or_default().trim();
    number
        .parse::<usize>()
        .map(TomlValue::Int)
        .map_err(|_| format!("line {lineno}: cannot parse value {number:?}"))
}

/// Consumes a string literal body (opening quote already stripped),
/// handling `\"` and `\\` escapes; returns the string and the rest of the
/// line after the closing quote.
fn take_string_literal(s: &str, lineno: usize) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                _ => return Err(format!("line {lineno}: unsupported escape in string")),
            },
            c => out.push(c),
        }
    }
    Err(format!("line {lineno}: unterminated string"))
}

fn expect_only_comment(rest: &str, lineno: usize) -> Result<(), String> {
    let rest = rest.trim();
    if rest.is_empty() || rest.starts_with('#') {
        Ok(())
    } else {
        Err(format!("line {lineno}: unexpected trailing {rest:?}"))
    }
}

fn parse_hosts_toml(text: &str) -> Result<Vec<HostSpec>, String> {
    let mut hosts: Vec<HostSpec> = Vec::new();
    let mut current: Option<HostSpec> = None;
    for (n, raw) in text.lines().enumerate() {
        let lineno = n + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[host]]" {
            if let Some(done) = current.take() {
                hosts.push(done);
            }
            current = Some(HostSpec::new(String::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: only [[host]] tables are supported, got {line:?}"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value, got {line:?}"))?;
        let host = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: key before the first [[host]] table"))?;
        assign(host, key.trim(), parse_toml_value(value, lineno)?, lineno)?;
    }
    if let Some(done) = current.take() {
        hosts.push(done);
    }
    Ok(hosts)
}

fn json_str(v: &JsonValue, key: &str, host: usize) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!(
            "host #{host}: {key} expects a string, got {other:?}"
        )),
    }
}

fn parse_hosts_json(text: &str) -> Result<Vec<HostSpec>, String> {
    let v = parse_json(text).map_err(|e| e.to_string())?;
    let Some(JsonValue::Array(items)) = v.get("hosts") else {
        return Err("expected a top-level \"hosts\" array".to_string());
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let n = i + 1;
            let mut host = HostSpec::new(
                json_str(item, "name", n)?.ok_or_else(|| format!("host #{n}: missing name"))?,
            );
            if let Some(t) = json_str(item, "transport", n)? {
                host.transport = parse_transport_kind(&t)?;
            }
            if let Some(c) = item.get("capacity") {
                let c = c
                    .as_f64()
                    .filter(|c| c.fract() == 0.0 && *c >= 0.0)
                    .ok_or_else(|| format!("host #{n}: capacity expects an integer"))?;
                host.capacity = c as usize;
            }
            host.addr = json_str(item, "addr", n)?;
            host.remote_dir = json_str(item, "remote_dir", n)?;
            if let Some(cmd) = item.get("command") {
                let JsonValue::Array(args) = cmd else {
                    return Err(format!("host #{n}: command expects an array of strings"));
                };
                host.command = Some(
                    args.iter()
                        .map(|a| {
                            a.as_str().map(str::to_string).ok_or_else(|| {
                                format!("host #{n}: command expects an array of strings")
                            })
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            Ok(host)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const POOL_TOML: &str = r#"
# Two-machine campaign pool.
[[host]]
name = "alpha"
transport = "local"
capacity = 2

[[host]]
name = "beta"
transport = "ssh"
addr = "user@beta.cluster"   # jump host configured in ~/.ssh/config
remote_dir = "scratch/reunion"
capacity = 4
command = ["reunion/bin/{grid}", "--profile", "{profile}"]
"#;

    #[test]
    fn toml_pool_round_trip() {
        let pool = HostPool::parse("pool.toml", POOL_TOML).unwrap();
        assert_eq!(pool.hosts().len(), 2);
        assert_eq!(pool.capacity(), 6);
        let alpha = &pool.hosts()[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.transport, TransportKind::Local);
        assert_eq!(alpha.capacity, 2);
        let beta = &pool.hosts()[1];
        assert_eq!(beta.transport, TransportKind::Ssh);
        assert_eq!(beta.addr.as_deref(), Some("user@beta.cluster"));
        assert_eq!(beta.remote_dir.as_deref(), Some("scratch/reunion"));
        assert_eq!(
            beta.command.as_deref().unwrap(),
            ["reunion/bin/{grid}", "--profile", "{profile}"]
        );
    }

    #[test]
    fn json_pool_parses_the_same_fields() {
        let text = r#"{"hosts": [
            {"name": "alpha", "transport": "local", "capacity": 2},
            {"name": "beta", "transport": "ssh", "addr": "u@b",
             "command": ["w", "--profile", "{profile}"]}
        ]}"#;
        let pool = HostPool::parse("pool.json", text).unwrap();
        assert_eq!(pool.hosts().len(), 2);
        assert_eq!(pool.hosts()[0].capacity, 2);
        assert_eq!(pool.hosts()[1].transport, TransportKind::Ssh);
        assert_eq!(pool.hosts()[1].command.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn validation_rejects_bad_pools() {
        for (label, text) in [
            ("empty", ""),
            ("no name", "[[host]]\ncapacity = 1\n"),
            (
                "duplicate names",
                "[[host]]\nname = \"a\"\n[[host]]\nname = \"a\"\n",
            ),
            ("zero capacity", "[[host]]\nname = \"a\"\ncapacity = 0\n"),
            (
                "ssh without addr",
                "[[host]]\nname = \"a\"\ntransport = \"ssh\"\n",
            ),
            (
                "unknown transport",
                "[[host]]\nname = \"a\"\ntransport = \"carrier-pigeon\"\n",
            ),
            ("unknown key", "[[host]]\nname = \"a\"\nspeed = 9\n"),
            ("key outside table", "name = \"a\"\n"),
            ("trailing garbage", "[[host]]\nname = \"a\" nonsense\n"),
        ] {
            assert!(
                HostPool::parse("pool.toml", text).is_err(),
                "{label} must be rejected"
            );
        }
    }

    #[test]
    fn build_transports_applies_defaults() {
        let pool = HostPool::parse(
            "pool.toml",
            "[[host]]\nname = \"alpha\"\n[[host]]\nname = \"beta\"\ncapacity = 3\n",
        )
        .unwrap();
        let built = pool
            .build_transports(&TransportDefaults::default())
            .unwrap();
        assert_eq!(built.len(), 2);
        assert_eq!(built[0].0.host(), "alpha");
        assert_eq!(built[0].1, 1);
        assert_eq!(built[1].1, 3);
    }
}

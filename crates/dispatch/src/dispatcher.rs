//! The dispatch lifecycle: assignment, leases, failure handling,
//! re-dispatch, collection, merge.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use reunion_sim::{manifest_progress_from_text, merge_manifests, ShardSpec};

use crate::transport::{DispatchError, ShardTask, Transport, WorkerHandle, WorkerStatus};

/// Kill one worker on purpose, once — the failure-injection hook CI's
/// end-to-end job uses to prove a dead host's shard is re-dispatched and
/// still merges byte-identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureInjection {
    /// 1-based index of the shard whose worker is killed.
    pub shard_index: usize,
    /// The kill fires the first time the shard's manifest records at
    /// least this many cells (so the re-dispatched worker provably has
    /// partial work to resume).
    pub after_cells: usize,
}

/// Campaign parameters for one [`Dispatcher`] run.
#[derive(Clone, Debug)]
pub struct DispatchConfig {
    /// Grid identifier (names the experiment binary and the artifacts).
    pub grid_id: String,
    /// Partition width: shards `1/N … N/N` are dispatched.
    pub shards: usize,
    /// Where collected manifests and the merged `BENCH_<id>.json` land.
    pub merge_dir: PathBuf,
    /// Sampling profile forwarded to workers (`full` or `fast`).
    pub profile: String,
    /// No-progress lease: a running worker whose manifest gains no cell
    /// for this long is declared stalled, killed, and re-dispatched. Must
    /// comfortably exceed the slowest single cell.
    pub lease: Duration,
    /// Monitor poll interval.
    pub poll: Duration,
    /// Failures (launch errors, deaths, stalls) after which a host is
    /// evicted from the pool.
    pub max_host_failures: u32,
    /// Optional deliberate kill (failure injection for testing).
    pub inject_kill: Option<FailureInjection>,
}

impl DispatchConfig {
    /// A config with defaults: full profile, 10-minute lease, 500 ms
    /// poll, hosts evicted after 2 failures, no injection.
    pub fn new(grid_id: impl Into<String>, shards: usize, merge_dir: impl Into<PathBuf>) -> Self {
        DispatchConfig {
            grid_id: grid_id.into(),
            shards,
            merge_dir: merge_dir.into(),
            profile: "full".to_string(),
            lease: Duration::from_secs(600),
            poll: Duration::from_millis(500),
            max_host_failures: 2,
            inject_kill: None,
        }
    }

    /// Sets the sampling profile workers run under.
    pub fn profile(mut self, profile: impl Into<String>) -> Self {
        self.profile = profile.into();
        self
    }

    /// Sets the no-progress lease.
    pub fn lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Sets the monitor poll interval.
    pub fn poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Sets the per-host failure budget before eviction.
    pub fn max_host_failures(mut self, max: u32) -> Self {
        self.max_host_failures = max;
        self
    }

    /// Arms the failure-injection kill.
    pub fn inject_kill(mut self, injection: FailureInjection) -> Self {
        self.inject_kill = Some(injection);
        self
    }
}

/// How one launch of one shard on one host ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The worker finished its slice; the manifest was collected.
    Completed {
        /// Cells recorded in the collected manifest.
        cells: usize,
    },
    /// The worker could not be launched (unreachable host, missing
    /// binary).
    LaunchFailed {
        /// The transport's error.
        detail: String,
    },
    /// The worker exited without a complete manifest.
    Died {
        /// Exit status / incompleteness description.
        detail: String,
    },
    /// The worker made no progress within the lease and was killed.
    Stalled,
    /// The worker was killed by [`FailureInjection`].
    Killed,
}

/// One launch attempt, for the campaign log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attempt {
    /// 1-based shard index.
    pub shard: usize,
    /// Pool name of the host the attempt ran on.
    pub host: String,
    /// Cells already present when the worker started (recovered from a
    /// previous attempt's seeded manifest — the resume hand-off working).
    pub seeded: usize,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// What a completed campaign produced.
#[derive(Clone, Debug)]
pub struct DispatchReport {
    /// The merged `BENCH_<id>.json` (byte-identical to a single-process
    /// run of the same grid and profile).
    pub bench_path: PathBuf,
    /// Collected per-shard manifests, in shard order.
    pub manifest_paths: Vec<PathBuf>,
    /// Every launch attempt, in the order it resolved.
    pub attempts: Vec<Attempt>,
    /// How many times a shard had to be re-dispatched.
    pub redispatches: usize,
    /// Hosts evicted for exceeding the failure budget.
    pub evicted_hosts: Vec<String>,
}

struct HostState {
    transport: Box<dyn Transport>,
    capacity: usize,
    running: usize,
    failures: u32,
    dead: bool,
}

struct Running {
    host: usize,
    handle: Box<dyn WorkerHandle>,
    last_progress: Instant,
    completed: usize,
    seeded: usize,
}

enum ShardState {
    Pending { seed: Option<String> },
    Running(Running),
    Done { manifest: PathBuf },
}

/// Drives one sharded campaign over a host pool to a merged
/// `BENCH_<id>.json`. See the crate docs for the lifecycle.
pub struct Dispatcher {
    cfg: DispatchConfig,
    hosts: Vec<HostState>,
}

impl Dispatcher {
    /// A dispatcher over `transports` (one `(transport, capacity)` pair
    /// per host — the shape [`HostPool::build_transports`] returns).
    ///
    /// [`HostPool::build_transports`]: crate::HostPool::build_transports
    ///
    /// # Panics
    ///
    /// Panics if the config names zero shards or the pool has no hosts —
    /// both are campaign-spec bugs, not runtime conditions.
    pub fn new(cfg: DispatchConfig, transports: Vec<(Box<dyn Transport>, usize)>) -> Self {
        assert!(cfg.shards >= 1, "campaign needs at least one shard");
        assert!(!transports.is_empty(), "campaign needs at least one host");
        Dispatcher {
            cfg,
            hosts: transports
                .into_iter()
                .map(|(transport, capacity)| HostState {
                    transport,
                    capacity: capacity.max(1),
                    running: 0,
                    failures: 0,
                    dead: false,
                })
                .collect(),
        }
    }

    fn task(&self, shard: usize) -> ShardTask {
        ShardTask {
            grid_id: self.cfg.grid_id.clone(),
            shard: ShardSpec::new(shard + 1, self.cfg.shards),
            profile: self.cfg.profile.clone(),
        }
    }

    /// The alive host with free capacity and the fewest running workers
    /// (declaration order breaks ties), if any.
    fn free_host(&self) -> Option<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.dead && h.running < h.capacity)
            .min_by_key(|(_, h)| h.running)
            .map(|(i, _)| i)
    }

    fn host_failure(&mut self, host: usize, evicted: &mut Vec<String>) {
        let h = &mut self.hosts[host];
        h.failures += 1;
        if !h.dead && h.failures >= self.cfg.max_host_failures {
            h.dead = true;
            let name = h.transport.host().to_string();
            println!(
                "[dispatch] host {name} evicted after {} failure(s)",
                h.failures
            );
            evicted.push(name);
        }
    }

    /// Runs the campaign to completion.
    ///
    /// # Errors
    ///
    /// Fails when every host has been evicted with shards unfinished, or
    /// when the final merge/write fails. Either way the collected and
    /// partial manifests stay on disk: re-running the campaign resumes
    /// them instead of restarting.
    pub fn run(mut self) -> Result<DispatchReport, DispatchError> {
        let n = self.cfg.shards;
        let mut shards: Vec<ShardState> =
            (0..n).map(|_| ShardState::Pending { seed: None }).collect();
        let mut attempts: Vec<Attempt> = Vec::new();
        let mut evicted: Vec<String> = Vec::new();
        let mut redispatches = 0usize;
        let mut injection = self.cfg.inject_kill;

        loop {
            // Launch pending shards onto free hosts (load-spread, up to
            // each host's capacity).
            for (s, slot) in shards.iter_mut().enumerate() {
                let seed = match &*slot {
                    ShardState::Pending { seed } => seed.clone(),
                    _ => continue,
                };
                let Some(h) = self.free_host() else { break };
                let task = self.task(s);
                let host_name = self.hosts[h].transport.host().to_string();
                let seeded = seed
                    .as_deref()
                    .and_then(|t| manifest_progress_from_text(t).ok())
                    .map(|p| p.completed)
                    .unwrap_or(0);
                let launched = (|| -> Result<Box<dyn WorkerHandle>, DispatchError> {
                    if let Some(text) = &seed {
                        self.hosts[h].transport.seed_manifest(&task, text)?;
                    }
                    self.hosts[h].transport.launch(&task)
                })();
                match launched {
                    Ok(handle) => {
                        self.hosts[h].running += 1;
                        println!(
                            "[dispatch] launched {task} on {host_name} (seeded {seeded} cell(s))"
                        );
                        *slot = ShardState::Running(Running {
                            host: h,
                            handle,
                            last_progress: Instant::now(),
                            completed: seeded,
                            seeded,
                        });
                    }
                    Err(e) => {
                        println!("[dispatch] cannot launch {task} on {host_name}: {e}");
                        attempts.push(Attempt {
                            shard: s + 1,
                            host: host_name,
                            seeded,
                            outcome: AttemptOutcome::LaunchFailed {
                                detail: e.to_string(),
                            },
                        });
                        self.host_failure(h, &mut evicted);
                        // The shard stays pending; the next pass tries the
                        // remaining pool.
                    }
                }
            }

            // Poll running shards: tail manifests for progress/heartbeat,
            // then check worker status and the lease.
            for (s, slot) in shards.iter_mut().enumerate() {
                let ShardState::Running(r) = &mut *slot else {
                    continue;
                };
                let task = self.task(s);
                let host_name = self.hosts[r.host].transport.host().to_string();
                // Status first, then the manifest: once the worker is
                // observed exited, every cell it recorded is on disk, so
                // a tail taken *after* the status is the final word —
                // tailing first could miss cells flushed just before the
                // exit and mis-seed the re-dispatch. A transient tail
                // failure is not a verdict — the lease decides when
                // silence becomes one.
                let status = r.handle.poll();
                let text = self.hosts[r.host]
                    .transport
                    .manifest_text(&task)
                    .unwrap_or(None);
                let mut complete = false;
                if let Some(t) = &text {
                    if let Ok(p) = manifest_progress_from_text(t) {
                        if p.completed > r.completed {
                            r.completed = p.completed;
                            r.last_progress = Instant::now();
                            println!(
                                "[dispatch] {task} on {host_name}: {}/{} cell(s)",
                                p.completed, p.owned
                            );
                            // Present only when the campaign runs with the
                            // observability layer enabled; a separate line
                            // so the progress line above stays grep-stable.
                            if let Some(obs) = &p.obs {
                                println!(
                                    "[dispatch] {task} obs: {} check(s) (mean rtt {:.1}), \
                                     {} stall episode(s), {} incoherence gap(s)",
                                    obs.check_latency.count(),
                                    obs.check_latency.mean().unwrap_or(0.0),
                                    obs.stall_episodes.episodes(),
                                    obs.incoherence_gaps.count(),
                                );
                            }
                        }
                        complete = p.is_complete();
                    }
                }

                if let Some(inj) = injection {
                    if inj.shard_index == s + 1
                        && r.completed >= inj.after_cells
                        && status == WorkerStatus::Running
                    {
                        println!(
                            "[dispatch] INJECTED FAILURE: killing {task} on {host_name} \
                             after {} cell(s)",
                            r.completed
                        );
                        r.handle.kill();
                        let seeded = r.seeded;
                        let host = r.host;
                        self.hosts[host].running -= 1;
                        attempts.push(Attempt {
                            shard: s + 1,
                            host: host_name.clone(),
                            seeded,
                            outcome: AttemptOutcome::Killed,
                        });
                        self.host_failure(host, &mut evicted);
                        println!("[dispatch] re-dispatching {task} (resume from partial manifest)");
                        *slot = ShardState::Pending { seed: text };
                        redispatches += 1;
                        injection = None;
                        continue;
                    }
                }

                match status {
                    WorkerStatus::Running => {
                        if r.last_progress.elapsed() > self.cfg.lease {
                            println!(
                                "[dispatch] {task} on {host_name} stalled past the \
                                 {:?} lease; killing worker",
                                self.cfg.lease
                            );
                            r.handle.kill();
                            let seeded = r.seeded;
                            let host = r.host;
                            self.hosts[host].running -= 1;
                            attempts.push(Attempt {
                                shard: s + 1,
                                host: host_name,
                                seeded,
                                outcome: AttemptOutcome::Stalled,
                            });
                            self.host_failure(host, &mut evicted);
                            println!(
                                "[dispatch] re-dispatching {task} (resume from partial manifest)"
                            );
                            *slot = ShardState::Pending { seed: text };
                            redispatches += 1;
                        }
                    }
                    WorkerStatus::Exited { success } => {
                        let host = r.host;
                        let seeded = r.seeded;
                        // A successful exit with an incomplete-looking
                        // manifest is usually a transient tail failure
                        // (an ssh blip reads as `None`), not a dead
                        // worker — honour "a tail failure is not a
                        // verdict" here too: re-tail a couple of times
                        // before discarding the shard's work and
                        // charging the host.
                        let mut text = text;
                        let mut complete = complete;
                        if success && !complete {
                            for _ in 0..2 {
                                std::thread::sleep(self.cfg.poll);
                                if let Ok(Some(t)) = self.hosts[host].transport.manifest_text(&task)
                                {
                                    if let Ok(p) = manifest_progress_from_text(&t) {
                                        r.completed = r.completed.max(p.completed);
                                        complete = p.is_complete();
                                        text = Some(t);
                                        if complete {
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        let completed = r.completed;
                        self.hosts[host].running -= 1;
                        if success && complete {
                            match self.hosts[host]
                                .transport
                                .collect(&task, &self.cfg.merge_dir)
                            {
                                Ok(path) => {
                                    println!(
                                        "[dispatch] collected {task} from {host_name} \
                                         ({completed} cell(s))"
                                    );
                                    attempts.push(Attempt {
                                        shard: s + 1,
                                        host: host_name,
                                        seeded,
                                        outcome: AttemptOutcome::Completed { cells: completed },
                                    });
                                    *slot = ShardState::Done { manifest: path };
                                }
                                Err(e) => {
                                    println!("[dispatch] cannot collect {task}: {e}");
                                    attempts.push(Attempt {
                                        shard: s + 1,
                                        host: host_name,
                                        seeded,
                                        outcome: AttemptOutcome::Died {
                                            detail: format!("collect failed: {e}"),
                                        },
                                    });
                                    self.host_failure(host, &mut evicted);
                                    *slot = ShardState::Pending { seed: text };
                                    redispatches += 1;
                                }
                            }
                        } else {
                            let detail = if success {
                                format!("worker exited with an incomplete manifest ({completed} cell(s))")
                            } else {
                                "worker exited with failure".to_string()
                            };
                            println!("[dispatch] {task} on {host_name} died: {detail}");
                            attempts.push(Attempt {
                                shard: s + 1,
                                host: host_name,
                                seeded,
                                outcome: AttemptOutcome::Died { detail },
                            });
                            self.host_failure(host, &mut evicted);
                            println!(
                                "[dispatch] re-dispatching {task} (resume from partial manifest)"
                            );
                            *slot = ShardState::Pending { seed: text };
                            redispatches += 1;
                        }
                    }
                }
            }

            if shards.iter().all(|s| matches!(s, ShardState::Done { .. })) {
                // An armed injection that never fired means the target
                // worker finished between polls — the kill was not
                // exercised, so an injection campaign must not pass
                // vacuously.
                if let Some(inj) = injection {
                    return Err(DispatchError::InjectionNeverFired {
                        shard: inj.shard_index,
                    });
                }
                let manifest_paths: Vec<PathBuf> = shards
                    .iter()
                    .map(|s| match s {
                        ShardState::Done { manifest } => manifest.clone(),
                        _ => unreachable!("all shards are done"),
                    })
                    .collect();
                let report = merge_manifests(&manifest_paths)
                    .map_err(|e| DispatchError::Merge(e.to_string()))?;
                std::fs::create_dir_all(&self.cfg.merge_dir)
                    .map_err(|e| DispatchError::Merge(e.to_string()))?;
                let bench_path = self.cfg.merge_dir.join(format!("BENCH_{}.json", report.id));
                std::fs::write(&bench_path, report.to_json())
                    .map_err(|e| DispatchError::Merge(e.to_string()))?;
                println!(
                    "[dispatch] merged {} manifest(s) -> {}",
                    manifest_paths.len(),
                    bench_path.display()
                );
                return Ok(DispatchReport {
                    bench_path,
                    manifest_paths,
                    attempts,
                    redispatches,
                    evicted_hosts: evicted,
                });
            }

            // Unfinished shards with no host left to run them (and none
            // still in flight that could free one up): give up loudly.
            let any_running = shards.iter().any(|s| matches!(s, ShardState::Running(_)));
            if !any_running && self.hosts.iter().all(|h| h.dead) {
                let pending: Vec<usize> = shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, ShardState::Done { .. }))
                    .map(|(i, _)| i + 1)
                    .collect();
                return Err(DispatchError::AllHostsDead { pending });
            }

            std::thread::sleep(self.cfg.poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::path::Path;

    use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
    use reunion_sim::{ExperimentGrid, Runner};
    use reunion_workloads::Workload;

    fn tiny_grid() -> ExperimentGrid {
        ExperimentGrid::builder("mock", "dispatcher state-machine grid")
            .base(SystemConfig::small_test)
            .sample(SampleConfig::quick())
            .workloads(vec![Workload::by_name("sparse").unwrap()])
            .modes(&[ExecutionMode::NonRedundant, ExecutionMode::Reunion])
            .build()
    }

    /// Real manifest bytes for shard `i/n` of the tiny grid (the mock
    /// transport serves them so the final merge exercises the real
    /// merge path).
    fn manifest_bytes(index: usize, count: usize) -> String {
        let dir = std::env::temp_dir().join(format!(
            "reunion-dispatcher-mock-{}-{index}of{count}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let outcome = Runner::serial()
            .run_shard(&tiny_grid(), ShardSpec::new(index, count), &dir)
            .unwrap();
        let text = std::fs::read_to_string(outcome.manifest_path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        text
    }

    /// A scripted host: either refuses every launch, or "runs" a worker
    /// that instantly exits successfully with a complete manifest.
    struct MockTransport {
        name: String,
        refuse_launches: bool,
        served: RefCell<Option<String>>,
    }

    impl MockTransport {
        fn good(name: &str) -> Self {
            MockTransport {
                name: name.to_string(),
                refuse_launches: false,
                served: RefCell::new(None),
            }
        }

        fn unreachable(name: &str) -> Self {
            MockTransport {
                name: name.to_string(),
                refuse_launches: true,
                served: RefCell::new(None),
            }
        }
    }

    struct InstantExit;

    impl WorkerHandle for InstantExit {
        fn poll(&mut self) -> WorkerStatus {
            WorkerStatus::Exited { success: true }
        }
        fn kill(&mut self) {}
    }

    impl Transport for MockTransport {
        fn host(&self) -> &str {
            &self.name
        }

        fn launch(&self, task: &ShardTask) -> Result<Box<dyn WorkerHandle>, DispatchError> {
            if self.refuse_launches {
                return Err(DispatchError::Transport {
                    host: self.name.clone(),
                    detail: "connection refused".to_string(),
                });
            }
            *self.served.borrow_mut() =
                Some(manifest_bytes(task.shard.index(), task.shard.count()));
            Ok(Box::new(InstantExit))
        }

        fn manifest_text(&self, _task: &ShardTask) -> Result<Option<String>, DispatchError> {
            Ok(self.served.borrow().clone())
        }

        fn seed_manifest(&self, _task: &ShardTask, _text: &str) -> Result<(), DispatchError> {
            Ok(())
        }

        fn collect(&self, task: &ShardTask, dest: &Path) -> Result<PathBuf, DispatchError> {
            std::fs::create_dir_all(dest).unwrap();
            let path = dest.join(task.manifest_file_name());
            std::fs::write(&path, self.served.borrow().as_deref().unwrap()).unwrap();
            Ok(path)
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reunion-dispatcher-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// An unreachable host at startup: its launch failures burn its
    /// budget, it is evicted, and the whole campaign lands on the
    /// remaining host — with a merged report identical to a serial run.
    #[test]
    fn unreachable_host_falls_back_to_remaining_pool() {
        let merge = scratch("fallback");
        let cfg = DispatchConfig::new("mock", 2, &merge)
            .poll(Duration::from_millis(5))
            .max_host_failures(1);
        let report = Dispatcher::new(
            cfg,
            vec![
                (
                    Box::new(MockTransport::unreachable("downhost")) as Box<dyn Transport>,
                    1,
                ),
                (
                    Box::new(MockTransport::good("uphost")) as Box<dyn Transport>,
                    1,
                ),
            ],
        )
        .run()
        .expect("campaign must survive one dead host");
        assert_eq!(report.evicted_hosts, vec!["downhost".to_string()]);
        assert!(report
            .attempts
            .iter()
            .any(|a| matches!(a.outcome, AttemptOutcome::LaunchFailed { .. })));
        let completed: Vec<&Attempt> = report
            .attempts
            .iter()
            .filter(|a| matches!(a.outcome, AttemptOutcome::Completed { .. }))
            .collect();
        assert_eq!(completed.len(), 2);
        assert!(completed.iter().all(|a| a.host == "uphost"));
        let merged = std::fs::read_to_string(&report.bench_path).unwrap();
        assert_eq!(merged, Runner::serial().run(&tiny_grid()).to_json());
        std::fs::remove_dir_all(&merge).ok();
    }

    /// Every host dead before any shard completes fails loudly, naming
    /// the unfinished shards.
    #[test]
    fn all_hosts_dead_names_pending_shards() {
        let merge = scratch("alldead");
        let cfg = DispatchConfig::new("mock", 2, &merge)
            .poll(Duration::from_millis(5))
            .max_host_failures(1);
        let err = Dispatcher::new(
            cfg,
            vec![(
                Box::new(MockTransport::unreachable("only")) as Box<dyn Transport>,
                1,
            )],
        )
        .run()
        .expect_err("no host can run anything");
        match err {
            DispatchError::AllHostsDead { pending } => assert_eq!(pending, vec![1, 2]),
            other => panic!("expected AllHostsDead, got {other}"),
        }
        std::fs::remove_dir_all(&merge).ok();
    }

    #[test]
    fn config_builder_applies_every_knob() {
        let cfg = DispatchConfig::new("fig5", 4, "/tmp/m")
            .profile("fast")
            .lease(Duration::from_secs(9))
            .poll(Duration::from_millis(7))
            .max_host_failures(5)
            .inject_kill(FailureInjection {
                shard_index: 2,
                after_cells: 3,
            });
        assert_eq!(cfg.profile, "fast");
        assert_eq!(cfg.lease, Duration::from_secs(9));
        assert_eq!(cfg.poll, Duration::from_millis(7));
        assert_eq!(cfg.max_host_failures, 5);
        assert_eq!(
            cfg.inject_kill,
            Some(FailureInjection {
                shard_index: 2,
                after_cells: 3
            })
        );
    }
}

//! Pluggable host transports: how the dispatcher launches shard workers
//! and moves manifest bytes.
//!
//! A transport knows four things about a host: how to *launch* a worker
//! for one shard, how to *tail* that worker's manifest (the progress and
//! heartbeat signal), how to *seed* a partial manifest into the host's
//! work directory (the resume hand-off when a shard migrates off a dead
//! host), and how to *collect* a finished manifest back to the merge
//! directory. Everything else — leases, retries, host health — lives in
//! the [`Dispatcher`](crate::Dispatcher), so a new transport (a container
//! scheduler, a batch queue) only has to move bytes.

use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use reunion_sim::ShardSpec;

/// One unit of dispatchable work: shard `i/N` of one experiment grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardTask {
    /// Grid identifier (the experiment binary's `BENCH_<id>` id).
    pub grid_id: String,
    /// Which slice of the grid's partition this task runs.
    pub shard: ShardSpec,
    /// Sampling profile forwarded to the worker (`full` or `fast`).
    pub profile: String,
}

impl ShardTask {
    /// Canonical manifest file name this task's worker writes.
    pub fn manifest_file_name(&self) -> String {
        self.shard.manifest_file_name(&self.grid_id)
    }
}

impl fmt::Display for ShardTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shard {}", self.grid_id, self.shard)
    }
}

/// Why a dispatch operation failed.
#[derive(Debug)]
pub enum DispatchError {
    /// A host-pool spec could not be parsed or validated.
    Pool(String),
    /// A transport operation against one host failed.
    Transport {
        /// The host the operation targeted.
        host: String,
        /// What went wrong.
        detail: String,
    },
    /// Every host in the pool was evicted before the campaign finished.
    AllHostsDead {
        /// 1-based indices of the shards still unfinished.
        pending: Vec<usize>,
    },
    /// The collected manifests could not be merged or written.
    Merge(String),
    /// A configured failure injection never fired: the campaign finished
    /// without the deliberate kill happening, so the run proved nothing
    /// about recovery — fail loudly instead of passing vacuously.
    InjectionNeverFired {
        /// 1-based index of the shard the injection targeted.
        shard: usize,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Pool(e) => write!(f, "host pool: {e}"),
            DispatchError::Transport { host, detail } => write!(f, "host {host}: {detail}"),
            DispatchError::AllHostsDead { pending } => write!(
                f,
                "every host evicted with shard(s) {pending:?} unfinished; \
                 fix the pool and re-run (completed shards resume from their manifests)"
            ),
            DispatchError::Merge(e) => write!(f, "merge: {e}"),
            DispatchError::InjectionNeverFired { shard } => write!(
                f,
                "failure injection for shard {shard} never fired (its worker was never \
                 observed running past the cell threshold); the recovery path was not \
                 exercised — tighten the poll interval or lower the threshold"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// What a worker is doing right now, as far as its handle can tell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Still running.
    Running,
    /// Exited.
    Exited {
        /// Whether the exit status reported success.
        success: bool,
    },
}

/// A launched shard worker the dispatcher can poll and kill.
pub trait WorkerHandle {
    /// Non-blocking status probe.
    fn poll(&mut self) -> WorkerStatus;

    /// Terminates the worker (best effort; idempotent). The shard's
    /// manifest keeps every cell completed before the kill — that is the
    /// crash-safety contract re-dispatch relies on.
    fn kill(&mut self);
}

/// A host the dispatcher can run shard workers on.
pub trait Transport {
    /// The host's pool name (for logs and health bookkeeping).
    fn host(&self) -> &str;

    /// Launches the worker for `task`.
    fn launch(&self, task: &ShardTask) -> Result<Box<dyn WorkerHandle>, DispatchError>;

    /// Current bytes of `task`'s manifest on this host, or `None` while
    /// the worker has not created it yet. This is the dispatcher's
    /// progress *and* heartbeat signal: a growing completed-cell count
    /// renews the lease.
    fn manifest_text(&self, task: &ShardTask) -> Result<Option<String>, DispatchError>;

    /// Places partial manifest bytes into the host's work directory
    /// before launch, so the worker resumes the recorded cells instead of
    /// re-running them (the re-dispatch hand-off).
    fn seed_manifest(&self, task: &ShardTask, text: &str) -> Result<(), DispatchError>;

    /// Copies `task`'s finished manifest into `dest` and returns the
    /// local path.
    fn collect(&self, task: &ShardTask, dest: &Path) -> Result<PathBuf, DispatchError>;
}

/// A live child process (the handle type both built-in transports use —
/// for [`SshCommand`] the child is the local `ssh` client, whose death
/// also means the channel to the remote worker is gone).
pub struct ProcessHandle {
    child: Child,
}

impl ProcessHandle {
    fn new(child: Child) -> Self {
        ProcessHandle { child }
    }
}

impl WorkerHandle for ProcessHandle {
    fn poll(&mut self) -> WorkerStatus {
        match self.child.try_wait() {
            Ok(None) => WorkerStatus::Running,
            Ok(Some(status)) => WorkerStatus::Exited {
                success: status.success(),
            },
            // A wait error means the process is no longer observable;
            // treat it as a failed exit so the shard gets re-dispatched.
            Err(_) => WorkerStatus::Exited { success: false },
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Replaces the `{grid}` and `{profile}` placeholders of a command
/// template with the task's values.
fn substitute(template: &[String], task: &ShardTask) -> Vec<String> {
    template
        .iter()
        .map(|a| {
            a.replace("{grid}", &task.grid_id)
                .replace("{profile}", &task.profile)
        })
        .collect()
}

/// Runs shard workers as child processes on the dispatcher's own machine,
/// one work directory per pool host.
///
/// "Hosts" here are capacity slots sharing the local CPU — exactly what
/// CI's end-to-end dispatch job uses, and the degenerate pool a laptop
/// campaign starts from. The worker command is an argv template whose
/// `{grid}` and `{profile}` placeholders are substituted per task
/// (default: the experiment binary named after the grid, next to the
/// dispatcher's own executable); the worker inherits `REUNION_SHARD` and
/// `REUNION_OUT_DIR` from the launch.
pub struct LocalProcess {
    host: String,
    work_dir: PathBuf,
    command: Vec<String>,
    extra_env: Vec<(String, String)>,
}

impl LocalProcess {
    /// A local host named `host`, writing manifests under `work_dir`,
    /// launching `command` (a non-empty argv template; `{grid}` and
    /// `{profile}` are substituted per task).
    ///
    /// # Panics
    ///
    /// Panics if `command` is empty.
    pub fn new(
        host: impl Into<String>,
        work_dir: impl Into<PathBuf>,
        command: Vec<String>,
    ) -> Self {
        assert!(!command.is_empty(), "worker command must name a program");
        LocalProcess {
            host: host.into(),
            work_dir: work_dir.into(),
            command,
            extra_env: Vec::new(),
        }
    }

    /// Adds an environment variable to every worker launched on this host
    /// (the failure-injection tests drive worker fault knobs through
    /// this).
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_env.push((key.into(), value.into()));
        self
    }

    fn manifest_path(&self, task: &ShardTask) -> PathBuf {
        self.work_dir.join(task.manifest_file_name())
    }

    fn err(&self, detail: impl fmt::Display) -> DispatchError {
        DispatchError::Transport {
            host: self.host.clone(),
            detail: detail.to_string(),
        }
    }
}

impl Transport for LocalProcess {
    fn host(&self) -> &str {
        &self.host
    }

    fn launch(&self, task: &ShardTask) -> Result<Box<dyn WorkerHandle>, DispatchError> {
        std::fs::create_dir_all(&self.work_dir).map_err(|e| self.err(e))?;
        let argv = substitute(&self.command, task);
        let log_path = self.work_dir.join(format!(
            "worker_{}_shard{}.log",
            task.grid_id,
            task.shard.index()
        ));
        let log = File::create(&log_path).map_err(|e| self.err(e))?;
        let log_err = log.try_clone().map_err(|e| self.err(e))?;
        let child = Command::new(&argv[0])
            .args(&argv[1..])
            .env("REUNION_SHARD", task.shard.to_string())
            .env("REUNION_OUT_DIR", &self.work_dir)
            .envs(self.extra_env.iter().map(|(k, v)| (k, v)))
            .stdin(Stdio::null())
            .stdout(log)
            .stderr(log_err)
            .spawn()
            .map_err(|e| self.err(format!("cannot launch {:?}: {e}", argv[0])))?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn manifest_text(&self, task: &ShardTask) -> Result<Option<String>, DispatchError> {
        match std::fs::read_to_string(self.manifest_path(task)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(self.err(e)),
        }
    }

    fn seed_manifest(&self, task: &ShardTask, text: &str) -> Result<(), DispatchError> {
        std::fs::create_dir_all(&self.work_dir).map_err(|e| self.err(e))?;
        std::fs::write(self.manifest_path(task), text).map_err(|e| self.err(e))
    }

    fn collect(&self, task: &ShardTask, dest: &Path) -> Result<PathBuf, DispatchError> {
        std::fs::create_dir_all(dest).map_err(|e| self.err(e))?;
        let to = dest.join(task.manifest_file_name());
        std::fs::copy(self.manifest_path(task), &to).map_err(|e| self.err(e))?;
        Ok(to)
    }
}

/// Runs shard workers on a remote host by shelling out to `ssh`/`scp`.
///
/// The only contract with the remote side is the manifest format: the
/// remote command is the same experiment binary, the manifest is tailed
/// with `ssh … cat`, seeded with `ssh … cat > path`, and collected with
/// `scp`. The handle is the local `ssh` client process — if the
/// connection dies, the handle reports a failed exit and the lease logic
/// takes over. `BatchMode=yes` keeps a misconfigured host an error, never
/// an interactive password prompt wedging the campaign.
///
/// Killing the handle kills the local client only; with no pty, sshd
/// does not reliably terminate the remote command, so an orphaned worker
/// may keep running. That is contained, not prevented: a worker opens
/// its manifest by rewriting through a temp file and an atomic rename,
/// so the moment a re-dispatched worker (same host or not) resumes the
/// shard, the orphan is left appending to an unlinked inode and its
/// output disappears; any lines it interleaved into the seeded file
/// before that rename are dropped by the parse-prefix recovery (an
/// anomalous line truncates what resume trusts). The cost of an orphan
/// is therefore wasted remote cycles — and, in the worst interleave, one
/// more re-dispatch round — never a corrupted merge. Pools where
/// orphans are likely (flaky links, long cells) should set the host
/// failure budget to 1 so a killed host is evicted rather than reused.
pub struct SshCommand {
    host: String,
    addr: String,
    remote_dir: String,
    command: Vec<String>,
    ssh: Vec<String>,
    scp: Vec<String>,
}

impl SshCommand {
    /// A remote host named `host`, reached at `addr` (an ssh destination
    /// like `user@node7`), working under `remote_dir`, running `command`
    /// (argv template, `{grid}`/`{profile}` substituted per task).
    ///
    /// # Panics
    ///
    /// Panics if `command` is empty.
    pub fn new(
        host: impl Into<String>,
        addr: impl Into<String>,
        remote_dir: impl Into<String>,
        command: Vec<String>,
    ) -> Self {
        assert!(!command.is_empty(), "worker command must name a program");
        SshCommand {
            host: host.into(),
            addr: addr.into(),
            remote_dir: remote_dir.into(),
            command,
            ssh: vec![
                "ssh".to_string(),
                "-o".to_string(),
                "BatchMode=yes".to_string(),
            ],
            scp: vec![
                "scp".to_string(),
                "-q".to_string(),
                "-o".to_string(),
                "BatchMode=yes".to_string(),
            ],
        }
    }

    fn remote_manifest(&self, task: &ShardTask) -> String {
        format!("{}/{}", self.remote_dir, task.manifest_file_name())
    }

    /// Single-quotes `s` for a POSIX shell (the remote side of every ssh
    /// invocation is a shell command line).
    fn shell_quote(s: &str) -> String {
        format!("'{}'", s.replace('\'', "'\\''"))
    }

    /// The remote command line `launch` runs: create the work directory,
    /// then the worker with its shard environment.
    fn remote_launch_command(&self, task: &ShardTask) -> String {
        let argv: Vec<String> = substitute(&self.command, task)
            .iter()
            .map(|a| Self::shell_quote(a))
            .collect();
        format!(
            "mkdir -p {dir} && cd {dir} && REUNION_SHARD={shard} REUNION_OUT_DIR=. {cmd}",
            dir = Self::shell_quote(&self.remote_dir),
            shard = task.shard,
            cmd = argv.join(" "),
        )
    }

    /// The full local argv `launch` spawns (exposed for tests: ssh
    /// command construction is verifiable without an ssh server).
    pub fn launch_argv(&self, task: &ShardTask) -> Vec<String> {
        let mut argv = self.ssh.clone();
        argv.push(self.addr.clone());
        argv.push(self.remote_launch_command(task));
        argv
    }

    /// The local argv used to tail the remote manifest.
    pub fn tail_argv(&self, task: &ShardTask) -> Vec<String> {
        let mut argv = self.ssh.clone();
        argv.push(self.addr.clone());
        argv.push(format!(
            "cat {}",
            Self::shell_quote(&self.remote_manifest(task))
        ));
        argv
    }

    /// The local argv used to seed a partial manifest (text arrives on
    /// the remote shell's stdin).
    pub fn seed_argv(&self, task: &ShardTask) -> Vec<String> {
        let mut argv = self.ssh.clone();
        argv.push(self.addr.clone());
        argv.push(format!(
            "mkdir -p {dir} && cat > {path}",
            dir = Self::shell_quote(&self.remote_dir),
            path = Self::shell_quote(&self.remote_manifest(task)),
        ));
        argv
    }

    /// The local argv used to fetch the finished manifest into `dest`.
    pub fn collect_argv(&self, task: &ShardTask, dest: &Path) -> Vec<String> {
        let mut argv = self.scp.clone();
        argv.push(format!("{}:{}", self.addr, self.remote_manifest(task)));
        argv.push(dest.join(task.manifest_file_name()).display().to_string());
        argv
    }

    fn err(&self, detail: impl fmt::Display) -> DispatchError {
        DispatchError::Transport {
            host: self.host.clone(),
            detail: detail.to_string(),
        }
    }
}

impl Transport for SshCommand {
    fn host(&self) -> &str {
        &self.host
    }

    fn launch(&self, task: &ShardTask) -> Result<Box<dyn WorkerHandle>, DispatchError> {
        let argv = self.launch_argv(task);
        let child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| self.err(format!("cannot launch {:?}: {e}", argv[0])))?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn manifest_text(&self, task: &ShardTask) -> Result<Option<String>, DispatchError> {
        let argv = self.tail_argv(task);
        let out = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::null())
            .output()
            .map_err(|e| self.err(format!("cannot run {:?}: {e}", argv[0])))?;
        if out.status.success() {
            Ok(Some(String::from_utf8_lossy(&out.stdout).into_owned()))
        } else {
            // `cat` of a not-yet-created manifest and an unreachable host
            // both land here; the distinction doesn't matter to the
            // dispatcher — either way there is no progress to observe,
            // and the lease decides when that becomes a failure.
            Ok(None)
        }
    }

    fn seed_manifest(&self, task: &ShardTask, text: &str) -> Result<(), DispatchError> {
        let argv = self.seed_argv(task);
        let mut child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| self.err(format!("cannot run {:?}: {e}", argv[0])))?;
        child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(text.as_bytes())
            .map_err(|e| self.err(e))?;
        let status = child.wait().map_err(|e| self.err(e))?;
        if status.success() {
            Ok(())
        } else {
            Err(self.err(format!("seed command exited with {status}")))
        }
    }

    fn collect(&self, task: &ShardTask, dest: &Path) -> Result<PathBuf, DispatchError> {
        std::fs::create_dir_all(dest).map_err(|e| self.err(e))?;
        let argv = self.collect_argv(task, dest);
        let status = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::null())
            .status()
            .map_err(|e| self.err(format!("cannot run {:?}: {e}", argv[0])))?;
        if status.success() {
            Ok(dest.join(task.manifest_file_name()))
        } else {
            Err(self.err(format!("scp exited with {status}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> ShardTask {
        ShardTask {
            grid_id: "fig5".to_string(),
            shard: ShardSpec::new(2, 3),
            profile: "full".to_string(),
        }
    }

    #[test]
    fn placeholders_substitute_per_task() {
        let argv = substitute(
            &[
                "/bins/{grid}".to_string(),
                "--profile".to_string(),
                "{profile}".to_string(),
            ],
            &task(),
        );
        assert_eq!(argv, ["/bins/fig5", "--profile", "full"]);
    }

    #[test]
    fn ssh_launch_command_carries_shard_environment() {
        let ssh = SshCommand::new(
            "beta",
            "user@beta",
            "/scratch/reunion",
            vec![
                "bin/{grid}".to_string(),
                "--profile".to_string(),
                "{profile}".to_string(),
            ],
        );
        let argv = ssh.launch_argv(&task());
        assert_eq!(argv[0], "ssh");
        assert!(argv.contains(&"BatchMode=yes".to_string()));
        assert_eq!(argv[argv.len() - 2], "user@beta");
        let remote = argv.last().unwrap();
        assert!(remote.contains("REUNION_SHARD=2/3"), "{remote}");
        assert!(remote.contains("mkdir -p '/scratch/reunion'"), "{remote}");
        assert!(remote.contains("'bin/fig5' '--profile' 'full'"), "{remote}");
    }

    #[test]
    fn ssh_tail_seed_collect_name_the_manifest() {
        let ssh = SshCommand::new("beta", "user@beta", "/scratch", vec!["w".to_string()]);
        let manifest = "MANIFEST_fig5.shard2of3.jsonl";
        assert!(ssh.tail_argv(&task()).last().unwrap().contains(manifest));
        assert!(ssh.seed_argv(&task()).last().unwrap().contains(manifest));
        let collect = ssh.collect_argv(&task(), Path::new("/tmp/merge"));
        assert_eq!(collect[0], "scp");
        assert!(collect
            .iter()
            .any(|a| a == &format!("user@beta:/scratch/{manifest}")));
        assert!(collect.last().unwrap().ends_with(manifest));
    }

    #[test]
    fn shell_quoting_survives_embedded_quotes() {
        assert_eq!(SshCommand::shell_quote("a b"), "'a b'");
        assert_eq!(SshCommand::shell_quote("a'b"), "'a'\\''b'");
    }

    #[test]
    fn local_manifest_text_distinguishes_missing_from_unreadable() {
        let dir = std::env::temp_dir().join(format!("reunion-transport-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let local = LocalProcess::new("alpha", &dir, vec!["true".to_string()]);
        let t = task();
        assert_eq!(local.manifest_text(&t).unwrap(), None);
        local.seed_manifest(&t, "seeded\n").unwrap();
        assert_eq!(
            local.manifest_text(&t).unwrap().as_deref(),
            Some("seeded\n")
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

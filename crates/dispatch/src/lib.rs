//! Distributed shard dispatcher: drives a sharded experiment campaign
//! across a fault-tolerant pool of hosts.
//!
//! `reunion-sim` made grids shardable and resumable: `REUNION_SHARD=i/N`
//! runs one deterministic slice of a grid into a crash-safe manifest, and
//! merging a complete partition reproduces the single-process
//! `BENCH_<id>.json` byte for byte. What remained manual was the campaign
//! itself — launching the shards somewhere, noticing when a machine dies
//! or wedges, re-running its slice, and collecting the manifests. This
//! crate is that driver:
//!
//! * [`HostPool`] — the declarative pool: hosts with a name, a transport
//!   kind, and a capacity (concurrent shards), parsed from a small TOML
//!   subset or JSON (see [`HostPool::parse`]).
//! * [`Transport`] — the pluggable host interface: launch a shard worker,
//!   tail its manifest, seed a resume, fetch the finished manifest.
//!   [`LocalProcess`] spawns the existing experiment binaries as child
//!   processes (one work directory per host); [`SshCommand`] shells out to
//!   `ssh`/`scp`, with the manifest format as the only contract.
//! * [`Dispatcher`] — the lifecycle: assign shards to hosts up to
//!   capacity, monitor progress by tailing the crash-safe
//!   `MANIFEST_*.jsonl` files, detect dead workers (exit without a
//!   complete manifest) and stalled ones (no new cell within the lease),
//!   evict hosts that keep failing, and re-dispatch their shards to
//!   healthy hosts — *seeding* the partial manifest so the replacement
//!   resumes instead of restarting (safe because manifests resume
//!   idempotently). When every shard has landed, the collected manifests
//!   merge into a `BENCH_<id>.json` byte-identical to a single-process
//!   run.
//!
//! Determinism is inherited, not re-proven: the dispatcher only moves
//! manifest bytes around, and `reunion_sim::merge_manifests` guarantees
//! the merged report equals the single-process one regardless of which
//! host computed which cell, how many times a shard was re-dispatched, or
//! how much of it was resumed from a dead host's partial manifest.
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use reunion_dispatch::{DispatchConfig, Dispatcher, HostPool};
//!
//! let pool = HostPool::parse(
//!     "pool.toml",
//!     "[[host]]\nname = \"alpha\"\ntransport = \"local\"\ncapacity = 2\n",
//! )
//! .unwrap();
//! let cfg = DispatchConfig::new("fig5", 4, "campaign/merged")
//!     .lease(Duration::from_secs(600))
//!     .profile("full");
//! let report = Dispatcher::new(cfg, pool.build_transports(&Default::default()).unwrap())
//!     .run()
//!     .unwrap();
//! println!("merged: {}", report.bench_path.display());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dispatcher;
mod pool;
mod transport;

pub use dispatcher::{
    Attempt, AttemptOutcome, DispatchConfig, DispatchReport, Dispatcher, FailureInjection,
};
pub use pool::{HostPool, HostSpec, HostTransports, TransportDefaults, TransportKind};
pub use transport::{
    DispatchError, LocalProcess, ProcessHandle, ShardTask, SshCommand, Transport, WorkerHandle,
    WorkerStatus,
};

//! Criterion microbenchmarks of the simulator substrates.
//!
//! These measure *simulator* throughput (host time), complementing the
//! experiment binaries which measure *simulated* performance. They catch
//! regressions in the hot paths: cache lookups, fingerprint hashing, memory
//! accesses, core ticks and whole-system ticks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use reunion_core::{CmpSystem, ExecutionMode, SystemConfig};
use reunion_cpu::{Core, CoreConfig};
use reunion_fingerprint::{Crc, FingerprintUnit, TwoStageCompressor, UpdateRecord};
use reunion_isa::{Addr, Instruction, Program, RegId};
use reunion_kernel::Cycle;
use reunion_mem::{CacheArray, MemConfig, MemorySystem, Owner, PhantomStrength};
use reunion_workloads::Workload;

fn bench_cache_array(c: &mut Criterion) {
    let mut cache: CacheArray<u8> = CacheArray::new(1024, 2);
    for line in 0..1024u64 {
        cache.insert(line, 0);
    }
    let mut line = 0u64;
    c.bench_function("cache_array_lookup_hit", |b| {
        b.iter(|| {
            line = (line + 7) % 1024;
            black_box(cache.lookup(black_box(line)).is_some())
        })
    });
    c.bench_function("cache_array_insert_evict", |b| {
        b.iter(|| {
            line = line.wrapping_add(4097);
            black_box(cache.insert(black_box(line), 1))
        })
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut crc = Crc::new_16();
    c.bench_function("crc16_consume_u64", |b| {
        b.iter(|| {
            crc.consume_u64(black_box(0xDEAD_BEEF_CAFE_F00D));
            black_box(crc.value())
        })
    });
    let mut unit = FingerprintUnit::new(16);
    let rec = UpdateRecord::load(3, 42, 0x1000);
    c.bench_function("fingerprint_absorb_emit", |b| {
        b.iter(|| {
            unit.absorb(black_box(&rec));
            black_box(unit.emit())
        })
    });
    let mut two = TwoStageCompressor::new(16);
    let words = [1u64, 2, 3, 4];
    c.bench_function("two_stage_absorb_cycle", |b| {
        b.iter(|| {
            two.absorb_cycle(black_box(&words));
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    let mut mem = MemorySystem::new(MemConfig::default());
    let vocal = mem.register_l1(Owner::vocal(0));
    let mute = mem.register_l1(Owner::mute(0));
    let mut now = 0u64;
    let mut addr = 0u64;
    c.bench_function("memsys_vocal_load", |b| {
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(4096) & 0xF_FFFF;
            black_box(mem.load(
                Cycle::new(now),
                vocal,
                Addr::new(addr),
                PhantomStrength::Global,
            ))
        })
    });
    c.bench_function("memsys_phantom_load", |b| {
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(4096) & 0xF_FFFF;
            black_box(mem.load(
                Cycle::new(now),
                mute,
                Addr::new(addr),
                PhantomStrength::Global,
            ))
        })
    });
}

fn bench_core_tick(c: &mut Criterion) {
    let program = Arc::new(
        Program::new(
            "bench",
            vec![
                Instruction::add_imm(RegId::new(1), RegId::new(1), 1),
                Instruction::alu_imm(reunion_isa::AluOp::Xor, RegId::new(2), RegId::new(1), 3),
                Instruction::jump(0),
            ],
        )
        .unwrap(),
    );
    let mut mem = MemorySystem::new(MemConfig::small());
    let l1 = mem.register_l1(Owner::vocal(0));
    let mut core = Core::new(CoreConfig::default(), program, l1, 1);
    let mut now = 0u64;
    c.bench_function("core_tick_alu_loop", |b| {
        b.iter(|| {
            core.tick(Cycle::new(now), &mut mem);
            now += 1;
        })
    });
}

fn bench_system_tick(c: &mut Criterion) {
    let workload = Workload::by_name("sparse").unwrap();
    let mut baseline = CmpSystem::new(
        &SystemConfig::small_test(ExecutionMode::NonRedundant),
        &workload,
    );
    c.bench_function("system_tick_nonredundant", |b| {
        b.iter(|| baseline.tick())
    });
    let mut reunion = CmpSystem::new(
        &SystemConfig::small_test(ExecutionMode::Reunion),
        &workload,
    );
    c.bench_function("system_tick_reunion", |b| b.iter(|| reunion.tick()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_array, bench_fingerprint, bench_memory_system, bench_core_tick, bench_system_tick
}
criterion_main!(benches);

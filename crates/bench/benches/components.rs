//! Microbenchmarks of the simulator substrates.
//!
//! These measure *simulator* throughput (host time), complementing the
//! experiment binaries which measure *simulated* performance. They catch
//! regressions in the hot paths: cache lookups, fingerprint hashing, memory
//! accesses, core ticks and whole-system ticks.
//!
//! The build container has no network access, so instead of criterion this
//! uses a small local harness (`harness = false` in Cargo.toml): each
//! benchmark is warmed, then timed over enough iterations to fill a fixed
//! measurement budget, and the best-of-N samples ns/iter is reported.
//!
//! Wall-clock numbers are machine-dependent and therefore not gated in
//! CI. `REUNION_BENCH_COUNTERS=1` switches the harness to a
//! *deterministic counters* mode instead: no timing at all — a fixed
//! reference grid is executed and machine-independent work counters
//! (cells executed, instructions and cycles simulated, scheduler steals
//! under a fixed drain schedule) are printed as stable `counter <name>
//! <value>` lines. Those ARE gated: CI diffs them against
//! `baselines/BENCH_counters.txt`, so a change to how much work the
//! simulator does per cell shows up even on shared runners where ns/iter
//! cannot be trusted.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use reunion_core::{CmpSystem, ExecutionMode, SampleConfig, SystemConfig};
use reunion_cpu::{Core, CoreConfig};
use reunion_fingerprint::{Crc, FingerprintUnit, TwoStageCompressor, UpdateRecord};
use reunion_isa::{Addr, Instruction, Program, RegId};
use reunion_kernel::Cycle;
use reunion_mem::{CacheArray, MemConfig, MemorySystem, Owner, PhantomStrength};
use reunion_sim::{CellQueue, ConfigPatch, ExperimentGrid, RunOptions};
use reunion_workloads::Workload;

/// Minimal stand-in for criterion's driver: `bench_function` + `Bencher::iter`.
struct Criterion {
    samples: usize,
    budget: Duration,
}

struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    fn new() -> Self {
        // Same typed resolution as the experiment binaries; a bench
        // harness has no flags of its own, so only the `REUNION_*`
        // environment (with its canonical precedence, legacy
        // `REUNION_FAST` spelling included) feeds the choice.
        let opts = match RunOptions::resolve(std::iter::empty(), &|k| std::env::var(k).ok()) {
            Ok((opts, _)) => opts,
            Err(e) => panic!("bad REUNION_* environment: {e}"),
        };
        let quick = opts.profile == reunion_core::Profile::Fast;
        Criterion {
            samples: if quick { 3 } else { 10 },
            budget: Duration::from_millis(if quick { 5 } else { 50 }),
        }
    }

    fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibration pass: find an iteration count that fills the budget.
        let mut b = Bencher {
            iters: 1_000,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos().max(1) as f64 / b.iters as f64;
        let iters = ((self.budget.as_nanos() as f64 / per_iter) as u64).clamp(100, 50_000_000);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        println!(
            "{name:<32} {best:>12.1} ns/iter   ({iters} iters x {} samples)",
            self.samples
        );
    }
}

fn bench_cache_array(c: &mut Criterion) {
    let mut cache: CacheArray<u8> = CacheArray::new(1024, 2);
    for line in 0..1024u64 {
        cache.insert(line, 0);
    }
    let mut line = 0u64;
    c.bench_function("cache_array_lookup_hit", |b| {
        b.iter(|| {
            line = (line + 7) % 1024;
            black_box(cache.lookup(black_box(line)).is_some())
        })
    });
    c.bench_function("cache_array_insert_evict", |b| {
        b.iter(|| {
            line = line.wrapping_add(4097);
            black_box(cache.insert(black_box(line), 1))
        })
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut crc = Crc::new_16();
    c.bench_function("crc16_consume_u64", |b| {
        b.iter(|| {
            crc.consume_u64(black_box(0xDEAD_BEEF_CAFE_F00D));
            black_box(crc.value())
        })
    });
    let mut unit = FingerprintUnit::new(16);
    let rec = UpdateRecord::load(3, 42, 0x1000);
    c.bench_function("fingerprint_absorb_emit", |b| {
        b.iter(|| {
            unit.absorb(black_box(&rec));
            black_box(unit.emit())
        })
    });
    let mut two = TwoStageCompressor::new(16);
    let words = [1u64, 2, 3, 4];
    c.bench_function("two_stage_absorb_cycle", |b| {
        b.iter(|| {
            two.absorb_cycle(black_box(&words));
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    let mut mem = MemorySystem::new(MemConfig::default());
    let vocal = mem.register_l1(Owner::vocal(0));
    let mute = mem.register_l1(Owner::mute(0));
    let mut now = 0u64;
    let mut addr = 0u64;
    c.bench_function("memsys_vocal_load", |b| {
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(4096) & 0xF_FFFF;
            black_box(mem.load(
                Cycle::new(now),
                vocal,
                Addr::new(addr),
                PhantomStrength::Global,
            ))
        })
    });
    c.bench_function("memsys_phantom_load", |b| {
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(4096) & 0xF_FFFF;
            black_box(mem.load(
                Cycle::new(now),
                mute,
                Addr::new(addr),
                PhantomStrength::Global,
            ))
        })
    });
}

fn bench_core_tick(c: &mut Criterion) {
    let program = Arc::new(
        Program::new(
            "bench",
            vec![
                Instruction::add_imm(RegId::new(1), RegId::new(1), 1),
                Instruction::alu_imm(reunion_isa::AluOp::Xor, RegId::new(2), RegId::new(1), 3),
                Instruction::jump(0),
            ],
        )
        .unwrap(),
    );
    let mut mem = MemorySystem::new(MemConfig::small());
    let l1 = mem.register_l1(Owner::vocal(0));
    let mut core = Core::new(CoreConfig::default(), program, l1, 1);
    let mut now = 0u64;
    c.bench_function("core_tick_alu_loop", |b| {
        b.iter(|| {
            core.tick(Cycle::new(now), &mut mem);
            now += 1;
        })
    });
}

fn bench_system_tick(c: &mut Criterion) {
    let workload = Workload::by_name("sparse").unwrap();
    let mut baseline = CmpSystem::new(
        &SystemConfig::small_test(ExecutionMode::NonRedundant),
        &workload,
    );
    c.bench_function("system_tick_nonredundant", |b| b.iter(|| baseline.tick()));
    let mut reunion = CmpSystem::new(&SystemConfig::small_test(ExecutionMode::Reunion), &workload);
    c.bench_function("system_tick_reunion", |b| b.iter(|| reunion.tick()));
}

/// The fixed reference grid the counters mode executes: two workloads of
/// different classes, both paired modes, two comparison latencies, under
/// the quick sampling profile — small enough for CI, wide enough that a
/// change to any hot path moves at least one counter.
fn counters_grid() -> ExperimentGrid {
    // The counters harness has no command line of its own, but the gate's
    // dense/skip contract (identical work counters, differing
    // `skipped_cycles`) is exercised by re-running under
    // `REUNION_ENGINE=dense`; resolve the run surface from the environment
    // and overlay it on the grid, exactly as the experiment binaries do.
    let opts = match RunOptions::resolve(std::iter::empty(), &|k| std::env::var(k).ok()) {
        Ok((opts, _)) => opts,
        Err(e) => panic!("bad REUNION_* environment: {e}"),
    };
    ExperimentGrid::builder("counters", "deterministic bench counters")
        .run_options(&opts)
        .base(SystemConfig::small_test)
        .sample(SampleConfig::quick())
        .workloads(vec![
            Workload::by_name("sparse").unwrap(),
            Workload::by_name("apache").unwrap(),
        ])
        .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
        .patches(vec![
            ConfigPatch::new("lat=0").latency(0),
            ConfigPatch::new("lat=10").latency(10),
        ])
        .build()
}

/// Deterministic-counters mode: machine-independent work counters over
/// the reference grid, printed as `counter <name> <value>` lines (and
/// nothing else on stdout, so CI can diff the output verbatim against
/// `baselines/BENCH_counters.txt`).
///
/// Cells are measured directly (equivalent to `Runner::serial().run`, cell
/// by cell) so the engine's `skipped_cycles` diagnostic — deliberately
/// absent from every `BENCH_<id>.json` field — is visible here: every
/// simulated-work counter must be identical between `REUNION_ENGINE=dense`
/// and `skip`, while `skipped_cycles` is the one line allowed to differ
/// (zero under dense, nonzero under the default skip engine).
fn report_counters() {
    let grid = counters_grid();
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let mut incoherence = 0u64;
    let mut serializing_stalls = 0u64;
    let mut skipped = 0u64;
    let mut peak_check_events = 0u64;
    let mut peak_store_chain = 0u64;
    let mut store_chain_spills = 0u64;
    for cell in grid.cells() {
        let cfg = grid.cell_config(cell);
        let n = reunion_core::normalized_ipc(&cfg, &cell.workload, grid.cell_sample(cell));
        for side in [&n.model, &n.baseline] {
            instructions += side.totals.user_instructions;
            cycles += side.totals.cycles;
            incoherence += side.totals.input_incoherence;
            serializing_stalls += side.totals.serializing_stall_cycles;
            skipped += side.skipped_cycles;
            // Allocation-sensitivity probes: peaks combine by max (order
            // independent), spill events by sum. A change in buffer
            // recycling or inline capacity moves these before it moves any
            // simulated-work counter.
            peak_check_events = peak_check_events.max(side.totals.peak_check_events);
            peak_store_chain = peak_store_chain.max(side.totals.peak_store_chain);
            store_chain_spills += side.totals.store_chain_spills;
        }
    }
    // Workload artifact cache population after the sweep. The grid's cells
    // hold clones of the builder's two workloads, so all cells of one
    // workload share one cache; count each underlying cache once.
    let mut seen = std::collections::BTreeSet::new();
    let mut cached_programs = 0usize;
    let mut cached_memories = 0usize;
    for cell in grid.cells() {
        if seen.insert(cell.workload.name()) {
            let (programs, memory) = cell.workload.cache_population();
            cached_programs += programs;
            cached_memories += usize::from(memory);
        }
    }
    // Scheduler steals under a fixed drain schedule: deal to four
    // workers, drain everything with worker 0 — every pop beyond worker
    // 0's own deque is a steal, deterministically.
    let indices: Vec<usize> = (0..grid.cells().len()).collect();
    let queue = CellQueue::new(&grid, &indices, 4);
    while queue.pop(0).is_some() {}
    println!("counter cells_executed {}", grid.cells().len());
    println!("counter instructions_simulated {instructions}");
    println!("counter cycles_simulated {cycles}");
    println!("counter input_incoherence_events {incoherence}");
    println!("counter serializing_stall_cycles {serializing_stalls}");
    println!("counter skipped_cycles {skipped}");
    println!("counter queue_steals_fixed_drain {}", queue.steals());
    println!("counter peak_check_events {peak_check_events}");
    println!("counter peak_store_chain {peak_store_chain}");
    println!("counter store_chain_spills {store_chain_spills}");
    println!("counter workload_programs_cached {cached_programs}");
    println!("counter workload_memories_cached {cached_memories}");
}

fn main() {
    if reunion_sim::env_flag("REUNION_BENCH_COUNTERS") {
        report_counters();
        return;
    }
    let mut c = Criterion::new();
    bench_cache_array(&mut c);
    bench_fingerprint(&mut c);
    bench_memory_system(&mut c);
    bench_core_tick(&mut c);
    bench_system_tick(&mut c);
}

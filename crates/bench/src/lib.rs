//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation by declaring an [`ExperimentGrid`] and handing it to
//! [`run_and_emit`]; the grid's cells execute in parallel
//! through [`reunion_sim::Runner`] and the resulting report both drives the
//! printed table and lands on disk as `BENCH_<id>.json`.
//! Run e.g. `cargo run --release -p reunion-bench --bin fig5`.
//!
//! Command line (shared by all eight figure/table binaries):
//!
//! * `--profile full|fast` — sampling profile: the paper's full
//!   methodology, or the shortened smoke/CI profile (see
//!   [`Profile`]).
//! * `--engine dense|skip` — timing engine: dense cycle stepping, or the
//!   default event-driven time-skipping engine. `BENCH_<id>.json` output is
//!   byte-identical between the two (gated by the engine-parity CI step).
//!
//! Environment knobs:
//!
//! * `REUNION_PROFILE=full|fast` — profile default when `--profile` is
//!   absent; `REUNION_FAST=1` is the legacy spelling of `fast`,
//! * `REUNION_ENGINE=dense|skip` — engine default when `--engine` is
//!   absent (default: `skip`),
//! * `REUNION_SHARD=i/N` — run only shard `i` of an `N`-way partition of
//!   the grid, appending per-cell results to a resumable manifest instead
//!   of writing `BENCH_<id>.json` (combine with `merge_shards`),
//! * `REUNION_SERIAL=1` — single-threaded execution (determinism checks),
//! * `REUNION_THREADS=<n>` — cap the worker threads,
//! * `REUNION_OUT_DIR=<dir>` — where `BENCH_<id>.json` reports and
//!   `MANIFEST_*.jsonl` shard manifests are written.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use reunion_core::{ClassSummary, SampleConfig};
use reunion_sim::{env_flag, out_dir, ExperimentGrid, ExperimentReport, Runner, ShardSpec};
use reunion_workloads::{suite, Workload, WorkloadClass};

pub use reunion_core::{Engine, Profile};

/// The comparison latencies of the paper's sensitivity sweeps — the shared
/// x-axis of Figure 6, Figure 7(b) and the SC ablation.
pub const SWEEP_LATENCIES: [u64; 5] = [0, 10, 20, 30, 40];

/// Canonical patch label for a latency sweep point (`"lat=10"`).
pub fn latency_label(latency: u64) -> String {
    format!("lat={latency}")
}

/// Canonical patch label for a two-axis sweep point (`"sw:lat=10"`), where
/// `key` names the second axis value (TLB model, consistency model, …).
pub fn keyed_latency_label(key: &str, latency: u64) -> String {
    format!("{key}:lat={latency}")
}

/// Options shared by every experiment binary, parsed by [`parse_opts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BenchOpts {
    /// The sampling profile the run measures under.
    pub profile: Profile,
    /// The timing engine simulations run under. `BENCH_<id>.json` output is
    /// byte-identical either way (the engine-parity CI job enforces it);
    /// `dense` exists for parity checks and as the reference semantics.
    pub engine: Engine,
}

impl BenchOpts {
    /// The sampling parameters the selected profile maps to.
    pub fn sample(&self) -> SampleConfig {
        self.profile.sample()
    }
}

/// Parses the shared experiment command line from `std::env::args`.
///
/// Precedence for the profile: `--profile full|fast` (also
/// `--profile=<p>`), then `REUNION_PROFILE`, then the legacy
/// `REUNION_FAST=1` spelling of `fast`, then the paper's full profile.
/// For the engine: `--engine dense|skip` (also `--engine=<e>`), then
/// `REUNION_ENGINE`, then the default skip engine; the winning choice is
/// exported back into `REUNION_ENGINE` so every [`reunion_core::SystemConfig`]
/// the run constructs — on any worker thread — picks it up.
/// Unrecognized arguments print usage and exit with status 2, so a typo
/// can never silently run the (expensive) default configuration.
pub fn parse_opts() -> BenchOpts {
    match try_parse_opts(std::env::args().skip(1)) {
        Ok(opts) => {
            std::env::set_var("REUNION_ENGINE", opts.engine.to_string());
            opts
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("usage: <binary> [--profile full|fast] [--engine dense|skip]");
            std::process::exit(2);
        }
    }
}

fn try_parse_opts(args: impl Iterator<Item = String>) -> Result<BenchOpts, String> {
    let mut profile = None;
    let mut engine = None;
    let mut it = args;
    while let Some(arg) = it.next() {
        if arg == "--profile" {
            let value = it.next().ok_or("--profile requires a value (full|fast)")?;
            profile = Some(value.parse()?);
        } else if let Some(value) = arg.strip_prefix("--profile=") {
            profile = Some(value.parse()?);
        } else if arg == "--engine" {
            let value = it.next().ok_or("--engine requires a value (dense|skip)")?;
            engine = Some(value.parse()?);
        } else if let Some(value) = arg.strip_prefix("--engine=") {
            engine = Some(value.parse()?);
        } else {
            return Err(format!("unrecognized argument {arg:?}"));
        }
    }
    let profile = match profile {
        Some(p) => p,
        None => match std::env::var("REUNION_PROFILE") {
            Ok(v) => v.parse().map_err(|e| format!("REUNION_PROFILE: {e}"))?,
            Err(_) if env_flag("REUNION_FAST") => Profile::Fast,
            Err(_) => Profile::Full,
        },
    };
    let engine = match engine {
        Some(e) => e,
        None => match std::env::var("REUNION_ENGINE") {
            Ok(v) => v.parse().map_err(|e| format!("REUNION_ENGINE: {e}"))?,
            Err(_) => Engine::default(),
        },
    };
    Ok(BenchOpts { profile, engine })
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// The workload suite in presentation order.
pub fn workloads() -> Vec<Workload> {
    suite()
}

/// The commercial (Web+OLTP+DSS) subset of the suite, in presentation
/// order — the population of Figures 7(b) and the SC ablation.
pub fn commercial_workloads() -> Vec<Workload> {
    suite()
        .into_iter()
        .filter(|w| w.class().is_commercial())
        .collect()
}

/// Executes the grid and persists its artifact.
///
/// This is the single entry point every experiment binary funnels through:
/// no binary runs simulations in a hand-rolled loop.
///
/// Without `REUNION_SHARD`, the whole grid runs on an
/// environment-configured [`Runner`], `BENCH_<id>.json` lands in
/// [`out_dir`], and the report is returned for table printing.
///
/// With `REUNION_SHARD=i/N`, only shard `i`'s cells run; each finished
/// cell streams to the shard's resumable manifest under [`out_dir`] and
/// `None` is returned — there is no complete report to print until every
/// shard has run and `merge_shards` has combined the manifests (the merged
/// `BENCH_<id>.json` is byte-identical to a single-process run's).
pub fn run_and_emit(grid: &ExperimentGrid) -> Option<ExperimentReport> {
    let runner = Runner::from_env();
    let shard = ShardSpec::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let Some(shard) = shard else {
        let report = runner.run(grid);
        match report.write_json_default() {
            Ok(path) => println!("[report: {}]", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", report.id),
        }
        return Some(report);
    };
    let dir = out_dir();
    match runner.run_shard(grid, shard, &dir) {
        Ok(outcome) => {
            println!(
                "[shard {shard} of {}: {} cells owned, {} resumed, {} executed]",
                grid.id(),
                outcome.owned_cells,
                outcome.resumed,
                outcome.executed,
            );
            println!("[manifest: {}]", outcome.manifest_path.display());
            println!(
                "[once all {} shards have run: merge_shards {}]",
                shard.count(),
                dir.display(),
            );
            None
        }
        Err(e) => {
            eprintln!("shard {shard} of {} failed: {e}", grid.id());
            std::process::exit(1);
        }
    }
}

/// Averages `(class, value)` pairs per class, in presentation order.
pub fn class_averages(rows: &[(WorkloadClass, f64)]) -> Vec<(WorkloadClass, f64)> {
    WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let mut summary = ClassSummary::new();
            for &(_, v) in rows.iter().filter(|(c, _)| *c == class) {
                summary.push(v);
            }
            (class, summary.mean())
        })
        .collect()
}

/// Averages values over the commercial (Web+OLTP+DSS) and scientific
/// workloads, the paper's two headline groups.
pub fn commercial_scientific_averages(rows: &[(WorkloadClass, f64)]) -> (f64, f64) {
    let mut commercial = ClassSummary::new();
    let mut scientific = ClassSummary::new();
    for &(class, value) in rows {
        if class.is_commercial() {
            commercial.push(value);
        } else {
            scientific.push(value);
        }
    }
    (commercial.mean(), scientific.mean())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchOpts, String> {
        try_parse_opts(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn profile_flag_both_spellings() {
        assert_eq!(
            parse(&["--profile", "fast"]).unwrap().profile,
            Profile::Fast
        );
        assert_eq!(parse(&["--profile=full"]).unwrap().profile, Profile::Full);
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--profile"]).is_err());
        assert!(parse(&["--profile", "slow"]).is_err());
        assert!(parse(&["--engine"]).is_err());
        assert!(parse(&["--engine", "sparse"]).is_err());
    }

    #[test]
    fn engine_flag_both_spellings_and_default() {
        assert_eq!(parse(&["--engine", "dense"]).unwrap().engine, Engine::Dense);
        assert_eq!(parse(&["--engine=skip"]).unwrap().engine, Engine::Skip);
        assert_eq!(
            parse(&["--profile", "fast"]).unwrap().engine,
            Engine::Skip,
            "skip is the default engine"
        );
    }

    #[test]
    fn class_averages_cover_all_classes() {
        let rows = vec![
            (WorkloadClass::Web, 0.9),
            (WorkloadClass::Web, 0.8),
            (WorkloadClass::Scientific, 0.5),
        ];
        let avgs = class_averages(&rows);
        assert_eq!(avgs.len(), 4);
        assert!((avgs[0].1 - 0.85).abs() < 1e-12);
        assert_eq!(avgs[3].1, 0.5);
    }

    #[test]
    fn commercial_scientific_split() {
        let rows = vec![
            (WorkloadClass::Oltp, 0.9),
            (WorkloadClass::Dss, 0.7),
            (WorkloadClass::Scientific, 0.5),
        ];
        let (c, s) = commercial_scientific_averages(&rows);
        assert!((c - 0.8).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn commercial_subset_is_proper() {
        let all = workloads().len();
        let commercial = commercial_workloads();
        assert!(!commercial.is_empty());
        assert!(commercial.len() < all);
        assert!(commercial.iter().all(|w| w.class().is_commercial()));
    }
}

//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation by declaring an [`ExperimentGrid`](reunion_sim::ExperimentGrid)
//! and handing it to [`run_and_emit`]; the grid's cells execute in parallel
//! through [`reunion_sim::Runner`] and the resulting report both drives the
//! printed table and lands on disk as `BENCH_<id>.json`.
//! Run e.g. `cargo run --release -p reunion-bench --bin fig5`.
//!
//! Environment knobs:
//!
//! * `REUNION_FAST=1` — shortened sampling profile for smoke runs,
//! * `REUNION_SERIAL=1` — single-threaded execution (determinism checks),
//! * `REUNION_THREADS=<n>` — cap the worker threads,
//! * `REUNION_OUT_DIR=<dir>` — where `BENCH_<id>.json` is written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reunion_core::{ClassSummary, SampleConfig};
use reunion_sim::{env_flag, ExperimentGrid, ExperimentReport, Runner};
use reunion_workloads::{suite, Workload, WorkloadClass};

/// The comparison latencies of the paper's sensitivity sweeps — the shared
/// x-axis of Figure 6, Figure 7(b) and the SC ablation.
pub const SWEEP_LATENCIES: [u64; 5] = [0, 10, 20, 30, 40];

/// Canonical patch label for a latency sweep point (`"lat=10"`).
pub fn latency_label(latency: u64) -> String {
    format!("lat={latency}")
}

/// Canonical patch label for a two-axis sweep point (`"sw:lat=10"`), where
/// `key` names the second axis value (TLB model, consistency model, …).
pub fn keyed_latency_label(key: &str, latency: u64) -> String {
    format!("{key}:lat={latency}")
}

/// The sampling profile used by all experiments: the paper's 100k-cycle
/// warm-up and 50k-cycle windows, or a quick profile when `REUNION_FAST=1`
/// is set.
pub fn sample_config() -> SampleConfig {
    if env_flag("REUNION_FAST") {
        SampleConfig {
            warmup: 20_000,
            window: 20_000,
            windows: 2,
        }
    } else {
        SampleConfig {
            warmup: 100_000,
            window: 50_000,
            windows: 4,
        }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// The workload suite in presentation order.
pub fn workloads() -> Vec<Workload> {
    suite()
}

/// The commercial (Web+OLTP+DSS) subset of the suite, in presentation
/// order — the population of Figures 7(b) and the SC ablation.
pub fn commercial_workloads() -> Vec<Workload> {
    suite()
        .into_iter()
        .filter(|w| w.class().is_commercial())
        .collect()
}

/// Executes the grid with an environment-configured
/// [`Runner`] and persists the report as `BENCH_<id>.json`.
///
/// This is the single entry point every experiment binary funnels through:
/// no binary runs simulations in a hand-rolled loop.
pub fn run_and_emit(grid: &ExperimentGrid) -> ExperimentReport {
    let runner = Runner::from_env();
    let report = runner.run(grid);
    match report.write_json_default() {
        Ok(path) => println!("[report: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_{}.json: {e}", report.id),
    }
    report
}

/// Averages `(class, value)` pairs per class, in presentation order.
pub fn class_averages(rows: &[(WorkloadClass, f64)]) -> Vec<(WorkloadClass, f64)> {
    WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let mut summary = ClassSummary::new();
            for &(_, v) in rows.iter().filter(|(c, _)| *c == class) {
                summary.push(v);
            }
            (class, summary.mean())
        })
        .collect()
}

/// Averages values over the commercial (Web+OLTP+DSS) and scientific
/// workloads, the paper's two headline groups.
pub fn commercial_scientific_averages(rows: &[(WorkloadClass, f64)]) -> (f64, f64) {
    let mut commercial = ClassSummary::new();
    let mut scientific = ClassSummary::new();
    for &(class, value) in rows {
        if class.is_commercial() {
            commercial.push(value);
        } else {
            scientific.push(value);
        }
    }
    (commercial.mean(), scientific.mean())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_averages_cover_all_classes() {
        let rows = vec![
            (WorkloadClass::Web, 0.9),
            (WorkloadClass::Web, 0.8),
            (WorkloadClass::Scientific, 0.5),
        ];
        let avgs = class_averages(&rows);
        assert_eq!(avgs.len(), 4);
        assert!((avgs[0].1 - 0.85).abs() < 1e-12);
        assert_eq!(avgs[3].1, 0.5);
    }

    #[test]
    fn commercial_scientific_split() {
        let rows = vec![
            (WorkloadClass::Oltp, 0.9),
            (WorkloadClass::Dss, 0.7),
            (WorkloadClass::Scientific, 0.5),
        ];
        let (c, s) = commercial_scientific_averages(&rows);
        assert!((c - 0.8).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn commercial_subset_is_proper() {
        let all = workloads().len();
        let commercial = commercial_workloads();
        assert!(!commercial.is_empty());
        assert!(commercial.len() < all);
        assert!(commercial.iter().all(|w| w.class().is_commercial()));
    }
}

//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation by declaring an [`ExperimentGrid`] and handing it to
//! [`run_and_emit`]; the grid's cells execute in parallel
//! through [`reunion_sim::Runner`] and the resulting report both drives the
//! printed table and lands on disk as `BENCH_<id>.json`.
//! Run e.g. `cargo run --release -p reunion-bench --bin fig5`.
//!
//! Command line and environment (shared by every binary through
//! [`run_options`] / [`reunion_sim::RunOptions`]) — a flag always wins
//! over its environment fallback:
//!
//! * `--profile full|fast` / `REUNION_PROFILE` (legacy `REUNION_FAST=1`)
//!   — sampling profile: the paper's full methodology, or the shortened
//!   smoke/CI profile (see [`Profile`]).
//! * `--engine dense|skip` / `REUNION_ENGINE` — timing engine: dense cycle
//!   stepping, or the default event-driven time-skipping engine.
//!   `BENCH_<id>.json` output is byte-identical between the two (gated by
//!   the engine-parity CI step).
//! * `--shard i/N` / `REUNION_SHARD=i/N` — run only shard `i` of an
//!   `N`-way partition of the grid, appending per-cell results to a
//!   resumable manifest instead of writing `BENCH_<id>.json` (combine
//!   with `merge_shards`).
//! * `--serial` / `REUNION_SERIAL=1` — single-threaded execution
//!   (determinism checks).
//! * `--threads <n>` / `REUNION_THREADS=<n>` — cap the worker threads.
//! * `--intracell-threads <n>` / `REUNION_INTRACELL_THREADS=<n>` — compute
//!   workers *inside* each simulated system's tick (the cell-level worker
//!   count shrinks so the product stays within the thread budget). Purely
//!   a scheduling choice: artifacts are byte-identical for every setting
//!   (gated by the intra-cell parity CI steps).
//! * `--obs` / `REUNION_OBS=1` and `--trace-cap <n>` /
//!   `REUNION_TRACE_CAP=<n>` — opt into the observability layer (latency
//!   histograms, stall/skip summaries and the bounded per-pair event
//!   trace); off by default so the gated artifacts stay byte-stable.
//! * `REUNION_OUT_DIR=<dir>` — where `BENCH_<id>.json` reports,
//!   `MANIFEST_*.jsonl` shard manifests and `TRACE_*.jsonl` dumps are
//!   written.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;

use reunion_core::ClassSummary;
use reunion_sim::{out_dir, ExperimentGrid, ExperimentReport, ShardRunOutcome};
use reunion_workloads::{kernel_suite, suite, Workload, WorkloadClass};

pub use reunion_core::{Engine, Profile};
pub use reunion_sim::{RunOptions, RUN_OPTIONS_USAGE};

/// The comparison latencies of the paper's sensitivity sweeps — the shared
/// x-axis of Figure 6, Figure 7(b) and the SC ablation.
pub const SWEEP_LATENCIES: [u64; 5] = [0, 10, 20, 30, 40];

/// Canonical patch label for a latency sweep point (`"lat=10"`).
pub fn latency_label(latency: u64) -> String {
    format!("lat={latency}")
}

/// Canonical patch label for a two-axis sweep point (`"sw:lat=10"`), where
/// `key` names the second axis value (TLB model, consistency model, …).
pub fn keyed_latency_label(key: &str, latency: u64) -> String {
    format!("{key}:lat={latency}")
}

/// Resolves the shared run options from the real command line and
/// environment, rejecting any argument the shared surface does not know.
///
/// The single entry point of the figure/table binaries: resolve via
/// [`RunOptions::parse_cli`] (flags win over `REUNION_*` fallbacks),
/// treat leftovers as usage errors (a typo must never silently run the
/// expensive default configuration), and export the winning choices back
/// into the environment so every [`reunion_core::SystemConfig`] and
/// [`reunion_sim::Runner`] constructed anywhere in the process — on any
/// worker thread — picks them up. Binaries with extra flags of their own
/// (`perf`, `dispatch`, the merge/compare tools) call
/// [`run_options_with_extras`] instead and consume the leftovers.
pub fn run_options() -> RunOptions {
    let (opts, leftovers) = run_options_with_extras();
    if let Some(extra) = leftovers.first() {
        usage_error(&format!("unrecognized argument {extra:?}"));
    }
    opts
}

/// Like [`run_options`], but hands back the arguments the shared surface
/// did not recognize (in their original order) for the caller to parse.
pub fn run_options_with_extras() -> (RunOptions, Vec<String>) {
    match RunOptions::parse_cli() {
        Ok((opts, leftovers)) => {
            opts.apply_env();
            (opts, leftovers)
        }
        Err(e) => usage_error(&e),
    }
}

/// Prints `message` plus the shared usage line and exits with status 2.
pub fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("usage: <binary> {RUN_OPTIONS_USAGE}");
    std::process::exit(2);
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// The workload suite in presentation order.
pub fn workloads() -> Vec<Workload> {
    suite()
}

/// The commercial (Web+OLTP+DSS) subset of the suite, in presentation
/// order — the population of Figures 7(b) and the SC ablation.
pub fn commercial_workloads() -> Vec<Workload> {
    suite()
        .into_iter()
        .filter(|w| w.class().is_commercial())
        .collect()
}

/// The real-code kernel suite (`asm/`), in presentation order — the
/// population of the `fig_kernels` binary.
pub fn kernel_workloads() -> Vec<Workload> {
    kernel_suite()
}

/// What [`run_and_emit`] did, stated explicitly instead of `Option`'s
/// ambiguous `None`: either a complete in-process run with its report (and
/// the artifact path, when writing it succeeded), or one shard of a
/// campaign whose report does not exist until `merge_shards` combines the
/// manifests.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The whole grid ran in-process; `BENCH_<id>.json` was written to
    /// `path` (`None` if the write failed — already warned about, and the
    /// in-memory report is still complete).
    Emitted {
        /// Where the artifact landed, if the write succeeded.
        path: Option<PathBuf>,
        /// The complete report, for table printing.
        report: ExperimentReport,
    },
    /// Only one shard ran; its cells streamed to a resumable manifest.
    Sharded(ShardRunOutcome),
}

impl RunOutcome {
    /// The complete report, if this run produced one.
    pub fn report(&self) -> Option<&ExperimentReport> {
        match self {
            RunOutcome::Emitted { report, .. } => Some(report),
            RunOutcome::Sharded(_) => None,
        }
    }

    /// Consumes the outcome into the complete report, if any — the pattern
    /// the table-printing binaries use:
    /// `let Some(report) = run_and_emit(&grid).into_report() else { return }`.
    pub fn into_report(self) -> Option<ExperimentReport> {
        match self {
            RunOutcome::Emitted { report, .. } => Some(report),
            RunOutcome::Sharded(_) => None,
        }
    }
}

/// Executes the grid and persists its artifact.
///
/// This is the single entry point every experiment binary funnels through:
/// no binary runs simulations in a hand-rolled loop.
///
/// Without `REUNION_SHARD`, the whole grid runs on an
/// environment-configured [`reunion_sim::Runner`], `BENCH_<id>.json` lands
/// in [`out_dir`], and [`RunOutcome::Emitted`] carries the report for
/// table printing.
///
/// With `REUNION_SHARD=i/N`, only shard `i`'s cells run; each finished
/// cell streams to the shard's resumable manifest under [`out_dir`] and
/// [`RunOutcome::Sharded`] is returned — there is no complete report to
/// print until every shard has run and `merge_shards` has combined the
/// manifests (the merged `BENCH_<id>.json` is byte-identical to a
/// single-process run's).
pub fn run_and_emit(grid: &ExperimentGrid) -> RunOutcome {
    let opts = match RunOptions::resolve(std::iter::empty(), &|k| std::env::var(k).ok()) {
        Ok((opts, _)) => opts,
        Err(e) => usage_error(&e),
    };
    let runner = opts.runner();
    let Some(shard) = opts.shard else {
        let report = runner.run(grid);
        let path = match report.write_json_default() {
            Ok(path) => {
                println!("[report: {}]", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: could not write BENCH_{}.json: {e}", report.id);
                None
            }
        };
        return RunOutcome::Emitted { path, report };
    };
    let dir = out_dir();
    match runner.run_shard(grid, shard, &dir) {
        Ok(outcome) => {
            println!(
                "[shard {shard} of {}: {} cells owned, {} resumed, {} executed]",
                grid.id(),
                outcome.owned_cells,
                outcome.resumed,
                outcome.executed,
            );
            println!("[manifest: {}]", outcome.manifest_path.display());
            println!(
                "[once all {} shards have run: merge_shards {}]",
                shard.count(),
                dir.display(),
            );
            RunOutcome::Sharded(outcome)
        }
        Err(e) => {
            eprintln!("shard {shard} of {} failed: {e}", grid.id());
            std::process::exit(1);
        }
    }
}

/// Averages `(class, value)` pairs per class, in presentation order.
pub fn class_averages(rows: &[(WorkloadClass, f64)]) -> Vec<(WorkloadClass, f64)> {
    WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let mut summary = ClassSummary::new();
            for &(_, v) in rows.iter().filter(|(c, _)| *c == class) {
                summary.push(v);
            }
            (class, summary.mean())
        })
        .collect()
}

/// Averages values over the commercial (Web+OLTP+DSS) and scientific
/// workloads, the paper's two headline groups.
pub fn commercial_scientific_averages(rows: &[(WorkloadClass, f64)]) -> (f64, f64) {
    let mut commercial = ClassSummary::new();
    let mut scientific = ClassSummary::new();
    for &(class, value) in rows {
        if class.is_commercial() {
            commercial.push(value);
        } else {
            scientific.push(value);
        }
    }
    (commercial.mean(), scientific.mean())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(args: &[&str]) -> Result<(RunOptions, Vec<String>), String> {
        RunOptions::resolve(args.iter().map(|s| s.to_string()), &|_| None)
    }

    // Flag parsing and env precedence are covered in depth by
    // `reunion_sim::RunOptions`'s own tests; these two pin the behaviours
    // the binaries' usage contract leans on.
    #[test]
    fn shared_flags_resolve_and_default() {
        let (o, leftovers) = resolve(&["--profile", "fast", "--engine=dense"]).unwrap();
        assert!(leftovers.is_empty());
        assert_eq!(o.profile, Profile::Fast);
        assert_eq!(o.engine, Engine::Dense);
        let (o, _) = resolve(&[]).unwrap();
        assert_eq!(o.engine, Engine::Skip, "skip is the default engine");
        assert_eq!(o.profile, Profile::Full);
        assert!(!o.observability.enabled, "observability is opt-in");
    }

    #[test]
    fn unknown_arguments_are_left_over_and_bad_values_rejected() {
        let (_, leftovers) = resolve(&["--wat", "--profile", "fast"]).unwrap();
        assert_eq!(leftovers, vec!["--wat"]);
        assert!(resolve(&["--profile"]).is_err());
        assert!(resolve(&["--profile", "slow"]).is_err());
        assert!(resolve(&["--engine", "sparse"]).is_err());
    }

    #[test]
    fn kernel_suite_is_disjoint_from_the_named_suite() {
        let named: std::collections::HashSet<_> = workloads().iter().map(|w| w.name()).collect();
        let kernels = kernel_workloads();
        assert_eq!(kernels.len(), 5);
        assert!(kernels.iter().all(|w| !named.contains(w.name())));
    }

    #[test]
    fn class_averages_cover_all_classes() {
        let rows = vec![
            (WorkloadClass::Web, 0.9),
            (WorkloadClass::Web, 0.8),
            (WorkloadClass::Scientific, 0.5),
        ];
        let avgs = class_averages(&rows);
        assert_eq!(avgs.len(), 4);
        assert!((avgs[0].1 - 0.85).abs() < 1e-12);
        assert_eq!(avgs[3].1, 0.5);
    }

    #[test]
    fn commercial_scientific_split() {
        let rows = vec![
            (WorkloadClass::Oltp, 0.9),
            (WorkloadClass::Dss, 0.7),
            (WorkloadClass::Scientific, 0.5),
        ];
        let (c, s) = commercial_scientific_averages(&rows);
        assert!((c - 0.8).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn commercial_subset_is_proper() {
        let all = workloads().len();
        let commercial = commercial_workloads();
        assert!(!commercial.is_empty());
        assert!(commercial.len() < all);
        assert!(commercial.iter().all(|w| w.class().is_commercial()));
    }
}

//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation; this library holds the common run/print machinery.
//! Run e.g. `cargo run --release -p reunion-bench --bin fig5`.
//!
//! Set `REUNION_FAST=1` to use a shortened sampling profile for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reunion_core::{ClassSummary, SampleConfig};
use reunion_workloads::{suite, Workload, WorkloadClass};

/// The sampling profile used by all experiments: the paper's 100k-cycle
/// warm-up and 50k-cycle windows, or a quick profile when `REUNION_FAST`
/// is set.
pub fn sample_config() -> SampleConfig {
    if std::env::var("REUNION_FAST").is_ok() {
        SampleConfig { warmup: 20_000, window: 20_000, windows: 2 }
    } else {
        SampleConfig { warmup: 100_000, window: 50_000, windows: 4 }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("==============================================================");
    println!("{id}: {caption}");
    println!("==============================================================");
}

/// The workload suite in presentation order.
pub fn workloads() -> Vec<Workload> {
    suite()
}

/// Averages `(class, value)` pairs per class, in presentation order.
pub fn class_averages(rows: &[(WorkloadClass, f64)]) -> Vec<(WorkloadClass, f64)> {
    WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let mut summary = ClassSummary::new();
            for &(c, v) in rows.iter().filter(|(c, _)| *c == class) {
                summary.push(v);
            }
            (class, summary.mean())
        })
        .collect()
}

/// Averages values over the commercial (Web+OLTP+DSS) and scientific
/// workloads, the paper's two headline groups.
pub fn commercial_scientific_averages(rows: &[(WorkloadClass, f64)]) -> (f64, f64) {
    let mut commercial = ClassSummary::new();
    let mut scientific = ClassSummary::new();
    for &(class, value) in rows {
        if class.is_commercial() {
            commercial.push(value);
        } else {
            scientific.push(value);
        }
    }
    (commercial.mean(), scientific.mean())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_averages_cover_all_classes() {
        let rows = vec![
            (WorkloadClass::Web, 0.9),
            (WorkloadClass::Web, 0.8),
            (WorkloadClass::Scientific, 0.5),
        ];
        let avgs = class_averages(&rows);
        assert_eq!(avgs.len(), 4);
        assert!((avgs[0].1 - 0.85).abs() < 1e-12);
        assert_eq!(avgs[3].1, 0.5);
    }

    #[test]
    fn commercial_scientific_split() {
        let rows = vec![
            (WorkloadClass::Oltp, 0.9),
            (WorkloadClass::Dss, 0.7),
            (WorkloadClass::Scientific, 0.5),
        ];
        let (c, s) = commercial_scientific_averages(&rows);
        assert!((c - 0.8).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }
}

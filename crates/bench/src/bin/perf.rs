//! Host-throughput harness: wall-clock cells/sec over a reference grid.
//!
//! Unlike the eight figure/table binaries (which measure *simulated*
//! performance and whose `BENCH_<id>.json` artifacts are fidelity-gated),
//! this binary measures how fast the *simulator itself* chews through
//! grid cells on the host. Its artifact, `BENCH_perf.json`, is
//! machine-dependent by design and therefore excluded from baseline
//! gating — CI uploads it as an inspection artifact only.
//!
//! ```text
//! cargo run --release -p reunion-bench --bin perf -- --grid fig5
//! ```
//!
//! Options: `--grid fig5|counters` (default `fig5`), plus the shared
//! `--profile full|fast` (default `fast` here — throughput does not need
//! the paper's full sampling depth) and `--engine dense|skip`.
//!
//! Cells are executed serially on one thread so the reported throughput
//! is a stable per-core number, unaffected by host load or worker count.

use std::time::Instant;

use reunion_bench::{banner, workloads, RunOptions};
use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
use reunion_sim::{out_dir, ConfigPatch, ExperimentGrid};
use reunion_workloads::Workload;

/// Which reference grid to time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GridChoice {
    /// The full Figure 5 grid: all 11 workloads, Strict and Reunion.
    Fig5,
    /// The small deterministic-counters grid (2 workloads, 2 modes,
    /// 2 latencies) — the one the CI perf-smoke job runs.
    Counters,
}

struct PerfOpts {
    grid: GridChoice,
    run: RunOptions,
}

fn parse_args() -> Result<PerfOpts, String> {
    // The shared surface resolves everything but `--grid`; throughput does
    // not need the paper's full sampling depth, so this binary defaults the
    // profile to `fast` (a `--profile` flag or REUNION_PROFILE/REUNION_FAST
    // environment setting still wins, as everywhere else).
    let (run, leftovers) = RunOptions::resolve(std::env::args().skip(1), &|k| {
        std::env::var(k)
            .ok()
            .or_else(|| (k == "REUNION_PROFILE").then(|| "fast".to_string()))
    })?;
    run.apply_env();
    let mut grid = GridChoice::Fig5;
    let mut it = leftovers.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--grid" {
            let v = it.next().ok_or("--grid requires a value")?;
            grid = parse_grid(&v)?;
        } else if let Some(v) = arg.strip_prefix("--grid=") {
            grid = parse_grid(v)?;
        } else {
            return Err(format!("unrecognized argument {arg:?}"));
        }
    }
    Ok(PerfOpts { grid, run })
}

fn parse_grid(s: &str) -> Result<GridChoice, String> {
    match s {
        "fig5" => Ok(GridChoice::Fig5),
        "counters" => Ok(GridChoice::Counters),
        other => Err(format!("unknown grid {other:?} (expected fig5|counters)")),
    }
}

fn build_grid(opts: &PerfOpts) -> ExperimentGrid {
    match opts.grid {
        GridChoice::Fig5 => ExperimentGrid::builder("perf-fig5", "perf: fig5 reference grid")
            .run_options(&opts.run)
            .sample(opts.run.profile.sample())
            .workloads(workloads())
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .build(),
        GridChoice::Counters => {
            ExperimentGrid::builder("perf-counters", "perf: counters reference grid")
                .run_options(&opts.run)
                .base(SystemConfig::small_test)
                .sample(SampleConfig::quick())
                .workloads(vec![
                    Workload::by_name("sparse").unwrap(),
                    Workload::by_name("apache").unwrap(),
                ])
                .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
                .patches(vec![
                    ConfigPatch::new("lat=0").latency(0),
                    ConfigPatch::new("lat=10").latency(10),
                ])
                .build()
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: perf [--grid fig5|counters] {}",
                reunion_bench::RUN_OPTIONS_USAGE
            );
            std::process::exit(2);
        }
    };
    banner("perf", "host throughput (wall-clock) over a reference grid");

    let grid = build_grid(&opts);
    let cells = grid.cells().len();
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let start = Instant::now();
    for cell in grid.cells() {
        let cfg = grid.cell_config(cell);
        let n = reunion_core::normalized_ipc(&cfg, &cell.workload, grid.cell_sample(cell));
        for side in [&n.model, &n.baseline] {
            instructions += side.totals.user_instructions;
            cycles += side.totals.cycles;
        }
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let rss = peak_rss_bytes();

    let cells_per_sec = cells as f64 / wall;
    let insns_per_sec = instructions as f64 / wall;
    let cycles_per_sec = cycles as f64 / wall;
    println!("grid               {} ({cells} cells)", grid.id());
    println!(
        "engine/profile     {}/{}",
        opts.run.engine, opts.run.profile
    );
    println!("wall seconds       {wall:.3}");
    println!("cells/sec          {cells_per_sec:.3}");
    println!("instructions/sec   {insns_per_sec:.0}");
    println!("cycles/sec         {cycles_per_sec:.0}");
    println!("peak RSS bytes     {rss}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"id\": \"perf\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"engine\": \"{}\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"cells\": {},\n",
            "  \"wall_seconds\": {:.6},\n",
            "  \"cells_per_sec\": {:.3},\n",
            "  \"instructions_simulated\": {},\n",
            "  \"instructions_per_sec\": {:.0},\n",
            "  \"cycles_simulated\": {},\n",
            "  \"cycles_per_sec\": {:.0},\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n",
        ),
        grid.id(),
        opts.run.engine,
        opts.run.profile,
        cells,
        wall,
        cells_per_sec,
        instructions,
        insns_per_sec,
        cycles,
        cycles_per_sec,
        rss,
    );
    let dir = out_dir();
    let path = dir.join("BENCH_perf.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("[report: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_perf.json: {e}"),
    }
}

//! Host-throughput harness: wall-clock cells/sec over a reference grid.
//!
//! Unlike the eight figure/table binaries (which measure *simulated*
//! performance and whose `BENCH_<id>.json` artifacts are fidelity-gated),
//! this binary measures how fast the *simulator itself* chews through
//! grid cells on the host. Its artifact, `BENCH_perf.json`, is
//! machine-dependent by design and therefore excluded from baseline
//! gating — CI uploads it as an inspection artifact only.
//!
//! ```text
//! cargo run --release -p reunion-bench --bin perf -- --grid fig5
//! ```
//!
//! Options: `--grid fig5|counters|scaling|kernels` (default `fig5`), plus
//! the shared `--profile full|fast` (default `fast` here — throughput does
//! not need the paper's full sampling depth), `--engine dense|skip` and
//! `--intracell-threads <n>`.
//!
//! Cells are executed serially on one thread so the reported throughput
//! is a stable per-core number, unaffected by host load or worker count.
//!
//! The `scaling` and `kernels` grids measure the intra-cell parallel tick
//! engine: every point is timed twice — once with the per-pair compute
//! phase in-place (serial), once with it fanned out to
//! `--intracell-threads` workers (default: all cores) — and the recorded
//! `speedup` is the cells/sec ratio. Both passes must simulate identical
//! instruction and cycle totals; the binary asserts that, so a throughput
//! record can never come from a diverged simulation.

use std::time::Instant;

use reunion_bench::{banner, kernel_workloads, workloads, RunOptions};
use reunion_core::{ExecutionMode, SampleConfig, SystemConfig};
use reunion_sim::{out_dir, ConfigPatch, ExperimentGrid};
use reunion_workloads::Workload;

/// Which reference grid to time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GridChoice {
    /// The full Figure 5 grid: all 11 workloads, Strict and Reunion.
    Fig5,
    /// The small deterministic-counters grid (2 workloads, 2 modes,
    /// 2 latencies) — the one the CI perf-smoke job runs.
    Counters,
    /// Intra-cell scaling sweep: 8- and 16-pair contended cells, each
    /// timed serial vs intra-cell-parallel.
    Scaling,
    /// The real-code kernel suite, timed serial vs intra-cell-parallel
    /// (a 1-pair system, so the expected speedup is ~1 — the point is
    /// recording that the engine does not *slow down* small cells).
    Kernels,
}

struct PerfOpts {
    grid: GridChoice,
    run: RunOptions,
}

fn parse_args() -> Result<PerfOpts, String> {
    // The shared surface resolves everything but `--grid`; throughput does
    // not need the paper's full sampling depth, so this binary defaults the
    // profile to `fast` (a `--profile` flag or REUNION_PROFILE/REUNION_FAST
    // environment setting still wins, as everywhere else).
    let (run, leftovers) = RunOptions::resolve(std::env::args().skip(1), &|k| {
        std::env::var(k)
            .ok()
            .or_else(|| (k == "REUNION_PROFILE").then(|| "fast".to_string()))
    })?;
    run.apply_env();
    let mut grid = GridChoice::Fig5;
    let mut it = leftovers.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--grid" {
            let v = it.next().ok_or("--grid requires a value")?;
            grid = parse_grid(&v)?;
        } else if let Some(v) = arg.strip_prefix("--grid=") {
            grid = parse_grid(v)?;
        } else {
            return Err(format!("unrecognized argument {arg:?}"));
        }
    }
    Ok(PerfOpts { grid, run })
}

fn parse_grid(s: &str) -> Result<GridChoice, String> {
    match s {
        "fig5" => Ok(GridChoice::Fig5),
        "counters" => Ok(GridChoice::Counters),
        "scaling" => Ok(GridChoice::Scaling),
        "kernels" => Ok(GridChoice::Kernels),
        other => Err(format!(
            "unknown grid {other:?} (expected fig5|counters|scaling|kernels)"
        )),
    }
}

/// Table 1 plus the contention models of the scaling study (`fig_scaling`):
/// a 4-port L1↔L2 crossbar and 4-deep per-bank queues.
fn scaling_base(mode: ExecutionMode) -> SystemConfig {
    let cfg = SystemConfig::table1(mode).with_seed(0x5EED_0009);
    let mem = cfg.mem.clone().with_xbar_ports(4).with_bank_queue_depth(4);
    cfg.with_mem(mem)
}

/// One point of the intra-cell sweep: a label plus the grid it times.
struct SweepPoint {
    label: String,
    grid: ExperimentGrid,
}

/// The grids the intra-cell sweep times, one per point.
fn sweep_points(opts: &PerfOpts) -> Vec<SweepPoint> {
    match opts.grid {
        GridChoice::Scaling => [8usize, 16]
            .iter()
            .map(|&pairs| {
                let label = format!("p{pairs}:bw2:lat=10");
                let grid = ExperimentGrid::builder(
                    format!("perf-scaling-p{pairs}"),
                    "perf: intra-cell scaling point",
                )
                .run_options(&opts.run)
                .base(scaling_base)
                .sample(opts.run.profile.sample())
                .workloads(vec![Workload::by_name("apache").unwrap()])
                .modes(&[ExecutionMode::Reunion])
                .patches(vec![ConfigPatch::new(label.clone())
                    .logical_processors(pairs)
                    .check_bandwidth(2)
                    .latency(10)])
                .build();
                SweepPoint { label, grid }
            })
            .collect(),
        GridChoice::Kernels => vec![SweepPoint {
            label: "kernels".to_string(),
            grid: ExperimentGrid::builder("perf-kernels", "perf: kernel suite")
                .run_options(&opts.run)
                .base(SystemConfig::kernel_pair)
                .sample(opts.run.profile.sample())
                .workloads(kernel_workloads())
                .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
                .build(),
        }],
        GridChoice::Fig5 | GridChoice::Counters => unreachable!("not a sweep grid"),
    }
}

/// Times one serial walk over `grid` with the per-pair compute phase on
/// `intracell` workers (0 = in place). Returns the wall seconds and the
/// simulated (instructions, cycles) totals for the cross-pass parity check.
fn time_grid(grid: &ExperimentGrid, intracell: usize) -> (f64, u64, u64) {
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let start = Instant::now();
    for cell in grid.cells() {
        let mut cfg = grid.cell_config(cell);
        cfg.intracell_threads = intracell;
        let n = reunion_core::normalized_ipc(&cfg, &cell.workload, grid.cell_sample(cell));
        for side in [&n.model, &n.baseline] {
            instructions += side.totals.user_instructions;
            cycles += side.totals.cycles;
        }
    }
    (
        start.elapsed().as_secs_f64().max(1e-9),
        instructions,
        cycles,
    )
}

/// The intra-cell sweep: every point timed serial then parallel, with the
/// speedup recorded to `BENCH_perf.json`. Never gated — but the two passes'
/// simulated totals must agree exactly, so the record is honest.
fn run_sweep(opts: &PerfOpts) {
    let threads = opts.run.intracell.filter(|&t| t >= 2).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    });
    let grid_name = match opts.grid {
        GridChoice::Scaling => "scaling",
        _ => "kernels",
    };
    println!(
        "{:<16} {:>6} {:>14} {:>14} {:>9}",
        "point", "cells", "serial c/s", "intracell c/s", "speedup"
    );
    let mut points_json = Vec::new();
    for point in sweep_points(opts) {
        let cells = point.grid.cells().len();
        let (serial_wall, si, sc) = time_grid(&point.grid, 0);
        let (par_wall, pi, pc) = time_grid(&point.grid, threads);
        assert_eq!(
            (si, sc),
            (pi, pc),
            "{}: intra-cell pass diverged from serial",
            point.label
        );
        let serial_cps = cells as f64 / serial_wall;
        let par_cps = cells as f64 / par_wall;
        let speedup = serial_wall / par_wall;
        println!(
            "{:<16} {:>6} {:>14.3} {:>14.3} {:>8.2}x",
            point.label, cells, serial_cps, par_cps, speedup
        );
        points_json.push(format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"cells\": {},\n",
                "      \"serial_wall_seconds\": {:.6},\n",
                "      \"serial_cells_per_sec\": {:.3},\n",
                "      \"intracell_wall_seconds\": {:.6},\n",
                "      \"intracell_cells_per_sec\": {:.3},\n",
                "      \"speedup\": {:.3}\n",
                "    }}",
            ),
            point.label, cells, serial_wall, serial_cps, par_wall, par_cps, speedup,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"id\": \"perf\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"engine\": \"{}\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"intracell_threads\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"points\": [\n{}\n  ],\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n",
        ),
        grid_name,
        opts.run.engine,
        opts.run.profile,
        threads,
        std::thread::available_parallelism().map_or(1, usize::from),
        points_json.join(",\n"),
        peak_rss_bytes(),
    );
    write_report(&json);
}

/// Writes `BENCH_perf.json` into the artifact directory.
fn write_report(json: &str) {
    let dir = out_dir();
    let path = dir.join("BENCH_perf.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("[report: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_perf.json: {e}"),
    }
}

fn build_grid(opts: &PerfOpts) -> ExperimentGrid {
    match opts.grid {
        GridChoice::Fig5 => ExperimentGrid::builder("perf-fig5", "perf: fig5 reference grid")
            .run_options(&opts.run)
            .sample(opts.run.profile.sample())
            .workloads(workloads())
            .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
            .build(),
        GridChoice::Counters => {
            ExperimentGrid::builder("perf-counters", "perf: counters reference grid")
                .run_options(&opts.run)
                .base(SystemConfig::small_test)
                .sample(SampleConfig::quick())
                .workloads(vec![
                    Workload::by_name("sparse").unwrap(),
                    Workload::by_name("apache").unwrap(),
                ])
                .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
                .patches(vec![
                    ConfigPatch::new("lat=0").latency(0),
                    ConfigPatch::new("lat=10").latency(10),
                ])
                .build()
        }
        GridChoice::Scaling | GridChoice::Kernels => {
            unreachable!("sweep grids go through run_sweep")
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: perf [--grid fig5|counters|scaling|kernels] {}",
                reunion_bench::RUN_OPTIONS_USAGE
            );
            std::process::exit(2);
        }
    };
    banner("perf", "host throughput (wall-clock) over a reference grid");

    if matches!(opts.grid, GridChoice::Scaling | GridChoice::Kernels) {
        run_sweep(&opts);
        return;
    }

    let grid = build_grid(&opts);
    let cells = grid.cells().len();
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let start = Instant::now();
    for cell in grid.cells() {
        let cfg = grid.cell_config(cell);
        let n = reunion_core::normalized_ipc(&cfg, &cell.workload, grid.cell_sample(cell));
        for side in [&n.model, &n.baseline] {
            instructions += side.totals.user_instructions;
            cycles += side.totals.cycles;
        }
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let rss = peak_rss_bytes();

    let cells_per_sec = cells as f64 / wall;
    let insns_per_sec = instructions as f64 / wall;
    let cycles_per_sec = cycles as f64 / wall;
    println!("grid               {} ({cells} cells)", grid.id());
    println!(
        "engine/profile     {}/{}",
        opts.run.engine, opts.run.profile
    );
    println!("wall seconds       {wall:.3}");
    println!("cells/sec          {cells_per_sec:.3}");
    println!("instructions/sec   {insns_per_sec:.0}");
    println!("cycles/sec         {cycles_per_sec:.0}");
    println!("peak RSS bytes     {rss}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"id\": \"perf\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"engine\": \"{}\",\n",
            "  \"profile\": \"{}\",\n",
            "  \"cells\": {},\n",
            "  \"wall_seconds\": {:.6},\n",
            "  \"cells_per_sec\": {:.3},\n",
            "  \"instructions_simulated\": {},\n",
            "  \"instructions_per_sec\": {:.0},\n",
            "  \"cycles_simulated\": {},\n",
            "  \"cycles_per_sec\": {:.0},\n",
            "  \"peak_rss_bytes\": {}\n",
            "}}\n",
        ),
        grid.id(),
        opts.run.engine,
        opts.run.profile,
        cells,
        wall,
        cells_per_sec,
        instructions,
        insns_per_sec,
        cycles,
        cycles_per_sec,
        rss,
    );
    write_report(&json);
}

//! Bench-trajectory regression gate.
//!
//! Compares every `BENCH_<id>.json` artifact in a baseline directory
//! against a freshly generated candidate directory and fails (exit code 1)
//! on drift: structural differences always fail, numeric leaves fail when
//! they disagree beyond a relative tolerance. The simulator is fully
//! deterministic, so matching commits produce byte-identical artifacts and
//! the tolerance only exists as headroom for intentional, reviewed
//! refreshes of the baselines.
//!
//! ```text
//! compare_trajectory <baseline_dir> <candidate_dir> [--tolerance <rel>]
//! ```
//!
//! The candidate directory may hold `BENCH_<id>.json` files, shard
//! manifests (`MANIFEST_*.jsonl`) from a sharded run, or a mix: any
//! complete manifest group without a corresponding `BENCH_<id>.json` is
//! merged in memory first — merged output is byte-identical to a
//! single-process run, so it gates identically. An *incomplete* manifest
//! group is a failure, not a skip: a half-run campaign must never pass as
//! "no drift".
//!
//! To accept an intentional change, regenerate the baselines locally:
//!
//! ```text
//! REUNION_OUT_DIR=baselines cargo run --release -p reunion-bench --bin <id> -- --profile fast
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use reunion_bench::run_options_with_extras;
use reunion_sim::{find_manifests, merge_manifests, parse_json, JsonValue};

/// Default relative tolerance for numeric leaves.
const DEFAULT_TOLERANCE: f64 = 0.02;
/// Absolute slack for values near zero, where relative error is undefined.
const ABS_EPSILON: f64 = 1e-9;

struct Drift {
    path: String,
    detail: String,
}

fn main() -> ExitCode {
    // Shared surface first (uniform flag/environment handling); this
    // tool's own --tolerance flag and the two positional directories come
    // back as leftovers.
    let (_, args) = run_options_with_extras();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a non-negative number");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            dirs.push(arg.clone());
        }
    }
    let [baseline_dir, candidate_dir] = dirs.as_slice() else {
        eprintln!("usage: compare_trajectory <baseline_dir> <candidate_dir> [--tolerance <rel>]");
        return ExitCode::FAILURE;
    };

    let baselines = match bench_files(Path::new(baseline_dir)) {
        Ok(files) if !files.is_empty() => files,
        Ok(_) => {
            eprintln!("no BENCH_*.json files found under {baseline_dir}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot read {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let candidates = match candidate_artifacts(Path::new(candidate_dir)) {
        Ok(c) => c,
        Err(errors) => {
            for e in errors {
                println!("FAIL {e}");
            }
            println!("trajectory drift detected; refresh baselines/ if the change is intentional");
            return ExitCode::FAILURE;
        }
    };
    // A candidate artifact with no checked-in baseline is drift too: a
    // newly added binary must land with its baseline or it is never gated.
    for name in candidates.keys() {
        if !baselines
            .iter()
            .any(|b| b.file_name().is_some_and(|n| n.to_string_lossy() == *name))
        {
            failed = true;
            println!("FAIL {name}: no baseline under {baseline_dir}; add one");
        }
    }
    for base_path in baselines {
        let name = base_path
            .file_name()
            .expect("listed file")
            .to_string_lossy()
            .to_string();
        match compare_against(&base_path, candidates.get(&name), tolerance) {
            Ok(drifts) if drifts.is_empty() => {
                println!("OK   {name}");
            }
            Ok(drifts) => {
                failed = true;
                println!("FAIL {name}: {} drift(s)", drifts.len());
                for d in drifts.iter().take(20) {
                    println!("       {}: {}", d.path, d.detail);
                }
                if drifts.len() > 20 {
                    println!("       ... and {} more", drifts.len() - 20);
                }
            }
            Err(e) => {
                failed = true;
                println!("FAIL {name}: {e}");
            }
        }
    }
    if failed {
        println!("trajectory drift detected; refresh baselines/ if the change is intentional");
        ExitCode::FAILURE
    } else {
        println!("all trajectories within tolerance {tolerance}");
        ExitCode::SUCCESS
    }
}

/// All `BENCH_*.json` files directly under `dir`, sorted by name.
fn bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// The candidate artifacts under `dir`, keyed by `BENCH_<id>.json` file
/// name: on-disk report files, plus in-memory merges of any complete shard
/// manifest group that has no report file yet.
fn candidate_artifacts(dir: &Path) -> Result<BTreeMap<String, JsonValue>, Vec<String>> {
    let mut artifacts = BTreeMap::new();
    let mut errors = Vec::new();
    for path in bench_files(dir).unwrap_or_default() {
        let name = path
            .file_name()
            .expect("listed file")
            .to_string_lossy()
            .to_string();
        match std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read candidate {}: {e}", path.display()))
            .and_then(|text| {
                parse_json(&text).map_err(|e| format!("candidate {}: {e}", path.display()))
            }) {
            Ok(v) => {
                artifacts.insert(name, v);
            }
            Err(e) => errors.push(e),
        }
    }
    for (id, paths) in find_manifests(dir).ok().unwrap_or_default() {
        let name = format!("BENCH_{id}.json");
        if artifacts.contains_key(&name) {
            continue;
        }
        match merge_manifests(&paths) {
            Ok(report) => {
                let v = parse_json(&report.to_json()).expect("report JSON always parses");
                artifacts.insert(name, v);
            }
            Err(e) => errors.push(format!("{name}: cannot merge shard manifests: {e}")),
        }
    }
    if errors.is_empty() {
        Ok(artifacts)
    } else {
        Err(errors)
    }
}

fn compare_against(
    base: &Path,
    cand: Option<&JsonValue>,
    tolerance: f64,
) -> Result<Vec<Drift>, String> {
    let cand_json = cand.ok_or_else(|| {
        "missing candidate (no report file or complete manifest group)".to_string()
    })?;
    let base_text = std::fs::read_to_string(base)
        .map_err(|e| format!("cannot read baseline {}: {e}", base.display()))?;
    let base_json =
        parse_json(&base_text).map_err(|e| format!("baseline {}: {e}", base.display()))?;
    let mut drifts = Vec::new();
    compare_values(&base_json, cand_json, tolerance, "$", &mut drifts);
    Ok(drifts)
}

fn compare_values(a: &JsonValue, b: &JsonValue, tol: f64, path: &str, out: &mut Vec<Drift>) {
    match (a, b) {
        (JsonValue::Num(x), JsonValue::Num(y)) => {
            let scale = x.abs().max(y.abs());
            if (x - y).abs() > tol * scale + ABS_EPSILON {
                out.push(Drift {
                    path: path.to_string(),
                    detail: format!("baseline {x} vs candidate {y}"),
                });
            }
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            if xs.len() != ys.len() {
                out.push(Drift {
                    path: path.to_string(),
                    detail: format!("array length {} vs {}", xs.len(), ys.len()),
                });
                return;
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                compare_values(x, y, tol, &format!("{path}[{i}]"), out);
            }
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            for (k, _) in ys.iter().filter(|(k, _)| a.get(k).is_none()) {
                out.push(Drift {
                    path: format!("{path}.{k}"),
                    detail: "unexpected key in candidate".to_string(),
                });
            }
            for (k, x) in xs {
                match b.get(k) {
                    Some(y) => compare_values(x, y, tol, &format!("{path}.{k}"), out),
                    None => out.push(Drift {
                        path: format!("{path}.{k}"),
                        detail: "missing key in candidate".to_string(),
                    }),
                }
            }
        }
        _ if a == b => {}
        _ => out.push(Drift {
            path: path.to_string(),
            detail: format!("baseline {a:?} vs candidate {b:?}"),
        }),
    }
}

//! Bench-trajectory regression gate.
//!
//! Compares every `BENCH_<id>.json` artifact in a baseline directory
//! against a freshly generated candidate directory and fails (exit code 1)
//! on drift: structural differences always fail, numeric leaves fail when
//! they disagree beyond a relative tolerance. The simulator is fully
//! deterministic, so matching commits produce byte-identical artifacts and
//! the tolerance only exists as headroom for intentional, reviewed
//! refreshes of the baselines.
//!
//! ```text
//! compare_trajectory <baseline_dir> <candidate_dir> [--tolerance <rel>]
//! ```
//!
//! To accept an intentional change, regenerate the baselines locally:
//!
//! ```text
//! REUNION_FAST=1 REUNION_OUT_DIR=baselines cargo run --release -p reunion-bench --bin <id>
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use reunion_sim::{parse_json, JsonValue};

/// Default relative tolerance for numeric leaves.
const DEFAULT_TOLERANCE: f64 = 0.02;
/// Absolute slack for values near zero, where relative error is undefined.
const ABS_EPSILON: f64 = 1e-9;

struct Drift {
    path: String,
    detail: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a non-negative number");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            dirs.push(arg.clone());
        }
    }
    let [baseline_dir, candidate_dir] = dirs.as_slice() else {
        eprintln!("usage: compare_trajectory <baseline_dir> <candidate_dir> [--tolerance <rel>]");
        return ExitCode::FAILURE;
    };

    let baselines = match bench_files(Path::new(baseline_dir)) {
        Ok(files) if !files.is_empty() => files,
        Ok(_) => {
            eprintln!("no BENCH_*.json files found under {baseline_dir}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot read {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    // A candidate artifact with no checked-in baseline is drift too: a
    // newly added binary must land with its baseline or it is never gated.
    if let Ok(candidates) = bench_files(Path::new(candidate_dir)) {
        for cand in candidates {
            let name = cand.file_name().expect("listed file");
            if !baselines.iter().any(|b| b.file_name() == Some(name)) {
                failed = true;
                println!(
                    "FAIL {}: no baseline under {baseline_dir}; add one",
                    name.to_string_lossy()
                );
            }
        }
    }
    for base_path in baselines {
        let name = base_path
            .file_name()
            .expect("listed file")
            .to_string_lossy()
            .to_string();
        let cand_path = Path::new(candidate_dir).join(&name);
        match compare_files(&base_path, &cand_path, tolerance) {
            Ok(drifts) if drifts.is_empty() => {
                println!("OK   {name}");
            }
            Ok(drifts) => {
                failed = true;
                println!("FAIL {name}: {} drift(s)", drifts.len());
                for d in drifts.iter().take(20) {
                    println!("       {}: {}", d.path, d.detail);
                }
                if drifts.len() > 20 {
                    println!("       ... and {} more", drifts.len() - 20);
                }
            }
            Err(e) => {
                failed = true;
                println!("FAIL {name}: {e}");
            }
        }
    }
    if failed {
        println!("trajectory drift detected; refresh baselines/ if the change is intentional");
        ExitCode::FAILURE
    } else {
        println!("all trajectories within tolerance {tolerance}");
        ExitCode::SUCCESS
    }
}

/// All `BENCH_*.json` files directly under `dir`, sorted by name.
fn bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

fn compare_files(base: &Path, cand: &Path, tolerance: f64) -> Result<Vec<Drift>, String> {
    let base_text = std::fs::read_to_string(base)
        .map_err(|e| format!("cannot read baseline {}: {e}", base.display()))?;
    let cand_text = std::fs::read_to_string(cand)
        .map_err(|e| format!("missing candidate {}: {e}", cand.display()))?;
    let base_json =
        parse_json(&base_text).map_err(|e| format!("baseline {}: {e}", base.display()))?;
    let cand_json =
        parse_json(&cand_text).map_err(|e| format!("candidate {}: {e}", cand.display()))?;
    let mut drifts = Vec::new();
    compare_values(&base_json, &cand_json, tolerance, "$", &mut drifts);
    Ok(drifts)
}

fn compare_values(a: &JsonValue, b: &JsonValue, tol: f64, path: &str, out: &mut Vec<Drift>) {
    match (a, b) {
        (JsonValue::Num(x), JsonValue::Num(y)) => {
            let scale = x.abs().max(y.abs());
            if (x - y).abs() > tol * scale + ABS_EPSILON {
                out.push(Drift {
                    path: path.to_string(),
                    detail: format!("baseline {x} vs candidate {y}"),
                });
            }
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            if xs.len() != ys.len() {
                out.push(Drift {
                    path: path.to_string(),
                    detail: format!("array length {} vs {}", xs.len(), ys.len()),
                });
                return;
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                compare_values(x, y, tol, &format!("{path}[{i}]"), out);
            }
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            for (k, _) in ys.iter().filter(|(k, _)| a.get(k).is_none()) {
                out.push(Drift {
                    path: format!("{path}.{k}"),
                    detail: "unexpected key in candidate".to_string(),
                });
            }
            for (k, x) in xs {
                match b.get(k) {
                    Some(y) => compare_values(x, y, tol, &format!("{path}.{k}"), out),
                    None => out.push(Drift {
                        path: format!("{path}.{k}"),
                        detail: "missing key in candidate".to_string(),
                    }),
                }
            }
        }
        _ if a == b => {}
        _ => out.push(Drift {
            path: path.to_string(),
            detail: format!("baseline {a:?} vs candidate {b:?}"),
        }),
    }
}

//! Table 3: input-incoherence events per million instructions for each
//! phantom-request strength, juxtaposed with TLB misses.

use reunion_bench::{banner, sample_config, workloads};
use reunion_core::{measure, ExecutionMode, SystemConfig};
use reunion_mem::PhantomStrength;

fn main() {
    banner(
        "Table 3",
        "Input incoherence per 1M instructions by phantom strength; TLB misses",
    );
    let sample = sample_config();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "global", "shared", "null", "tlb/1M"
    );
    for w in workloads() {
        let mut row = Vec::new();
        let mut tlb = 0.0;
        for strength in [
            PhantomStrength::Global,
            PhantomStrength::Shared,
            PhantomStrength::Null,
        ] {
            let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
            cfg.phantom = strength;
            let m = measure(&cfg, &w, &sample);
            row.push(m.incoherence_per_million());
            if strength == PhantomStrength::Global {
                tlb = m.tlb_misses_per_million();
            }
        }
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.0}",
            w.name(),
            row[0],
            row[1],
            row[2],
            tlb
        );
    }
    println!("--------------------------------------------------------------");
    println!("(paper: global 0.2-21 /1M — orders of magnitude below TLB misses;");
    println!(" shared/null 1.8k-23k /1M, 3-4 orders above global.)");
}

//! Table 3: input-incoherence events per million instructions for each
//! phantom-request strength, juxtaposed with TLB misses.

use reunion_bench::{banner, run_and_emit, sample_config, workloads};
use reunion_core::ExecutionMode;
use reunion_mem::PhantomStrength;
use reunion_sim::{ConfigPatch, ExperimentGrid, Metric};

const STRENGTHS: [PhantomStrength; 3] = [
    PhantomStrength::Global,
    PhantomStrength::Shared,
    PhantomStrength::Null,
];

fn main() {
    banner(
        "Table 3",
        "Input incoherence per 1M instructions by phantom strength; TLB misses",
    );
    let grid = ExperimentGrid::builder(
        "table3",
        "Input incoherence per 1M instructions by phantom strength; TLB misses",
    )
    .metric(Metric::Raw)
    .sample(sample_config())
    .workloads(workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(
        STRENGTHS
            .iter()
            .map(|&s| ConfigPatch::new(s.to_string()).phantom(s))
            .collect(),
    )
    .build();
    let report = run_and_emit(&grid);

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "global", "shared", "null", "tlb/1M"
    );
    for w in workloads() {
        print!("{:<12}", w.name());
        let mut tlb = 0.0;
        for strength in STRENGTHS {
            let m = report
                .get(w.name(), ExecutionMode::Reunion, &strength.to_string())
                .and_then(|r| r.raw())
                .expect("record for every strength");
            print!(" {:>10.1}", m.incoherence_per_million);
            if strength == PhantomStrength::Global {
                tlb = m.tlb_misses_per_million;
            }
        }
        println!(" {tlb:>10.0}");
    }
    println!("--------------------------------------------------------------");
    println!("(paper: global 0.2-21 /1M — orders of magnitude below TLB misses;");
    println!(" shared/null 1.8k-23k /1M, 3-4 orders above global.)");
}

//! Table 3: input-incoherence events per million instructions for each
//! phantom-request strength, juxtaposed with TLB misses.

use reunion_bench::{banner, run_and_emit, run_options, workloads};
use reunion_core::ExecutionMode;
use reunion_mem::PhantomStrength;
use reunion_sim::{ConfigPatch, ExperimentGrid, Metric};

const STRENGTHS: [PhantomStrength; 3] = [
    PhantomStrength::Global,
    PhantomStrength::Shared,
    PhantomStrength::Null,
];

/// How many cycles em3d's widened measured window must cover.
///
/// em3d's incoherence rate under global phantoms sits near the bottom of
/// the paper's 0.2–21 /1M band, below the single-event resolution of the
/// shared profiles (zero events resolve in ~100k measured cycles, printing
/// a misleading 0.0); its first event lands near 25M measured cycles under
/// either profile. The widened window gives it enough retired instructions
/// for that event to resolve inside the band; the work-stealing runner
/// absorbs the extra cost by scheduling the em3d cells first.
const EM3D_MEASURED_CYCLES: u64 = 32_000_000;

fn main() {
    let opts = run_options();
    banner(
        "Table 3",
        "Input incoherence per 1M instructions by phantom strength; TLB misses",
    );
    let grid = ExperimentGrid::builder(
        "table3",
        "Input incoherence per 1M instructions by phantom strength; TLB misses",
    )
    .metric(Metric::Raw)
    .run_options(&opts)
    .sample(opts.sample())
    .sample_override(
        "em3d",
        opts.sample().widened_to_cycles(EM3D_MEASURED_CYCLES),
    )
    .workloads(workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(
        STRENGTHS
            .iter()
            .map(|&s| ConfigPatch::new(s.to_string()).phantom(s))
            .collect(),
    )
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "global", "shared", "null", "tlb/1M"
    );
    let mut sci_global = Vec::new();
    let mut sci_resolution = 0.0f64;
    for w in workloads() {
        print!("{:<12}", w.name());
        let mut tlb = 0.0;
        for strength in STRENGTHS {
            let m = report
                .get(w.name(), ExecutionMode::Reunion, &strength.to_string())
                .and_then(|r| r.raw())
                .expect("record for every strength");
            print!(" {:>10.1}", m.incoherence_per_million);
            if strength == PhantomStrength::Global {
                tlb = m.tlb_misses_per_million;
                if w.class() == reunion_workloads::WorkloadClass::Scientific {
                    sci_global.push(m.incoherence_per_million);
                    if m.user_instructions > 0 {
                        sci_resolution = sci_resolution.max(1.0e6 / m.user_instructions as f64);
                    }
                }
            }
        }
        println!(" {tlb:>10.0}");
    }
    println!("--------------------------------------------------------------");
    let sci_avg = sci_global.iter().sum::<f64>() / sci_global.len() as f64;
    println!("scientific average (global phantoms): {sci_avg:.1} /1M  (paper band: 0.2-21)");
    let em3d_mcycles = EM3D_MEASURED_CYCLES / 1_000_000;
    println!("(em3d is measured over a widened ~{em3d_mcycles}M-cycle window so its rare");
    println!(" events resolve; coarsest single-event resolution: {sci_resolution:.1} /1M.)");
    println!("(paper: global 0.2-21 /1M — orders of magnitude below TLB misses;");
    println!(" shared/null 1.8k-23k /1M, 3-4 orders above global.)");
}

//! Figure 5: baseline performance of Strict and Reunion, normalized to the
//! non-redundant CMP, at a 10-cycle comparison latency.

use reunion_bench::{banner, commercial_scientific_averages, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};

fn main() {
    banner(
        "Figure 5",
        "Normalized IPC of Strict and Reunion (10-cycle comparison latency)",
    );
    let sample = sample_config();
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>12} {:>9}",
        "workload", "class", "strict", "reunion", "incoh/1M", "base-IPC"
    );
    let mut strict_rows = Vec::new();
    let mut reunion_rows = Vec::new();
    for w in workloads() {
        let strict = normalized_ipc(&SystemConfig::table1(ExecutionMode::Strict), &w, &sample);
        let reunion = normalized_ipc(&SystemConfig::table1(ExecutionMode::Reunion), &w, &sample);
        println!(
            "{:<12} {:<11} {:>9.3} {:>9.3} {:>12.1} {:>9.3}",
            w.name(),
            w.class().to_string(),
            strict.normalized_ipc,
            reunion.normalized_ipc,
            reunion.model.incoherence_per_million(),
            reunion.baseline.ipc,
        );
        strict_rows.push((w.class(), strict.normalized_ipc));
        reunion_rows.push((w.class(), reunion.normalized_ipc));
    }
    let (sc, ss) = commercial_scientific_averages(&strict_rows);
    let (rc, rs) = commercial_scientific_averages(&reunion_rows);
    println!("--------------------------------------------------------------");
    println!("average normalized IPC   commercial   scientific");
    println!("  strict                 {sc:>10.3} {ss:>12.3}   (paper: 0.95 / 0.98)");
    println!("  reunion                {rc:>10.3} {rs:>12.3}   (paper: 0.90 / 0.92)");
}

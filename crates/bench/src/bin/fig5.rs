//! Figure 5: baseline performance of Strict and Reunion, normalized to the
//! non-redundant CMP, at a 10-cycle comparison latency.

use reunion_bench::{banner, commercial_scientific_averages, run_and_emit, run_options, workloads};
use reunion_core::ExecutionMode;
use reunion_sim::ExperimentGrid;

fn main() {
    let opts = run_options();
    banner(
        "Figure 5",
        "Normalized IPC of Strict and Reunion (10-cycle comparison latency)",
    );
    let grid = ExperimentGrid::builder(
        "fig5",
        "Normalized IPC of Strict and Reunion (10-cycle comparison latency)",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(workloads())
    .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>12} {:>9}",
        "workload", "class", "strict", "reunion", "incoh/1M", "base-IPC"
    );
    for w in workloads() {
        let strict = report
            .get(w.name(), ExecutionMode::Strict, "base")
            .and_then(|r| r.normalized())
            .expect("strict record");
        let reunion = report
            .get(w.name(), ExecutionMode::Reunion, "base")
            .and_then(|r| r.normalized())
            .expect("reunion record");
        println!(
            "{:<12} {:<11} {:>9.3} {:>9.3} {:>12.1} {:>9.3}",
            w.name(),
            w.class().to_string(),
            strict.normalized_ipc,
            reunion.normalized_ipc,
            reunion.model.incoherence_per_million,
            reunion.baseline.ipc,
        );
    }
    let (sc, ss) =
        commercial_scientific_averages(&report.normalized_rows(ExecutionMode::Strict, "base"));
    let (rc, rs) =
        commercial_scientific_averages(&report.normalized_rows(ExecutionMode::Reunion, "base"));
    println!("--------------------------------------------------------------");
    println!("average normalized IPC   commercial   scientific");
    println!("  strict                 {sc:>10.3} {ss:>12.3}   (paper: 0.95 / 0.98)");
    println!("  reunion                {rc:>10.3} {rs:>12.3}   (paper: 0.90 / 0.92)");
}

//! Table 2: application parameters of the workload suite.

use reunion_bench::{banner, workloads};

fn main() {
    banner("Table 2", "Application parameters (synthetic suite)");
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>6} {:>7} {:>9} {:>10}",
        "workload", "class", "priv(MB)", "shrd(MB)", "locks", "cs-len", "itlb/1M", "static-len"
    );
    for w in workloads() {
        let s = w.spec();
        println!(
            "{:<12} {:<11} {:>9.1} {:>9.1} {:>6} {:>7} {:>9} {:>10}",
            w.name(),
            w.class().to_string(),
            s.private_bytes as f64 / (1 << 20) as f64,
            s.shared_bytes as f64 / (1 << 20) as f64,
            s.locks,
            s.critical_section_len,
            s.itlb_miss_per_million,
            w.program(0).len(),
        );
    }
}

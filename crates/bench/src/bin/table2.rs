//! Table 2: application parameters of the workload suite.

use reunion_bench::{banner, run_and_emit, run_options, workloads};
use reunion_core::ExecutionMode;
use reunion_sim::{ExperimentGrid, Metric};

fn main() {
    let opts = run_options();
    banner("Table 2", "Application parameters (synthetic suite)");
    let grid = ExperimentGrid::builder("table2", "Application parameters (synthetic suite)")
        .metric(Metric::Static)
        .run_options(&opts)
        .sample(opts.sample())
        .workloads(workloads())
        .modes(&[ExecutionMode::NonRedundant])
        .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>6} {:>7} {:>9} {:>10}",
        "workload", "class", "priv(MB)", "shrd(MB)", "locks", "cs-len", "itlb/1M", "static-len"
    );
    for r in report.rows(ExecutionMode::NonRedundant, "base") {
        let s = r.statics().expect("static record");
        println!(
            "{:<12} {:<11} {:>9.1} {:>9.1} {:>6} {:>7} {:>9} {:>10}",
            r.workload,
            r.class.to_string(),
            s.private_bytes as f64 / (1 << 20) as f64,
            s.shared_bytes as f64 / (1 << 20) as f64,
            s.locks,
            s.critical_section_len,
            s.itlb_miss_per_million,
            s.static_len,
        );
    }
}

//! §4.3 fingerprint-interval ablation: the paper finds the performance
//! difference between intervals of 1 and 50 instructions insignificant.

use reunion_bench::{banner, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};

fn main() {
    banner(
        "Fingerprint-interval ablation (§4.3)",
        "Reunion normalized IPC vs fingerprint interval (10-cycle latency)",
    );
    let sample = sample_config();
    let intervals = [1u32, 5, 50];
    println!("{:<12} {:>9} {:>9} {:>9}", "workload", "ival=1", "ival=5", "ival=50");
    for w in workloads() {
        print!("{:<12}", w.name());
        for &interval in &intervals {
            let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
            cfg.fingerprint_interval = interval;
            let n = normalized_ipc(&cfg, &w, &sample);
            print!(" {:>9.3}", n.normalized_ipc);
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: intervals of 1 and 50 perform indistinguishably because");
    println!(" useful computation continues to the end of the interval.)");
}

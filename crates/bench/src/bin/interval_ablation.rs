//! §4.3 fingerprint-interval ablation: the paper finds the performance
//! difference between intervals of 1 and 50 instructions insignificant.

use reunion_bench::{banner, run_and_emit, run_options, workloads};
use reunion_core::ExecutionMode;
use reunion_sim::{ConfigPatch, ExperimentGrid};

const INTERVALS: [u32; 3] = [1, 5, 50];

fn interval_label(interval: u32) -> String {
    format!("ival={interval}")
}

fn main() {
    let opts = run_options();
    banner(
        "Fingerprint-interval ablation (§4.3)",
        "Reunion normalized IPC vs fingerprint interval (10-cycle latency)",
    );
    let grid = ExperimentGrid::builder(
        "interval_ablation",
        "Reunion normalized IPC vs fingerprint interval (10-cycle latency)",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(
        INTERVALS
            .iter()
            .map(|&i| ConfigPatch::new(interval_label(i)).fingerprint_interval(i))
            .collect(),
    )
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "workload", "ival=1", "ival=5", "ival=50"
    );
    for w in workloads() {
        print!("{:<12}", w.name());
        for &interval in &INTERVALS {
            let n = report
                .get(w.name(), ExecutionMode::Reunion, &interval_label(interval))
                .and_then(|r| r.normalized_ipc())
                .expect("record for every interval");
            print!(" {n:>9.3}");
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: intervals of 1 and 50 perform indistinguishably because");
    println!(" useful computation continues to the end of the interval.)");
}

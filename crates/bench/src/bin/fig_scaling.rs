//! Scaling study (beyond the paper): Reunion normalized IPC as the CMP
//! grows from 1 to 16 logical-processor pairs, under a banked, arbitrated
//! L2 and a shared check-bus bandwidth model.
//!
//! The paper evaluates a fixed 4-pair CMP (Table 1) where the only
//! cross-pair coupling is L2 bank occupancy. This grid turns on the two
//! contention models that matter at larger core counts — a bounded
//! L1↔L2 crossbar with per-bank queues ([`reunion_mem::BankedArbiter`])
//! and a shared fingerprint interconnect
//! ([`reunion_core::CheckBus`]) — and sweeps:
//!
//! * **pairs**: 1, 2, 4, 8, 16 (the 4-pair column reproduces the paper's
//!   operating point; 8 and 16 extrapolate),
//! * **check bandwidth**: `bw0` = private per-pair channels (the paper's
//!   implicit model), `bw2` = one shared bus accepting a fingerprint
//!   message every 2 cycles,
//! * **comparison latency**: 10 (Table 1) and 40 cycles (the far end of
//!   Figure 6's sweep, where serializing round trips hurt most).
//!
//! L2 capacity/bandwidth scales with the core count via
//! [`reunion_mem::MemConfig::scaled_for_cores`], so the study isolates
//! *contention and arbitration* effects rather than capacity starvation.

use reunion_bench::{banner, run_and_emit, run_options};
use reunion_core::{ExecutionMode, SystemConfig};
use reunion_sim::{ConfigPatch, ExperimentGrid};
use reunion_workloads::Workload;

/// Pair counts of the sweep; 4 is the paper's CMP.
const PAIRS: [usize; 5] = [1, 2, 4, 8, 16];
/// Check-bus occupancies: 0 = private channels, 2 = shared bus.
const CHECK_BW: [u64; 2] = [0, 2];
/// One-way comparison latencies (cycles).
const LATENCIES: [u64; 2] = [10, 40];

/// Canonical patch label for one scaling point (`"p8:bw2:lat=40"`).
fn scaling_label(pairs: usize, bw: u64, latency: u64) -> String {
    format!("p{pairs}:bw{bw}:lat={latency}")
}

/// Table 1 plus the contention models the larger machines need: a 4-port
/// L1↔L2 crossbar and 4-deep per-bank queues. At 4 pairs these bounds are
/// wide enough that the paper's operating point is effectively uncontended;
/// at 16 pairs they are the story.
fn scaling_base(mode: ExecutionMode) -> SystemConfig {
    let cfg = SystemConfig::table1(mode).with_seed(0x5EED_0009);
    let mem = cfg.mem.clone().with_xbar_ports(4).with_bank_queue_depth(4);
    cfg.with_mem(mem)
}

fn workload_pair() -> Vec<Workload> {
    vec![
        Workload::by_name("apache").expect("in suite"),
        Workload::by_name("moldyn").expect("in suite"),
    ]
}

fn main() {
    let opts = run_options();
    banner(
        "Scaling study",
        "Reunion normalized IPC vs pair count, check bandwidth and latency",
    );
    let mut patches = Vec::with_capacity(PAIRS.len() * CHECK_BW.len() * LATENCIES.len());
    for &pairs in &PAIRS {
        for &bw in &CHECK_BW {
            for &latency in &LATENCIES {
                patches.push(
                    ConfigPatch::new(scaling_label(pairs, bw, latency))
                        .logical_processors(pairs)
                        .check_bandwidth(bw)
                        .latency(latency),
                );
            }
        }
    }
    let grid = ExperimentGrid::builder(
        "scaling",
        "Reunion normalized IPC vs pair count, check bandwidth and latency",
    )
    .run_options(&opts)
    .base(scaling_base)
    .sample(opts.sample())
    .workloads(workload_pair())
    .modes(&[ExecutionMode::Reunion])
    .patches(patches)
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    for w in workload_pair() {
        println!();
        println!("{} ({})", w.name(), w.class());
        println!(
            "{:<7} {:>10} {:>10} {:>10} {:>10}",
            "pairs", "bw0:lat10", "bw0:lat40", "bw2:lat10", "bw2:lat40"
        );
        for &pairs in &PAIRS {
            print!("{pairs:<7}");
            for &bw in &CHECK_BW {
                for &latency in &LATENCIES {
                    let n = report
                        .get(
                            w.name(),
                            ExecutionMode::Reunion,
                            &scaling_label(pairs, bw, latency),
                        )
                        .and_then(|r| r.normalized())
                        .expect("scaling record");
                    print!(" {:>10.3}", n.normalized_ipc);
                }
            }
            println!();
        }
    }
    println!();
    println!("(bw0 = private check channels, bw2 = shared bus, 1 msg / 2 cycles;");
    println!(" each cell is normalized against a non-redundant CMP of the same");
    println!(" pair count, so the columns isolate redundancy overhead, not");
    println!(" workload scaling. 4 pairs = the paper's Table 1 machine.)");
}

//! Combines shard manifests back into `BENCH_<id>.json` artifacts.
//!
//! The second half of a sharded campaign: after every shard of a grid has
//! run (`REUNION_SHARD=i/N <binary>`, on any mix of machines), collect the
//! `MANIFEST_<id>.shard<i>of<N>.jsonl` files into one directory and merge
//! them:
//!
//! ```text
//! merge_shards <manifest_dir>
//! ```
//!
//! Every complete manifest group found under `<manifest_dir>` is merged
//! into a `BENCH_<id>.json` under `$REUNION_OUT_DIR` (default: the current
//! directory) — byte-identical to the file a single-process run of the
//! same grid and profile would have written, so the merged artifact feeds
//! straight into `compare_trajectory`. An incomplete partition (missing
//! shards, or an interrupted shard that was never resumed to completion)
//! fails with the uncovered cell indices so the operator knows what to
//! (re)run.

use std::path::Path;
use std::process::ExitCode;

use reunion_bench::run_options_with_extras;
use reunion_sim::{find_manifests, merge_manifests};

fn main() -> ExitCode {
    // Shared surface first (this tool only reads manifests, but resolving
    // uniformly keeps `REUNION_*`/flag handling identical across binaries);
    // the manifest directory is the sole positional leftover.
    let (_, args) = run_options_with_extras();
    let [dir] = args.as_slice() else {
        eprintln!("usage: merge_shards <manifest_dir>");
        return ExitCode::FAILURE;
    };
    let groups = match find_manifests(Path::new(dir)) {
        Ok(groups) if !groups.is_empty() => groups,
        Ok(_) => {
            eprintln!("no MANIFEST_*.jsonl shard manifests found under {dir}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for (id, paths) in &groups {
        match merge_manifests(paths) {
            Ok(report) => match report.write_json_default() {
                Ok(path) => println!(
                    "OK   {id}: merged {} manifest(s), {} records -> {}",
                    paths.len(),
                    report.records.len(),
                    path.display()
                ),
                Err(e) => {
                    failed = true;
                    println!("FAIL {id}: cannot write merged report: {e}");
                }
            },
            Err(e) => {
                failed = true;
                println!("FAIL {id}: {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Figure 6: sensitivity of (a) Strict and (b) Reunion to the inter-core
//! comparison latency (0–40 cycles), averaged per workload class.

use reunion_bench::{
    banner, class_averages, latency_label, run_and_emit, run_options, workloads, SWEEP_LATENCIES,
};
use reunion_core::ExecutionMode;
use reunion_sim::{ConfigPatch, ExperimentGrid, ExperimentReport};
use reunion_workloads::WorkloadClass;

fn panel(report: &ExperimentReport, mode: ExecutionMode) {
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "class", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); WorkloadClass::ALL.len()];
    for &latency in &SWEEP_LATENCIES {
        let rows = report.normalized_rows(mode, &latency_label(latency));
        for (i, (_, mean)) in class_averages(&rows).into_iter().enumerate() {
            per_class[i].push(mean);
        }
    }
    for (i, class) in WorkloadClass::ALL.iter().enumerate() {
        print!("{:<10}", class.to_string());
        for v in &per_class[i] {
            print!(" {v:>8.3}");
        }
        println!();
    }
}

fn main() {
    let opts = run_options();
    let grid = ExperimentGrid::builder(
        "fig6",
        "Strict and Reunion vs comparison latency (normalized IPC)",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(workloads())
    .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
    .patches(
        SWEEP_LATENCIES
            .iter()
            .map(|&l| ConfigPatch::new(latency_label(l)).latency(l))
            .collect(),
    )
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    banner(
        "Figure 6(a)",
        "Strict input replication vs comparison latency (normalized IPC)",
    );
    panel(&report, ExecutionMode::Strict);
    println!();
    banner(
        "Figure 6(b)",
        "Reunion vs comparison latency (normalized IPC)",
    );
    panel(&report, ExecutionMode::Reunion);
    println!();
    println!("(paper: both degrade roughly linearly; Strict ~1.0 at lat 0,");
    println!(" Reunion below 1.0 at lat 0 from loose coupling + contention;");
    println!(" at 40 cycles: Strict 17%/11% penalty, Reunion 22%/13%.)");
}

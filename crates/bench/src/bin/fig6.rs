//! Figure 6: sensitivity of (a) Strict and (b) Reunion to the inter-core
//! comparison latency (0–40 cycles), averaged per workload class.

use reunion_bench::{banner, class_averages, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};
use reunion_workloads::WorkloadClass;

fn panel(mode: ExecutionMode) {
    let sample = sample_config();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "class", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    let latencies = [0u64, 10, 20, 30, 40];
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); WorkloadClass::ALL.len()];
    for &latency in &latencies {
        let mut rows = Vec::new();
        for w in workloads() {
            let mut cfg = SystemConfig::table1(mode);
            cfg.comparison_latency = latency;
            let n = normalized_ipc(&cfg, &w, &sample);
            rows.push((w.class(), n.normalized_ipc));
        }
        for (i, (_, mean)) in class_averages(&rows).into_iter().enumerate() {
            per_class[i].push(mean);
        }
    }
    for (i, class) in WorkloadClass::ALL.iter().enumerate() {
        print!("{:<10}", class.to_string());
        for v in &per_class[i] {
            print!(" {v:>8.3}");
        }
        println!();
    }
}

fn main() {
    banner(
        "Figure 6(a)",
        "Strict input replication vs comparison latency (normalized IPC)",
    );
    panel(ExecutionMode::Strict);
    println!();
    banner("Figure 6(b)", "Reunion vs comparison latency (normalized IPC)");
    panel(ExecutionMode::Reunion);
    println!();
    println!("(paper: both degrade roughly linearly; Strict ~1.0 at lat 0,");
    println!(" Reunion below 1.0 at lat 0 from loose coupling + contention;");
    println!(" at 40 cycles: Strict 17%/11% penalty, Reunion 22%/13%.)");
}

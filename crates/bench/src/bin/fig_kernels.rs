//! Kernel suite: real-code assembly kernels (`asm/`) under Strict and
//! Reunion, on the 2-LP [`SystemConfig::kernel_pair`] system.
//!
//! This is the credibility check the synthetic suite cannot provide: the
//! same redundant-pair machinery measured on hand-written programs — three
//! algorithmic kernels and two racy multi-threaded protocols whose data
//! races drive genuine input incoherence.

use reunion_bench::{banner, kernel_workloads, run_and_emit, run_options};
use reunion_core::{ExecutionMode, SystemConfig};
use reunion_sim::ExperimentGrid;

fn main() {
    let opts = run_options();
    banner(
        "Kernel suite",
        "Real-code kernels under Strict and Reunion (2 logical processors)",
    );
    let grid = ExperimentGrid::builder(
        "kernels",
        "Normalized IPC of Strict and Reunion on the real-code kernel suite",
    )
    .run_options(&opts)
    .base(SystemConfig::kernel_pair)
    .sample(opts.sample())
    .workloads(kernel_workloads())
    .modes(&[ExecutionMode::Strict, ExecutionMode::Reunion])
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<16} {:<11} {:>7} {:>9} {:>9} {:>12} {:>9}",
        "kernel", "class", "threads", "strict", "reunion", "incoh/1M", "base-IPC"
    );
    for w in kernel_workloads() {
        let threads = w.kernel_image().map_or(1, |image| image.threads());
        let strict = report
            .get(w.name(), ExecutionMode::Strict, "base")
            .and_then(|r| r.normalized())
            .expect("strict record");
        let reunion = report
            .get(w.name(), ExecutionMode::Reunion, "base")
            .and_then(|r| r.normalized())
            .expect("reunion record");
        println!(
            "{:<16} {:<11} {:>7} {:>9.3} {:>9.3} {:>12.1} {:>9.3}",
            w.name(),
            w.class().to_string(),
            threads,
            strict.normalized_ipc,
            reunion.normalized_ipc,
            reunion.model.incoherence_per_million,
            reunion.baseline.ipc,
        );
    }
}

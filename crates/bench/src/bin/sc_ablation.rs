//! §5.5 consistency-model ablation: under sequential consistency every
//! store carries membar semantics and serializes retirement; the paper
//! reports >60% average loss at a 40-cycle comparison latency.

use reunion_bench::{
    banner, commercial_workloads, keyed_latency_label, run_and_emit, run_options, SWEEP_LATENCIES,
};
use reunion_core::ExecutionMode;
use reunion_cpu::Consistency;
use reunion_sim::{ConfigPatch, ExperimentGrid};

const MODELS: [(&str, &str, Consistency); 2] = [
    ("tso", "Sun TSO", Consistency::Tso),
    ("sc", "SC", Consistency::Sc),
];

fn main() {
    let opts = run_options();
    banner(
        "SC ablation (§5.5)",
        "Reunion commercial average under TSO vs sequential consistency",
    );
    let mut patches = Vec::new();
    for (key, _, model) in MODELS {
        for &latency in &SWEEP_LATENCIES {
            patches.push(
                ConfigPatch::new(keyed_latency_label(key, latency))
                    .consistency(model)
                    .latency(latency),
            );
        }
    }
    let grid = ExperimentGrid::builder(
        "sc_ablation",
        "Reunion commercial average under TSO vs sequential consistency",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(commercial_workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(patches)
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "consistency", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    for (key, label, _) in MODELS {
        print!("{label:<14}");
        for &latency in &SWEEP_LATENCIES {
            let avg = report.mean_normalized_where(
                ExecutionMode::Reunion,
                &keyed_latency_label(key, latency),
                |c| c.is_commercial(),
            );
            print!(" {avg:>8.3}");
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: SC loses >60% at 40 cycles from store serialization.)");
}

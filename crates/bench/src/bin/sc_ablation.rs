//! §5.5 consistency-model ablation: under sequential consistency every
//! store carries membar semantics and serializes retirement; the paper
//! reports >60% average loss at a 40-cycle comparison latency.

use reunion_bench::{banner, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};
use reunion_cpu::Consistency;

fn main() {
    banner(
        "SC ablation (§5.5)",
        "Reunion commercial average under TSO vs sequential consistency",
    );
    let sample = sample_config();
    let latencies = [0u64, 10, 20, 30, 40];
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "consistency", "lat=0", "lat=10", "lat=20", "lat=30", "lat=40"
    );
    for (label, model) in [("Sun TSO", Consistency::Tso), ("SC", Consistency::Sc)] {
        print!("{label:<14}");
        for &latency in &latencies {
            let mut acc = 0.0;
            let mut n = 0;
            for w in workloads().into_iter().filter(|w| w.class().is_commercial()) {
                let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
                cfg.comparison_latency = latency;
                cfg.consistency = model;
                acc += normalized_ipc(&cfg, &w, &sample).normalized_ipc;
                n += 1;
            }
            print!(" {:>8.3}", acc / n as f64);
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: SC loses >60% at 40 cycles from store serialization.)");
}

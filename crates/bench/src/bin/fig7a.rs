//! Figure 7(a): Reunion performance under each phantom-request strength
//! (10-cycle comparison latency), normalized to the non-redundant baseline.

use reunion_bench::{banner, run_and_emit, run_options, workloads};
use reunion_core::ExecutionMode;
use reunion_mem::PhantomStrength;
use reunion_sim::{ConfigPatch, ExperimentGrid};

const STRENGTHS: [PhantomStrength; 3] = [
    PhantomStrength::Global,
    PhantomStrength::Shared,
    PhantomStrength::Null,
];

fn main() {
    let opts = run_options();
    banner(
        "Figure 7(a)",
        "Reunion normalized IPC per phantom strength (10-cycle latency)",
    );
    let grid = ExperimentGrid::builder(
        "fig7a",
        "Reunion normalized IPC per phantom strength (10-cycle latency)",
    )
    .run_options(&opts)
    .sample(opts.sample())
    .workloads(workloads())
    .modes(&[ExecutionMode::Reunion])
    .patches(
        STRENGTHS
            .iter()
            .map(|&s| ConfigPatch::new(s.to_string()).phantom(s))
            .collect(),
    )
    .build();
    let Some(report) = run_and_emit(&grid).into_report() else {
        return;
    };

    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "workload", "global", "shared", "null"
    );
    for w in workloads() {
        print!("{:<12}", w.name());
        for strength in STRENGTHS {
            let n = report
                .get(w.name(), ExecutionMode::Reunion, &strength.to_string())
                .and_then(|r| r.normalized_ipc())
                .expect("record for every strength");
            print!(" {n:>9.3}");
        }
        println!();
    }
    println!("--------------------------------------------------------------");
    println!("(paper: global >> shared >> null; em3d collapses under shared");
    println!(" because its working set exceeds the shared cache.)");
}

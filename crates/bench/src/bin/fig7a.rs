//! Figure 7(a): Reunion performance under each phantom-request strength
//! (10-cycle comparison latency), normalized to the non-redundant baseline.

use reunion_bench::{banner, sample_config, workloads};
use reunion_core::{normalized_ipc, ExecutionMode, SystemConfig};
use reunion_mem::PhantomStrength;

fn main() {
    banner(
        "Figure 7(a)",
        "Reunion normalized IPC per phantom strength (10-cycle latency)",
    );
    let sample = sample_config();
    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "workload", "global", "shared", "null"
    );
    for w in workloads() {
        let mut row = Vec::new();
        for strength in [
            PhantomStrength::Global,
            PhantomStrength::Shared,
            PhantomStrength::Null,
        ] {
            let mut cfg = SystemConfig::table1(ExecutionMode::Reunion);
            cfg.phantom = strength;
            let n = normalized_ipc(&cfg, &w, &sample);
            row.push(n.normalized_ipc);
        }
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3}",
            w.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!("--------------------------------------------------------------");
    println!("(paper: global >> shared >> null; em3d collapses under shared");
    println!(" because its working set exceeds the shared cache.)");
}
